#!/usr/bin/env python3
"""Quickstart: a GDPR-compliant personal-data store in ~60 lines.

Creates a compliant deployment (encryption, timely deletion, audit
logging, metadata access control), stores personal records with their
seven GDPR metadata attributes, and exercises each role's rights:

* controller  — collects data (CREATE-RECORD, G 24)
* customer    — accesses, rectifies, objects, erases (G 15-18, 20-22)
* processor   — reads data for a declared purpose (G 28)
* regulator   — inspects metadata, logs and capabilities (G 30, 33, 58)

Run:  python examples/quickstart.py [redis|postgres]
"""

import sys

from repro.clients import FeatureSet, make_client
from repro.gdpr import PersonalRecord, Principal


def main(engine: str = "postgres") -> None:
    features = FeatureSet.full(metadata_indexing=(engine == "postgres"))
    client = make_client(engine, features)

    controller = Principal.controller()
    alice = Principal.customer("alice")
    ads_processor = Principal.processor("ads")
    regulator = Principal.regulator()

    # -- controller collects personal data, with mandatory metadata --------
    client.create_record(controller, PersonalRecord(
        key="ph-1x4b",
        data="alice:123-456-7890",
        purposes=("ads", "2fa"),
        ttl_seconds=365 * 86400.0,   # G 5(1e): nothing lives forever
        user="alice",
        source="first-party",
    ))
    client.create_record(controller, PersonalRecord(
        key="em-9z2c",
        data="alice:a@example.com",
        purposes=("delivery",),
        ttl_seconds=30 * 86400.0,
        user="alice",
        shared_with=("acme-logistics",),
        source="first-party",
    ))

    # -- processor reads for its declared purpose --------------------------
    print("processor reads ph-1x4b:", client.read_data_by_key(ads_processor, "ph-1x4b"))

    # -- customer exercises her rights --------------------------------------
    export = client.read_data_by_usr(alice, "alice")          # G 20 portability
    print("alice's data export:", export)
    client.update_data_by_key(alice, "ph-1x4b", "alice:987-654-3210")  # G 16
    client.update_metadata_by_key(alice, "ph-1x4b", "OBJ", ("ads",))   # G 21
    print("metadata after objection:",
          client.read_metadata_by_key(alice, "ph-1x4b"))

    # the objection binds the processor immediately (G 28(3c))
    try:
        client.read_data_by_key(ads_processor, "ph-1x4b")
    except Exception as exc:
        print("ads processor now denied:", exc)

    # -- right to be forgotten ------------------------------------------------
    client.delete_record_by_key(alice, "em-9z2c")             # G 17
    print("regulator verifies erasure:", client.verify_deletion(regulator, "em-9z2c"))

    # -- regulator inspects the deployment ------------------------------------
    report = client.get_system_features(regulator)
    print(f"compliance score: {report.score():.0%}  "
          f"(missing: {[a.value for a in report.missing]})")
    print("last audit events:")
    for event in client.get_system_logs(regulator, limit=5):
        print("   ", event.operation, event.target)
    from repro.bench.metrics import space_report
    print(f"space factor: {space_report(client).space_factor:.1f}x personal data "
          f"(the paper's metadata explosion)")

    client.close()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "postgres")
