#!/usr/bin/env python3
"""A regulator investigates a data breach (G 33/34 end to end).

Scenario: a controller's audit logging is on (as G 30 requires).  A
compromised processor account exfiltrates records for a while.  The
controller discovers the breach, pins the time window, and must notify the
regulator within 72 hours with the approximate number of affected
customers and records (G 33(3a)).  The regulator independently pulls the
window's audit trail (GET-SYSTEM-LOGS) and checks the deployment's
security capabilities (GET-SYSTEM-FEATURES).

Run:  python examples/breach_investigation.py [redis|postgres]
"""

import sys

from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, make_client
from repro.common.clock import VirtualClock
from repro.gdpr import Principal, breach_report


def main(engine: str = "postgres") -> None:
    clock = VirtualClock()
    features = FeatureSet.full(metadata_indexing=(engine == "postgres"))
    client = make_client(engine, features, clock=clock)

    corpus = RecordCorpusConfig(record_count=500, user_count=50, seed=33)
    client.load_records(generate_corpus(corpus))
    print(f"{engine}: loaded {client.record_count()} records; audit logging on")

    # -- normal traffic ------------------------------------------------------
    processor = Principal.processor()
    for i in range(10):
        client.read_data_by_key(processor, f"k{i:08d}")
        clock.advance(1.0)

    # -- the breach window ---------------------------------------------------
    breach_start = clock.now()
    compromised = Principal.processor()  # stolen credentials
    exposed_users = set()
    for i in range(40, 80):
        key = f"k{i:08d}"
        data = client.read_data_by_key(compromised, key)
        if data is not None:
            exposed_users.add(data.split(":", 1)[0])
        clock.advance(0.5)
    breach_end = clock.now()
    print(f"breach window: t={breach_start:.0f}s .. t={breach_end:.0f}s "
          f"({len(exposed_users)} distinct customers touched)")

    # -- more normal traffic after ---------------------------------------------
    clock.advance(30)
    for i in range(10):
        client.read_data_by_key(processor, f"k{i:08d}")
        clock.advance(1.0)

    # -- the regulator investigates -------------------------------------------
    regulator = Principal.regulator()
    window_events = client.get_system_logs(
        regulator, start=breach_start, end=breach_end, limit=10_000
    )
    report = breach_report(window_events, affected_users=exposed_users)
    print("\nG 33(3a) breach notification figures:")
    for field, value in report.items():
        print(f"  {field}: {value}")

    capabilities = client.get_system_features(regulator)
    print("\nG 24/25 capability check:")
    print(f"  supported: {[a.value for a in capabilities.supported]}")
    print(f"  articles satisfied: {len(capabilities.satisfied_articles)}"
          f"/{len(capabilities.satisfied_articles) + len(capabilities.unsatisfied_articles)}")

    # -- affected customers get investigated individually ----------------------
    sample = sorted(exposed_users)[0]
    holdings = client.read_metadata_by_usr(regulator, sample)
    print(f"\nper-customer investigation for {sample}: "
          f"{len(holdings)} records, purposes "
          f"{sorted({p for _, md in holdings for p in md['PUR']})}")

    client.close()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "postgres")
