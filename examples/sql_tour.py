#!/usr/bin/env python3
"""A tour of the minisql engine through its SQL front-end.

Shows the substrate the reproduction built for its PostgreSQL stand-in:
typed tables, secondary B-tree and inverted (GIN-like) indices, the
planner choosing access paths, MVCC dead tuples + VACUUM, and the TTL
sweeper daemon behind the paper's timely-deletion retrofit.

Run:  python examples/sql_tour.py
"""

from repro.common.clock import VirtualClock
from repro.minisql import Database, MiniSQLConfig
from repro.minisql.sql import execute


def show(db, statement):
    result = execute(db, statement)
    print(f"sql> {statement}")
    if isinstance(result, list):
        for row in result[:5]:
            print("    ", row)
        if len(result) > 5:
            print(f"     ... {len(result) - 5} more")
    elif result is not None:
        print("    ", result)
    return result


def main() -> None:
    clock = VirtualClock()
    db = Database(MiniSQLConfig(), clock=clock)

    show(db, "CREATE TABLE consents (id INTEGER NOT NULL, usr TEXT, "
             "purposes TEXT_LIST, expiry TIMESTAMP, PRIMARY KEY (id))")
    for i in range(200):
        purposes = "ads,2fa" if i % 2 == 0 else "billing"
        show_stmt = (f"INSERT INTO consents (id, usr, purposes, expiry) "
                     f"VALUES ({i}, 'u{i % 20}', '{purposes}', {100 + i}.0)")
        execute(db, show_stmt)
    print("loaded 200 consent rows")

    # planner: seq scan without an index...
    print("\nplan before indexing:",
          show(db, "EXPLAIN SELECT * FROM consents WHERE usr = 'u3'"))
    show(db, "CREATE INDEX idx_usr ON consents (usr)")
    show(db, "CREATE INDEX idx_purposes ON consents (purposes)")
    # ...index scans afterwards (B-tree for scalars, inverted for lists)
    print("plan after indexing:",
          show(db, "EXPLAIN SELECT * FROM consents WHERE usr = 'u3'"))
    print("inverted-index plan:",
          show(db, "EXPLAIN SELECT * FROM consents WHERE CONTAINS(purposes, '2fa')"))

    show(db, "SELECT COUNT(*) FROM consents WHERE CONTAINS(purposes, 'ads')")
    show(db, "SELECT id, usr FROM consents WHERE usr = 'u3' ORDER BY id LIMIT 3")

    # MVCC: updates leave dead tuples until VACUUM
    show(db, "UPDATE consents SET purposes = 'billing' WHERE usr = 'u3'")
    stats = db.table_stats("consents")
    print(f"dead tuples after update: {stats['dead_rows']}")
    show(db, "VACUUM consents")
    print(f"dead tuples after vacuum: {db.table_stats('consents')['dead_rows']}")

    # the TTL sweeper daemon (the paper's PostgreSQL timely-deletion patch)
    db.enable_ttl("consents", "expiry")
    clock.advance(150.5)  # rows with expiry <= 150.5 are now overdue
    count = show(db, "SELECT COUNT(*) FROM consents")
    print(f"after the 1s sweeper daemon ran: {count} rows remain "
          f"(expired rows erased without any DELETE)")

    db.close()


if __name__ == "__main__":
    main()
