#!/usr/bin/env python3
"""Run GDPRbench itself — a miniature of the paper's Section 6.2.

Loads a personal-data corpus into compliant Redis and PostgreSQL (with and
without metadata indices), runs all four core workloads, and prints the
three GDPRbench metrics per configuration: correctness, completion time,
and space overhead.

Run:  python examples/run_gdprbench.py [records] [operations]
(defaults: 1000 records, 100 operations per workload)
"""

import sys

from repro.bench import GDPRBenchConfig, GDPRBenchSession, RecordCorpusConfig
from repro.bench.metrics import space_report
from repro.clients import FeatureSet


def main(records: int = 1000, operations: int = 100) -> None:
    configurations = [
        ("redis", "redis", False),
        ("postgres", "postgres", False),
        ("postgres + metadata indices", "postgres", True),
    ]
    header = (f"{'configuration':28s} {'workload':10s} {'correct':>8s} "
              f"{'time (s)':>9s} {'ops/s':>9s}")

    for label, engine, indexed in configurations:
        config = GDPRBenchConfig(
            engine=engine,
            features=FeatureSet.full(metadata_indexing=indexed),
            corpus=RecordCorpusConfig(record_count=records,
                                      user_count=max(10, records // 10)),
            operation_count=operations,
            threads=8,   # the paper's GDPRbench thread count
        )
        with GDPRBenchSession(config) as session:
            session.load()
            space = space_report(session.client)
            print(f"\n== {label} ==")
            print(header)
            for name in ("controller", "customer", "processor", "regulator"):
                run = session.run(name, measure_space=False)
                print(f"{label:28s} {name:10s} {run.correctness_pct:7.1f}% "
                      f"{run.completion_time_s:9.3f} {run.throughput_ops_s:9.1f}")
            print(f"space factor: {space.space_factor:.2f}x "
                  f"(physical {space.physical_factor:.2f}x)  "
                  f"[paper: 3.5x default / 5.95x indexed]")


if __name__ == "__main__":
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    operations = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    main(records, operations)
