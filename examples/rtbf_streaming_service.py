#!/usr/bin/env python3
"""Right-to-be-forgotten at a streaming service (the paper's motivating
controller/processor split: think Netflix on a cloud provider).

The controller collects viewing history for two purposes (recommendation
and billing); a processor computes recommendations; customers file RTBF
requests with the heavy skew Google's RTBF report describes (a few users
generate most requests).  The example measures what the paper's Section 6
quantifies: erasure work scales with the size of the store, and timely
deletion keeps expired rows from lingering.

Run:  python examples/rtbf_streaming_service.py [redis|postgres]
"""

import random
import sys
import time

from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, make_client
from repro.common.clock import VirtualClock
from repro.common.distributions import ZipfianGenerator
from repro.gdpr import Principal


def main(engine: str = "postgres") -> None:
    rng = random.Random(7)
    clock = VirtualClock()  # lets the example fast-forward retention limits
    features = FeatureSet.full(metadata_indexing=(engine == "postgres"))
    client = make_client(engine, features, clock=clock)

    # -- the service's personal-data store ---------------------------------
    corpus = RecordCorpusConfig(
        record_count=3000,
        user_count=300,
        purposes=("recommend", "billing"),
        short_ttl_fraction=0.1,
        seed=7,
    )
    print(f"loading {corpus.record_count} viewing-history records "
          f"({corpus.user_count} subscribers) into {engine}...")
    client.load_records(generate_corpus(corpus))

    controller = Principal.controller()
    recommender = Principal.processor("recommend")

    # -- the recommender does its job ---------------------------------------
    t0 = time.perf_counter()
    rows = client.read_data_by_pur(recommender, "recommend")
    print(f"recommender scanned {len(rows)} records in "
          f"{time.perf_counter() - t0:.3f}s")

    # -- RTBF requests arrive, zipf-skewed across subscribers ----------------
    chooser = ZipfianGenerator(0, corpus.user_count - 1, rng=rng)
    requests = [f"u{chooser.next_value():05d}" for _ in range(20)]
    print(f"\nprocessing {len(requests)} RTBF requests "
          f"({len(set(requests))} distinct subscribers, zipf-skewed)...")
    t0 = time.perf_counter()
    erased = 0
    for user in requests:
        erased += client.delete_record_by_usr(controller, user)
    elapsed = time.perf_counter() - t0
    print(f"erased {erased} records in {elapsed:.3f}s "
          f"({elapsed / len(requests) * 1000:.1f} ms per request)")

    # -- every erasure is provable -------------------------------------------
    regulator = Principal.regulator()
    spot_user = requests[0]
    leftovers = client.read_metadata_by_usr(regulator, spot_user)
    print(f"regulator spot-check on {spot_user}: {len(leftovers)} records remain")
    assert leftovers == []

    # -- retention limits enforce themselves ---------------------------------
    before = client.record_count()
    clock.advance(corpus.short_ttl_seconds + 1)  # short-retention data lapses
    client.delete_record_by_ttl(controller)  # engine daemons may race us here
    after = client.record_count()
    print(f"retention enforcement removed {before - after} expired records "
          f"(controller purge + the engine's timely-deletion daemon)")
    from repro.bench.metrics import space_report
    print(f"store now holds {after} records, "
          f"space factor {space_report(client).space_factor:.1f}x")

    client.close()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "postgres")
