"""Figure 3a — Redis TTL erasure delay: lazy sampling vs strict scan.

Paper: erasing expired keys takes minutes-to-hours under stock Redis'
probabilistic expiry and grows with DB size (~3 h at 128K keys); the
modified strict algorithm erases everything within sub-second latency.
"""

from conftest import report, run_once

from repro.experiments import fig3a


def test_fig3a_erasure_delay_curve(benchmark):
    result = run_once(benchmark, fig3a.run, counts=(1000, 2000, 4000, 8000))
    report(result)
    # Quantitative shape: the growth is superlinear-ish in total keys —
    # doubling the keyspace should at least ~1.5x the erasure delay.
    delays = [row["lazy_erasure_s"] for row in result.rows]
    for smaller, larger in zip(delays, delays[1:]):
        assert larger > smaller * 1.4


def test_fig3a_lazy_single_point(benchmark):
    """Per-point cost of the lazy simulation itself (microbenchmark)."""
    delay = benchmark(fig3a.erasure_delay, 2000, False)
    assert delay > 1.0  # simulated seconds of lateness


def test_fig3a_strict_always_subsecond(benchmark):
    delay = benchmark(fig3a.erasure_delay, 4000, True)
    assert delay < 1.0
