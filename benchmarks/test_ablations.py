"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these isolate the mechanisms behind them:

* strict-vs-lazy expiry cost on the *foreground* workload (the price of
  the paper's Redis timely-deletion patch);
* read-payload audit logging vs mutation-only logging (what makes logging
  the dominant Figure 4 overhead);
* inverted-index vs sequential CONTAINS queries (the Figure 5c mechanism);
* the wire/TLS layers' marginal cost per operation.
"""

import random

from repro.clients import FeatureSet, make_client
from repro.minisql import Cmp, Column, Contains, Database, INTEGER, TEXT_LIST


def _fill_kv(client, n=2000):
    for i in range(n):
        client.ycsb_insert(f"user{i:010d}", {"field0": "x" * 100})


def test_ablation_strict_ttl_foreground_cost(benchmark):
    """Strict expiry scans the whole expires index every 100 ms tick; the
    foreground insert path pays for it."""
    client = make_client("redis", FeatureSet(timely_deletion=True, access_control=False))
    try:
        _fill_kv(client, 1000)

        def read_block():
            for i in range(500):
                client.ycsb_read(f"user{i:010d}")

        benchmark(read_block)
    finally:
        client.close()


def test_ablation_audit_logging_cost(benchmark):
    """Monitoring turns every read into read + payload-bearing log append."""
    client = make_client("redis", FeatureSet(monitoring=True, access_control=False))
    try:
        _fill_kv(client, 1000)

        def read_block():
            for i in range(500):
                client.ycsb_read(f"user{i:010d}")

        benchmark(read_block)
    finally:
        client.close()


def test_ablation_baseline_read_cost(benchmark):
    """Reference point for the two ablations above."""
    client = make_client("redis", FeatureSet.none())
    try:
        _fill_kv(client, 1000)

        def read_block():
            for i in range(500):
                client.ycsb_read(f"user{i:010d}")

        benchmark(read_block)
    finally:
        client.close()


def _metadata_db(indexed: bool, rows: int = 4000) -> Database:
    db = Database()
    db.create_table(
        "t", [Column("id", INTEGER, nullable=False), Column("tags", TEXT_LIST)],
        primary_key="id",
    )
    rng = random.Random(1)
    tokens = [f"tok{i}" for i in range(50)]
    for i in range(rows):
        db.insert("t", {"id": i, "tags": [rng.choice(tokens)]})
    if indexed:
        db.create_index("idx_tags", "t", "tags")
    return db


def test_ablation_contains_with_inverted_index(benchmark):
    db = _metadata_db(indexed=True)
    try:
        result = benchmark(db.select, "t", Contains("tags", "tok7"))
        assert result
        assert "idx_tags" in db.explain("t", Contains("tags", "tok7"))
    finally:
        db.close()


def test_ablation_contains_seqscan(benchmark):
    db = _metadata_db(indexed=False)
    try:
        result = benchmark(db.select, "t", Contains("tags", "tok7"))
        assert result
    finally:
        db.close()


def test_ablation_heap_ttl_foreground_cost(benchmark):
    """The §7.2 'efficient time-based deletion' answer: a deadline-ordered
    heap keeps strict timeliness while the per-tick cost collapses from
    O(n) scans to O(due entries).  Compare with
    test_ablation_strict_ttl_foreground_cost above."""
    from repro.clients import RedisGDPRClient

    client = RedisGDPRClient(
        FeatureSet(timely_deletion=True, access_control=False),
        ttl_algorithm="heap",
    )
    try:
        _fill_kv(client, 1000)

        def read_block():
            for i in range(500):
                client.ycsb_read(f"user{i:010d}")

        benchmark(read_block)
    finally:
        client.close()


def test_ablation_heap_ttl_timeliness():
    """Heap expiry must match strict's sub-second erasure guarantee."""
    from repro.common.clock import VirtualClock
    from repro.minikv import MiniKV, MiniKVConfig
    from repro.minikv.expiry import TICK_SECONDS

    clock = VirtualClock()
    kv = MiniKV(MiniKVConfig(ttl_algorithm="heap"), clock=clock)
    for i in range(4000):
        kv.set(f"k{i}", b"v", ttl=300.0 if i % 5 == 0 else 432000.0)
    clock.advance(300 + TICK_SECONDS)
    kv.cron()
    assert kv._expires.all_expired(clock.now()) == []
    kv.close()


def _redis_gdpr_client(client_indices: bool):
    from repro.bench.records import RecordCorpusConfig, generate_corpus
    from repro.clients import RedisGDPRClient

    client = RedisGDPRClient(FeatureSet.none(), client_indices=client_indices)
    client.load_records(generate_corpus(
        RecordCorpusConfig(record_count=2000, user_count=200, seed=31)
    ))
    return client


def test_ablation_redis_metadata_query_scan(benchmark):
    """Stock architecture: READ-DATA-BY-USR walks the whole keyspace."""
    from repro.gdpr import Principal

    client = _redis_gdpr_client(client_indices=False)
    try:
        result = benchmark(
            client.read_data_by_usr, Principal.customer("u00007"), "u00007"
        )
        assert len(result) == 10
    finally:
        client.close()


def test_ablation_redis_metadata_query_indexed(benchmark):
    """§7.2 'efficient metadata indexing': client-maintained SET reverse
    indices turn the same query into one SMEMBERS + k HGETALLs."""
    from repro.gdpr import Principal

    client = _redis_gdpr_client(client_indices=True)
    try:
        result = benchmark(
            client.read_data_by_usr, Principal.customer("u00007"), "u00007"
        )
        assert len(result) == 10
    finally:
        client.close()


def _aof_engine(tmp_path_str, fsync):
    from repro.minikv import MiniKV, MiniKVConfig

    return MiniKV(MiniKVConfig(
        aof_path=f"{tmp_path_str}/kv-{fsync}.aof", fsync=fsync, log_reads=True,
    ))


def test_ablation_audit_fsync_always(benchmark, tmp_path):
    """§7.2 'efficient auditing': per-command fsync is the strict end."""
    kv = _aof_engine(str(tmp_path), "always")
    try:
        def write_block():
            for i in range(200):
                kv.set(f"k{i}", b"v" * 50)

        benchmark(write_block)
    finally:
        kv.close()


def test_ablation_audit_fsync_everysec(benchmark, tmp_path):
    """Group-commit batching (the paper's AOF configuration)."""
    kv = _aof_engine(str(tmp_path), "everysec")
    try:
        def write_block():
            for i in range(200):
                kv.set(f"k{i}", b"v" * 50)

        benchmark(write_block)
    finally:
        kv.close()


def test_ablation_audit_fsync_no(benchmark, tmp_path):
    """OS-buffered logging: cheapest, weakest durability guarantee."""
    kv = _aof_engine(str(tmp_path), "no")
    try:
        def write_block():
            for i in range(200):
                kv.set(f"k{i}", b"v" * 50)

        benchmark(write_block)
    finally:
        kv.close()


def test_ablation_wire_serialisation_only(benchmark):
    """The protocol-encoding cost every configuration pays."""
    client = make_client("redis", FeatureSet.none())
    try:
        _fill_kv(client, 100)
        benchmark(client.ycsb_read, "user0000000001")
    finally:
        client.close()


def test_ablation_wire_with_tls(benchmark):
    """Marginal cipher cost on top of serialisation (the encrypt bar)."""
    client = make_client("redis", FeatureSet(encryption=True, access_control=False))
    try:
        _fill_kv(client, 100)
        benchmark(client.ycsb_read, "user0000000001")
    finally:
        client.close()
