"""Figure 5 — GDPRbench completion time per workload on compliant systems.

Paper (100K records, 10K ops/workload, 8 threads — scaled down here):
processor fastest and controller slowest on Redis; PostgreSQL an order of
magnitude faster overall; metadata indices improve PostgreSQL further.
"""

from conftest import report, run_once

from repro.experiments import fig5


def test_fig5_gdprbench_completion_times(benchmark):
    result = run_once(
        benchmark, fig5.run, records=4000, operations=300, threads=8,
    )
    report(result)
    # Additional quantitative shape: the controller/processor gap on Redis
    # is within the paper's 2-10x band at this scale.
    redis_row = next(row for row in result.rows if row["config"] == "redis")
    gap = redis_row["controller_s"] / redis_row["processor_s"]
    assert 2.0 <= gap


def test_fig5_single_workload_redis_controller(benchmark):
    """Microbenchmark: one controller run on compliant Redis."""
    from repro.bench.records import RecordCorpusConfig
    from repro.bench.session import GDPRBenchConfig, GDPRBenchSession
    from repro.clients import FeatureSet

    config = GDPRBenchConfig(
        engine="redis",
        features=FeatureSet.full(),
        corpus=RecordCorpusConfig(record_count=1000, user_count=100),
        operation_count=50,
        threads=4,
    )
    with GDPRBenchSession(config) as session:
        session.load()
        result = benchmark.pedantic(
            session.run, args=("controller",), kwargs={"measure_space": False},
            rounds=1, iterations=1,
        )
        assert result.correctness_pct == 100.0
