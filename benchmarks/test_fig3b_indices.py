"""Figure 3b — PostgreSQL throughput vs number of secondary indices.

Paper: pgbench TPS drops to ~33% of baseline with two metadata indices.
Our in-memory substrate shows the same monotone decline (milder, since the
paper's 15 GB dataset added disk I/O amplification we do not model).
"""

from conftest import report, run_once

from repro.experiments import fig3b


def test_fig3b_index_overhead_curve(benchmark):
    result = run_once(benchmark, fig3b.run, rows=3000, ops=2000)
    report(result)


def test_fig3b_zero_index_throughput(benchmark):
    tps = benchmark.pedantic(
        fig3b.transactions_per_second, args=(1500, 1000, 0), rounds=1, iterations=1
    )
    assert tps > 0


def test_fig3b_two_index_throughput(benchmark):
    tps = benchmark.pedantic(
        fig3b.transactions_per_second, args=(1500, 1000, 2), rounds=1, iterations=1
    )
    assert tps > 0
