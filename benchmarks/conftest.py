"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one paper artefact (figure or table) at a
laptop-friendly scale, times it through pytest-benchmark, prints the
regenerated rows next to the paper's expectation, and asserts the *shape*
(orderings, growth trends, ratios) rather than absolute numbers — the
substrate here is a simulator, not the authors' 40-core testbed.

Heavyweight experiment runs use ``benchmark.pedantic(..., rounds=1)`` so
pytest-benchmark reports their wall time without re-running a multi-second
experiment dozens of times.
"""

from __future__ import annotations

import os
import sys


#: regenerated figure/table rows from the latest benchmark run land here
#: (pytest's fd-level capture swallows per-test output of passing tests,
#: so an artifact file is the reliable place to inspect them)
FIGURES_PATH = os.path.join(os.path.dirname(__file__), "..", "benchmark_figures.txt")


def pytest_sessionstart(session):
    """Start a fresh figures artifact for this run."""
    with open(FIGURES_PATH, "w", encoding="utf-8") as handle:
        handle.write("# Regenerated paper figures/tables from the latest "
                     "`pytest benchmarks/ --benchmark-only` run\n\n")


def report(result) -> None:
    """Record a regenerated figure/table and assert its shape checks."""
    print(result.render(), file=sys.stderr)  # visible with -s / on failure
    with open(FIGURES_PATH, "a", encoding="utf-8") as handle:
        handle.write(result.render() + "\n\n")
    result.check()


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
