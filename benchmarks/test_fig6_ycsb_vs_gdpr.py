"""Figure 6 — representative throughput: YCSB vs GDPRbench, both engines.

Paper: ~10^4 ops/s on YCSB for both systems, versus GDPR workloads running
2-3 orders of magnitude slower on PostgreSQL and ~4 orders on Redis.
"""

from conftest import report, run_once

from repro.experiments import fig6


def test_fig6_representative_throughput(benchmark):
    result = run_once(
        benchmark, fig6.run,
        records=2000, ycsb_operations=2000, gdpr_operations=200, threads=4,
    )
    report(result)
    bars = {row["series"]: row["throughput_ops_s"] for row in result.rows}
    # YCSB lands in the >10^3 band on this substrate; the redis GDPR bar is
    # the slowest of the four, as in the paper.
    assert bars["ycsb-redis"] > 1000
    assert bars["ycsb-postgres"] > 1000
    assert bars["gdpr-redis"] == min(bars.values())
