"""Throughput regression harness — the repo's perf trajectory anchor.

Writes ``BENCH_throughput.json`` at the repo root: YCSB ops/s for every
engine configuration x thread count x feature set, so future PRs can
compare their numbers against the trajectory instead of guessing.

Records are redis-benchmark-sized (1 field x 16 bytes): the harness
measures engine + protocol overhead, not payload serialisation.

Asserted floors:

* **minikv** (PR 1 tentpole): at 8 benchmark threads the striped +
  pipelined configuration sustains >= 2x the YCSB-C throughput of the
  seed single-lock configuration, and an AOF written under group commit
  replays into an identical keyspace.
* **minisql** (PR 2 tentpole): at 8 benchmark threads the per-table
  reader-writer + transaction-batched configuration sustains >= 2x the
  seed global-lock configuration on the same read-heavy YCSB-C stream.

Profiles: ``REPRO_BENCH_PROFILE=smoke`` shrinks the grid for the CI
pull-request gate (the floors are still asserted); the default ``full``
profile regenerates the canonical ``BENCH_throughput.json``.
"""

from __future__ import annotations

import json
import os
import statistics

from repro.bench.session import YCSBSession, YCSBSessionConfig
from repro.bench.ycsb import YCSBConfig
from repro.clients.base import FeatureSet
from repro.minikv import MiniKV, MiniKVConfig

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_throughput.json")

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "full")

#: (engine label, make_client engine name, client kwargs, batch_size)
ENGINE_CONFIGS = (
    ("redis-single-lock", "redis", {"stripes": 1}, 1),
    ("redis-striped-pipelined", "redis", {"stripes": 16}, 128),
    ("postgres-global-lock", "postgres", {"locking": "global"}, 1),
    ("postgres-rw-batched", "postgres", {"locking": "table-rw"}, 128),
)

FEATURE_SETS = (
    ("baseline", FeatureSet.none),
    ("full-gdpr", FeatureSet.full),
)

THREAD_COUNTS = (1, 2, 4, 8)
WORKLOAD = "C"
if PROFILE == "smoke":
    RECORDS = 500
    OPERATIONS = 2000
    SQL_OPERATIONS = 1000
    ASSERT_SAMPLES = 1
else:
    RECORDS = 2000
    OPERATIONS = 6000
    SQL_OPERATIONS = 2000
    #: median-of-N for the asserted 8-thread pairs (thread scheduling jitter)
    ASSERT_SAMPLES = 3

#: the asserted pairs — (baseline config, scaled config, op count) — derived
#: from the grid's own ENGINE_CONFIGS rows so the floor always measures
#: exactly the configurations the JSON records
_CONFIG_BY_LABEL = {
    label: (engine, client_kwargs, batch_size)
    for label, engine, client_kwargs, batch_size in ENGINE_CONFIGS
}
FLOOR_PAIRS = {
    "redis": (
        _CONFIG_BY_LABEL["redis-single-lock"],
        _CONFIG_BY_LABEL["redis-striped-pipelined"],
        OPERATIONS,
    ),
    "sql": (
        _CONFIG_BY_LABEL["postgres-global-lock"],
        _CONFIG_BY_LABEL["postgres-rw-batched"],
        SQL_OPERATIONS,
    ),
}


def _throughput(engine: str, client_kwargs: dict, batch_size: int,
                features: FeatureSet, threads: int, operations: int = OPERATIONS) -> float:
    config = YCSBSessionConfig(
        engine=engine,
        features=features,
        ycsb=YCSBConfig(
            record_count=RECORDS, operation_count=operations,
            field_count=1, field_length=16, seed=42,
        ),
        threads=threads,
        batch_size=batch_size,
        client_kwargs=dict(client_kwargs),
    )
    with YCSBSession(config) as session:
        session.load()
        run = session.run(WORKLOAD)
        assert run.correctness_pct == 100.0
        return run.throughput_ops_s


def _measure_floor(pair, samples: int) -> tuple[float, float]:
    slow_config, fast_config, operations = pair
    slow_engine, slow_kwargs, slow_batch = slow_config
    fast_engine, fast_kwargs, fast_batch = fast_config
    slow = statistics.median(
        _throughput(slow_engine, slow_kwargs, slow_batch, FeatureSet.none(), 8,
                    operations)
        for _ in range(samples)
    )
    fast = statistics.median(
        _throughput(fast_engine, fast_kwargs, fast_batch, FeatureSet.none(), 8,
                    operations)
        for _ in range(samples)
    )
    return slow, fast


def _floor_speedup(pair) -> tuple[float, float, float]:
    # Thread scheduling on small shared CI runners is noisy: if the first
    # median misses the floor, re-measure once with more samples before
    # declaring a regression.
    slow, fast = _measure_floor(pair, ASSERT_SAMPLES)
    if fast / slow < 2.0:
        slow, fast = _measure_floor(pair, ASSERT_SAMPLES + 2)
    return fast / slow, slow, fast


def test_throughput_regression_grid(benchmark):
    def run_grid():
        results = []
        for label, engine, client_kwargs, batch_size in ENGINE_CONFIGS:
            for feature_label, feature_factory in FEATURE_SETS:
                for threads in THREAD_COUNTS:
                    # minisql statements cost more than minikv commands;
                    # a smaller op count keeps its half of the grid from
                    # dominating the harness runtime.
                    operations = OPERATIONS if engine == "redis" else SQL_OPERATIONS
                    ops_s = _throughput(
                        engine, client_kwargs, batch_size,
                        feature_factory(), threads, operations,
                    )
                    results.append({
                        "engine": label,
                        "features": feature_label,
                        "threads": threads,
                        "batch_size": batch_size,
                        "workload": f"ycsb-{WORKLOAD}",
                        "ops_s": round(ops_s),
                    })
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    # The asserted pairs get median-of-N on top of the recorded grid.
    redis_speedup, redis_single, redis_striped = _floor_speedup(FLOOR_PAIRS["redis"])
    sql_speedup, sql_global, sql_batched = _floor_speedup(FLOOR_PAIRS["sql"])

    payload = {
        "workload": f"ycsb-{WORKLOAD}",
        "profile": PROFILE,
        "record_count": RECORDS,
        "operation_count": OPERATIONS,
        "sql_operation_count": SQL_OPERATIONS,  # the postgres-* rows' size
        "field_count": 1,
        "field_length": 16,
        "thread_counts": list(THREAD_COUNTS),
        "asserted_speedup_at_8_threads": round(redis_speedup, 2),
        "asserted_sql_speedup_at_8_threads": round(sql_speedup, 2),
        "results": results,
    }
    if PROFILE == "full":
        # Only the canonical profile rewrites the tracked trajectory file.
        with open(BENCH_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    assert redis_speedup >= 2.0, (
        f"striped+pipelined at 8 threads is only {redis_speedup:.2f}x the seed "
        f"single-lock engine ({redis_striped:.0f} vs {redis_single:.0f} ops/s); "
        "the PR 1 tentpole requires >= 2x"
    )
    assert sql_speedup >= 2.0, (
        f"rw+batched minisql at 8 threads is only {sql_speedup:.2f}x the seed "
        f"global-lock engine ({sql_batched:.0f} vs {sql_global:.0f} ops/s); "
        "the PR 2 tentpole requires >= 2x"
    )


def test_group_commit_aof_replay_identity(tmp_path):
    """AOF written under group commit must replay to an identical keyspace."""
    path = str(tmp_path / "grouped.aof")
    with MiniKV(MiniKVConfig(aof_path=path, fsync="always", aof_batch_size=64)) as kv:
        pipe = kv.pipeline()
        for i in range(500):
            pipe.set(f"k{i}", b"v%d" % i)
            if i % 3 == 0:
                pipe.expire(f"k{i}", 3600.0)
        pipe.execute()
        kv.hmset("h", {"a": b"1", "b": b"2"})
        kv.sadd("s", b"x", b"y")
        kv.delete("k0", "k1")
        expected = {
            key: kv.hgetall(key) if key == "h"
            else (kv.smembers(key) if key == "s" else kv.get(key))
            for key in kv.keys()
        }
    with MiniKV(MiniKVConfig(aof_path=path, fsync="always")) as replayed:
        rebuilt = {
            key: replayed.hgetall(key) if key == "h"
            else (replayed.smembers(key) if key == "s" else replayed.get(key))
            for key in replayed.keys()
        }
    assert rebuilt == expected
    assert len(rebuilt) == 500  # 502 written, 2 deleted
