"""Throughput regression harness — the repo's perf trajectory anchor.

Writes ``BENCH_throughput.json`` at the repo root: YCSB ops/s for every
engine configuration x thread count x feature set, so future PRs can
compare their numbers against the trajectory instead of guessing.

Records are redis-benchmark-sized (1 field x 16 bytes): the harness
measures engine + protocol overhead, not payload serialisation.

Asserted floor (this PR's tentpole): at 8 benchmark threads the
striped + pipelined minikv configuration sustains >= 2x the YCSB
throughput of the seed single-lock configuration, and an AOF written
under group commit replays into an identical keyspace.
"""

from __future__ import annotations

import json
import os
import statistics

from repro.bench.session import YCSBSession, YCSBSessionConfig
from repro.bench.ycsb import YCSBConfig
from repro.clients.base import FeatureSet
from repro.minikv import MiniKV, MiniKVConfig

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_throughput.json")

#: (engine label, make_client engine name, client kwargs, batch_size)
ENGINE_CONFIGS = (
    ("redis-single-lock", "redis", {"stripes": 1}, 1),
    ("redis-striped-pipelined", "redis", {"stripes": 16}, 128),
    ("postgres", "postgres", {}, 1),
)

FEATURE_SETS = (
    ("baseline", FeatureSet.none),
    ("full-gdpr", FeatureSet.full),
)

THREAD_COUNTS = (1, 2, 4, 8)
WORKLOAD = "C"
RECORDS = 2000
OPERATIONS = 6000
#: median-of-N for the asserted 8-thread pair (thread scheduling jitter)
ASSERT_SAMPLES = 3


def _throughput(engine: str, client_kwargs: dict, batch_size: int,
                features: FeatureSet, threads: int, operations: int = OPERATIONS) -> float:
    config = YCSBSessionConfig(
        engine=engine,
        features=features,
        ycsb=YCSBConfig(
            record_count=RECORDS, operation_count=operations,
            field_count=1, field_length=16, seed=42,
        ),
        threads=threads,
        batch_size=batch_size,
        client_kwargs=dict(client_kwargs),
    )
    with YCSBSession(config) as session:
        session.load()
        run = session.run(WORKLOAD)
        assert run.correctness_pct == 100.0
        return run.throughput_ops_s


def test_throughput_regression_grid(benchmark):
    def run_grid():
        results = []
        for label, engine, client_kwargs, batch_size in ENGINE_CONFIGS:
            for feature_label, feature_factory in FEATURE_SETS:
                for threads in THREAD_COUNTS:
                    # postgres has no pipelined path and is slower — one
                    # one-thread point per feature set keeps it honest
                    # without dominating the harness runtime.
                    if engine == "postgres" and threads != 1:
                        continue
                    operations = OPERATIONS if engine == "redis" else 2000
                    ops_s = _throughput(
                        engine, client_kwargs, batch_size,
                        feature_factory(), threads, operations,
                    )
                    results.append({
                        "engine": label,
                        "features": feature_label,
                        "threads": threads,
                        "batch_size": batch_size,
                        "workload": f"ycsb-{WORKLOAD}",
                        "ops_s": round(ops_s),
                    })
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    # The asserted pair gets median-of-N on top of the recorded grid.
    # Thread scheduling on small shared CI runners is noisy: if the first
    # median misses the floor, re-measure once with more samples before
    # declaring a regression.
    def measure_pair(samples: int) -> tuple[float, float]:
        single = statistics.median(
            _throughput("redis", {"stripes": 1}, 1, FeatureSet.none(), 8)
            for _ in range(samples)
        )
        striped = statistics.median(
            _throughput("redis", {"stripes": 16}, 128, FeatureSet.none(), 8)
            for _ in range(samples)
        )
        return single, striped

    single, striped = measure_pair(ASSERT_SAMPLES)
    if striped / single < 2.0:
        single, striped = measure_pair(ASSERT_SAMPLES + 2)
    speedup = striped / single

    payload = {
        "workload": f"ycsb-{WORKLOAD}",
        "record_count": RECORDS,
        "operation_count": OPERATIONS,
        "field_count": 1,
        "field_length": 16,
        "thread_counts": list(THREAD_COUNTS),
        "asserted_speedup_at_8_threads": round(speedup, 2),
        "results": results,
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    assert speedup >= 2.0, (
        f"striped+pipelined at 8 threads is only {speedup:.2f}x the seed "
        f"single-lock engine ({striped:.0f} vs {single:.0f} ops/s); "
        "the tentpole requires >= 2x"
    )


def test_group_commit_aof_replay_identity(tmp_path):
    """AOF written under group commit must replay to an identical keyspace."""
    path = str(tmp_path / "grouped.aof")
    with MiniKV(MiniKVConfig(aof_path=path, fsync="always", aof_batch_size=64)) as kv:
        pipe = kv.pipeline()
        for i in range(500):
            pipe.set(f"k{i}", b"v%d" % i)
            if i % 3 == 0:
                pipe.expire(f"k{i}", 3600.0)
        pipe.execute()
        kv.hmset("h", {"a": b"1", "b": b"2"})
        kv.sadd("s", b"x", b"y")
        kv.delete("k0", "k1")
        expected = {
            key: kv.hgetall(key) if key == "h"
            else (kv.smembers(key) if key == "s" else kv.get(key))
            for key in kv.keys()
        }
    with MiniKV(MiniKVConfig(aof_path=path, fsync="always")) as replayed:
        rebuilt = {
            key: replayed.hgetall(key) if key == "h"
            else (replayed.smembers(key) if key == "s" else replayed.get(key))
            for key in replayed.keys()
        }
    assert rebuilt == expected
    assert len(rebuilt) == 500  # 502 written, 2 deleted
