"""Throughput regression harness — the repo's perf trajectory anchor.

Writes ``BENCH_throughput.json`` at the repo root: YCSB ops/s for every
engine configuration x thread count x feature set, so future PRs can
compare their numbers against the trajectory instead of guessing.

Records are redis-benchmark-sized (1 field x 16 bytes): the harness
measures engine + protocol overhead, not payload serialisation.

Asserted floors:

* **minikv** (PR 1 tentpole): at 8 benchmark threads the striped +
  pipelined configuration sustains >= 2x the YCSB-C throughput of the
  seed single-lock configuration, and an AOF written under group commit
  replays into an identical keyspace.
* **minisql** (PR 2 tentpole): at 8 benchmark threads the per-table
  reader-writer + transaction-batched configuration sustains >= 2x the
  seed global-lock configuration on the same read-heavy YCSB-C stream.
* **minisql MVCC** (PR 3 tentpole): at 8 benchmark threads the
  snapshot-read configuration (``locking="mvcc"``) matches or beats the
  rw+batched configuration on read-heavy YCSB-C (measured as the median
  of interleaved paired runs, so machine drift cancels), and sustains
  >= 2x the rw+batched configuration on the **mixed readers-vs-purge**
  scenario — a continuous TTL purge cycle against the same table, the
  paper's central contention case.
* **minikv sharding** (PR 4 tentpole): 4 shard worker processes vs 1
  shard (the paper's in-process engine) on the **full-GDPR** feature
  set — the deployment sharding targets, where strict TTL scans, read
  audit logging, and at-rest encryption make every operation
  engine-dominated.  The floor is CPU-tiered because process sharding
  buys *parallelism*: >= 2x with 4+ usable cores (every CI runner), a
  weaker scaling bound with 2-3, and on a single core — where no
  parallelism exists to win — the assertion degrades to a router-tax
  bound (sharded throughput stays within a small constant of the
  in-process engine).  The measured ratio and the tier that was
  asserted are both recorded in the JSON.
* **minisql sharding** (PR 5 tentpole): the SQL twin of the minikv
  floor — 4 minisql shard worker processes vs the in-process
  ``Database`` facade on the same full-GDPR YCSB-C stream at 8 threads,
  same batch size on both sides, same CPU tiers.  Under the full
  feature set every statement pays index maintenance, audit logging
  with response payloads, and at-rest cipher work inside the engine,
  which is exactly the work primary-key sharding spreads across worker
  processes.
* **tcp transport router tax** (PR 7 tentpole): the sharded fronts on
  the TCP socket transport vs the same 4-shard deployment on the
  default pipe transport, full-GDPR YCSB-C at 8 threads.  TCP pays a
  real tax (length-prefixed frames, kernel socket buffers) but with
  ``TCP_NODELAY`` and per-batch round-trips it must stay within 2x of
  pipes: the asserted floor is **tcp >= 0.5x pipe** for both engines.
* **autopipe** (PR 8 tentpole): 8 open-loop issuer threads at
  saturation against the 4-shard TCP deployment on the full-GDPR
  YCSB-C mix, each issuer coalescing bare client calls through
  ``client.autopipe(...)`` vs the same issuers making unbatched
  per-call round-trips.  Implicit pipelining must buy >= 2x the
  per-call throughput — the futures front end has to deliver the
  explicit-batching win without the call sites opting in.  Measured
  where round-trips are real (frames over kernel sockets to worker
  processes); connection warmup is excluded from the timed window.

Besides the closed-loop grid, the JSON carries **open-loop** rows
(``workload: "openloop-ycsb-C"``): Poisson-arrival runs at offered
loads swept around the measured per-call capacity, reporting achieved
ops/s and p50/p99 *sojourn* time (queueing + service, measured from
each request's scheduled arrival — see :mod:`repro.bench.openloop`).
Sweep rows are report-only; only the saturation pair is asserted.

Every grid row also records the merged per-operation ``p50_us`` /
``p99_us`` latency (report-only — no floor asserts on percentiles), so
the trajectory file tracks tail latency alongside throughput.

Profiles: ``REPRO_BENCH_PROFILE=smoke`` shrinks the grid for the CI
pull-request gate (the floors are still asserted); the default ``full``
profile regenerates the canonical ``BENCH_throughput.json``.
"""

from __future__ import annotations

import json
import math
import os
import statistics

from repro.bench import ycsb as ycsb_mod
from repro.bench.openloop import OpenLoopConfig, OpenLoopReport, run_open_loop
from repro.bench.session import YCSBSession, YCSBSessionConfig
from repro.bench.ycsb import YCSBConfig
from repro.clients import make_client
from repro.clients.base import FeatureSet
from repro.experiments.scale import (
    readers_vs_purge_throughput,
    shard_floor_min,
    usable_cores,
)
from repro.minikv import MiniKV, MiniKVConfig

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_throughput.json")

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "full")

#: (engine label, make_client engine name, client kwargs, batch_size)
ENGINE_CONFIGS = (
    ("redis-single-lock", "redis", {"stripes": 1}, 1),
    ("redis-striped-pipelined", "redis", {"stripes": 16}, 128),
    ("redis-sharded-4", "redis", {"shards": 4}, 128),
    ("redis-sharded-4-tcp", "redis", {"shards": 4, "transport": "tcp"}, 128),
    ("postgres-global-lock", "postgres", {"locking": "global"}, 1),
    ("postgres-rw-batched", "postgres", {"locking": "table-rw"}, 128),
    ("postgres-mvcc", "postgres", {"locking": "mvcc"}, 128),
    ("postgres-sharded-4", "postgres", {"shards": 4}, 128),
    ("postgres-sharded-4-tcp", "postgres",
     {"shards": 4, "transport": "tcp"}, 128),
)

FEATURE_SETS = (
    ("baseline", FeatureSet.none),
    ("full-gdpr", FeatureSet.full),
)

THREAD_COUNTS = (1, 2, 4, 8)
WORKLOAD = "C"
if PROFILE == "smoke":
    RECORDS = 500
    OPERATIONS = 2000
    SQL_OPERATIONS = 1000
    ASSERT_SAMPLES = 1
else:
    RECORDS = 2000
    OPERATIONS = 6000
    SQL_OPERATIONS = 2000
    #: median-of-N for the asserted 8-thread pairs (thread scheduling jitter)
    ASSERT_SAMPLES = 3

#: the asserted pairs — (baseline config, scaled config, op count) — derived
#: from the grid's own ENGINE_CONFIGS rows so the floor always measures
#: exactly the configurations the JSON records
_CONFIG_BY_LABEL = {
    label: (engine, client_kwargs, batch_size)
    for label, engine, client_kwargs, batch_size in ENGINE_CONFIGS
}
FLOOR_PAIRS = {
    "redis": (
        _CONFIG_BY_LABEL["redis-single-lock"],
        _CONFIG_BY_LABEL["redis-striped-pipelined"],
        OPERATIONS,
    ),
    "sql": (
        _CONFIG_BY_LABEL["postgres-global-lock"],
        _CONFIG_BY_LABEL["postgres-rw-batched"],
        SQL_OPERATIONS,
    ),
}

#: the MVCC read-parity pair: rw+batched is the baseline, mvcc must match
MVCC_PAIR = (
    _CONFIG_BY_LABEL["postgres-rw-batched"],
    _CONFIG_BY_LABEL["postgres-mvcc"],
    SQL_OPERATIONS,
)

#: the sharding pair: 4 worker processes vs 1 shard (the in-process
#: engine) at the *same* batch size, so the floor isolates process
#: parallelism rather than re-banking PR 1's pipelining win.  Measured
#: on the full-GDPR feature set, where per-op engine work dominates —
#: the deployment process sharding targets.  (The baseline is not a
#: grid row: it is the single-lock engine plus the sharded config's
#: pipelining, the fairest 1-shard twin of ``redis-sharded-4``.)
SHARD_PAIR = (
    ("redis", {"stripes": 1, "shards": 1},
     _CONFIG_BY_LABEL["redis-sharded-4"][2]),
    _CONFIG_BY_LABEL["redis-sharded-4"],
    OPERATIONS,
)

#: the SQL sharding pair (PR 5 tentpole): 4 minisql worker processes vs
#: the in-process Database facade at the same batch size, measured on
#: the full-GDPR feature set — the direct twin of SHARD_PAIR.
SQL_SHARD_PAIR = (
    ("postgres", {"shards": 1}, _CONFIG_BY_LABEL["postgres-sharded-4"][2]),
    _CONFIG_BY_LABEL["postgres-sharded-4"],
    SQL_OPERATIONS,
)

#: the transport pairs (PR 7 tentpole): the same 4-shard deployment on
#: TCP sockets vs multiprocessing pipes, full-GDPR YCSB-C.  The "slow"
#: slot holds the pipe baseline and the "fast" slot holds TCP, so the
#: reported ratio is tcp/pipe and the floor reads "tcp keeps at least
#: half the pipe throughput" — a router-tax bound, not a speedup claim.
TCP_SHARD_PAIR = (
    _CONFIG_BY_LABEL["redis-sharded-4"],
    _CONFIG_BY_LABEL["redis-sharded-4-tcp"],
    OPERATIONS,
)
SQL_TCP_SHARD_PAIR = (
    _CONFIG_BY_LABEL["postgres-sharded-4"],
    _CONFIG_BY_LABEL["postgres-sharded-4-tcp"],
    SQL_OPERATIONS,
)

#: the autopipe open-loop setup (PR 8 tentpole): 8 issuer threads against
#: the 4-shard TCP deployment with full-GDPR features — the config where
#: every per-call request pays a real wire round-trip (frame, kernel
#: socket, worker wakeup), which is exactly the overhead implicit
#: coalescing removes.  On the in-process engine a "round-trip" is a
#: function call and batching buys little; asserting there would measure
#: future-object overhead, not the pipelining win.
OPENLOOP_ISSUERS = 8
AUTOPIPE_BATCH = 128
OPENLOOP_CLIENT = ("redis", {"shards": 4, "transport": "tcp"})
#: offered loads for the report-only sweep, as fractions of the measured
#: per-call saturation capacity: under, at, and past the knee
OPENLOOP_LOAD_MULTIPLIERS = (0.5, 1.0, 2.0)

#: CPU-tiered shard floor, shared with fig10s (repro.experiments.scale
#: owns the tier table): 2x with 4+ usable cores (every CI runner),
#: a weaker scaling bound at 2-3, and on one core only the router-tax
#: bound — there is no second core for the workers to win.
SHARD_FLOOR_CORES = usable_cores()
SHARD_FLOOR_MIN = shard_floor_min(SHARD_FLOOR_CORES)


def _run_ycsb(engine: str, client_kwargs: dict, batch_size: int,
              features: FeatureSet, threads: int, operations: int = OPERATIONS):
    config = YCSBSessionConfig(
        engine=engine,
        features=features,
        ycsb=YCSBConfig(
            record_count=RECORDS, operation_count=operations,
            field_count=1, field_length=16, seed=42,
        ),
        threads=threads,
        batch_size=batch_size,
        client_kwargs=dict(client_kwargs),
    )
    with YCSBSession(config) as session:
        session.load()
        run = session.run(WORKLOAD)
        assert run.correctness_pct == 100.0
        return run


def _throughput(engine: str, client_kwargs: dict, batch_size: int,
                features: FeatureSet, threads: int, operations: int = OPERATIONS) -> float:
    return _run_ycsb(engine, client_kwargs, batch_size, features, threads,
                     operations).throughput_ops_s


def _measure_floor(pair, samples: int, features_factory=FeatureSet.none) -> tuple[float, float]:
    slow_config, fast_config, operations = pair
    slow_engine, slow_kwargs, slow_batch = slow_config
    fast_engine, fast_kwargs, fast_batch = fast_config
    slow = statistics.median(
        _throughput(slow_engine, slow_kwargs, slow_batch, features_factory(), 8,
                    operations)
        for _ in range(samples)
    )
    fast = statistics.median(
        _throughput(fast_engine, fast_kwargs, fast_batch, features_factory(), 8,
                    operations)
        for _ in range(samples)
    )
    return slow, fast


def _floor_speedup(pair, floor: float = 2.0,
                   features_factory=FeatureSet.none) -> tuple[float, float, float]:
    # Thread scheduling on small shared CI runners is noisy: if the first
    # median misses the floor, re-measure once with more samples before
    # declaring a regression.
    slow, fast = _measure_floor(pair, ASSERT_SAMPLES, features_factory)
    if fast / slow < floor:
        slow, fast = _measure_floor(pair, ASSERT_SAMPLES + 2, features_factory)
    return fast / slow, slow, fast


def _paired_ratio(pair, samples: int) -> float:
    """Median of interleaved paired run ratios (fast/slow).

    Pairing each fast run with an adjacent slow run cancels slow drift of
    the host (thermal throttling, noisy CI neighbours), which matters for
    a parity floor (>= 1.0x) far more than for the coarse >= 2x floors.
    """
    slow_config, fast_config, operations = pair
    slow_engine, slow_kwargs, slow_batch = slow_config
    fast_engine, fast_kwargs, fast_batch = fast_config
    ratios = []
    for _ in range(samples):
        slow = _throughput(slow_engine, slow_kwargs, slow_batch,
                           FeatureSet.none(), 8, operations)
        fast = _throughput(fast_engine, fast_kwargs, fast_batch,
                           FeatureSet.none(), 8, operations)
        ratios.append(fast / slow)
    return statistics.median(ratios)


def _mvcc_read_parity() -> float:
    """mvcc / rw+batched YCSB-C ratio at 8 threads, escalating on a miss."""
    ratio = _paired_ratio(MVCC_PAIR, max(ASSERT_SAMPLES, 3))
    if ratio < 1.0:
        ratio = _paired_ratio(MVCC_PAIR, ASSERT_SAMPLES + 4)
    return ratio


def _mixed_purge_throughputs(samples: int) -> tuple[float, float]:
    """(rw, mvcc) reader ops/s under the concurrent TTL purge cycle."""
    operations = SQL_OPERATIONS
    rw = statistics.median(
        readers_vs_purge_throughput("table-rw", record_count=RECORDS,
                                    operations=operations)
        for _ in range(samples)
    )
    mvcc = statistics.median(
        readers_vs_purge_throughput("mvcc", record_count=RECORDS,
                                    operations=operations)
        for _ in range(samples)
    )
    return rw, mvcc


def _openloop_report(autopipe_batch: int, offered_ops_s: float) -> OpenLoopReport:
    """One open-loop run: load the YCSB table, replay workload C."""
    engine, client_kwargs = OPENLOOP_CLIENT
    config = ycsb_mod.YCSBConfig(
        record_count=RECORDS, operation_count=OPERATIONS,
        field_count=1, field_length=16, seed=42,
    )
    client = make_client(engine, FeatureSet.full(), **client_kwargs)
    try:
        ycsb_mod.run_load(client, config)
        operations = ycsb_mod.transaction_operations(
            ycsb_mod.WORKLOADS[WORKLOAD], config,
            insert_start=config.record_count,
        )
        report = run_open_loop(client, operations, OpenLoopConfig(
            offered_load_ops_s=offered_ops_s,
            issuers=OPENLOOP_ISSUERS,
            autopipe_batch=autopipe_batch,
        ))
    finally:
        client.close()
    assert report.failed == 0, (
        f"open-loop run dropped {report.failed} operations "
        f"(mode batch={autopipe_batch}, offered={offered_ops_s})"
    )
    return report


def _openloop_row(mode: str, batch: int, report: OpenLoopReport) -> dict:
    engine, client_kwargs = OPENLOOP_CLIENT
    row = {
        "engine": f"{engine}-sharded-{client_kwargs.get('shards', 1)}-tcp",
        "features": "full-gdpr",
        "threads": OPENLOOP_ISSUERS,
        "batch_size": batch if batch else 1,
        "shards": client_kwargs.get("shards", 1),
        "transport": client_kwargs.get("transport", "pipe"),
        "workload": f"openloop-ycsb-{WORKLOAD}",
        "mode": mode,
    }
    row.update(report.as_row())
    return row


def _autopipe_floor() -> tuple[float, float, float]:
    """(ratio, per-call ops/s, autopipe ops/s) at open-loop saturation."""
    def measure(samples: int) -> tuple[float, float]:
        percall = statistics.median(
            _openloop_report(0, math.inf).achieved_ops_s
            for _ in range(samples)
        )
        auto = statistics.median(
            _openloop_report(AUTOPIPE_BATCH, math.inf).achieved_ops_s
            for _ in range(samples)
        )
        return percall, auto

    percall, auto = measure(ASSERT_SAMPLES)
    if auto / percall < 2.0:  # same noise escalation as the other floors
        percall, auto = measure(ASSERT_SAMPLES + 2)
    return auto / percall, percall, auto


def test_throughput_regression_grid(benchmark):
    def run_grid():
        results = []
        for label, engine, client_kwargs, batch_size in ENGINE_CONFIGS:
            for feature_label, feature_factory in FEATURE_SETS:
                for threads in THREAD_COUNTS:
                    # minisql statements cost more than minikv commands;
                    # a smaller op count keeps its half of the grid from
                    # dominating the harness runtime.
                    operations = OPERATIONS if engine == "redis" else SQL_OPERATIONS
                    run = _run_ycsb(
                        engine, client_kwargs, batch_size,
                        feature_factory(), threads, operations,
                    )
                    results.append({
                        "engine": label,
                        "features": feature_label,
                        "threads": threads,
                        "batch_size": batch_size,
                        "shards": client_kwargs.get("shards", 1),
                        "transport": client_kwargs.get("transport", "pipe"),
                        "workload": f"ycsb-{WORKLOAD}",
                        "ops_s": round(run.throughput_ops_s),
                        # report-only tail latency (merged across op types)
                        "p50_us": round(run.stats.overall_percentile_us(50), 1),
                        "p99_us": round(run.stats.overall_percentile_us(99), 1),
                    })
        # the mixed readers-vs-purge scenario rides in the same grid file
        for locking, label in (("table-rw", "postgres-rw-batched"),
                               ("mvcc", "postgres-mvcc")):
            ops_s = readers_vs_purge_throughput(
                locking, record_count=RECORDS, operations=SQL_OPERATIONS
            )
            results.append({
                "engine": label,
                "features": "baseline",
                "threads": 8,
                "batch_size": 128,
                "shards": 1,
                "workload": "mixed-readers-vs-purge",
                "ops_s": round(ops_s),
            })
        # Open-loop columns: saturation capacity in both modes, then a
        # Poisson offered-load sweep around the per-call knee.  The
        # sweep's sojourn p50/p99 rows are the "latency under load"
        # picture a closed loop cannot produce; none are asserted here
        # (the saturation floor is asserted below, median-of-N).
        modes = (("per-call", 0), (f"autopipe-{AUTOPIPE_BATCH}", AUTOPIPE_BATCH))
        saturation = {}
        for mode, batch in modes:
            report = _openloop_report(batch, math.inf)
            saturation[mode] = report
            results.append(_openloop_row(mode, batch, report))
        percall_capacity = saturation["per-call"].achieved_ops_s
        for multiplier in OPENLOOP_LOAD_MULTIPLIERS:
            for mode, batch in modes:
                report = _openloop_report(batch, percall_capacity * multiplier)
                results.append(_openloop_row(mode, batch, report))
        return results

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    # The asserted pairs get median-of-N on top of the recorded grid.
    redis_speedup, redis_single, redis_striped = _floor_speedup(FLOOR_PAIRS["redis"])
    sql_speedup, sql_global, sql_batched = _floor_speedup(FLOOR_PAIRS["sql"])
    shard_speedup, shard_single, shard_four = _floor_speedup(
        SHARD_PAIR, floor=SHARD_FLOOR_MIN, features_factory=FeatureSet.full
    )
    sql_shard_speedup, sql_shard_single, sql_shard_four = _floor_speedup(
        SQL_SHARD_PAIR, floor=SHARD_FLOOR_MIN, features_factory=FeatureSet.full
    )
    tcp_ratio, tcp_pipe, tcp_sock = _floor_speedup(
        TCP_SHARD_PAIR, floor=0.5, features_factory=FeatureSet.full
    )
    sql_tcp_ratio, sql_tcp_pipe, sql_tcp_sock = _floor_speedup(
        SQL_TCP_SHARD_PAIR, floor=0.5, features_factory=FeatureSet.full
    )
    autopipe_speedup, autopipe_percall, autopipe_fast = _autopipe_floor()
    mvcc_parity = _mvcc_read_parity()
    mixed_rw, mixed_mvcc = _mixed_purge_throughputs(ASSERT_SAMPLES)
    if mixed_mvcc / mixed_rw < 2.0:  # same noise escalation as the floors
        mixed_rw, mixed_mvcc = _mixed_purge_throughputs(ASSERT_SAMPLES + 2)
    mixed_speedup = mixed_mvcc / mixed_rw

    payload = {
        "workload": f"ycsb-{WORKLOAD}",
        "profile": PROFILE,
        "record_count": RECORDS,
        "operation_count": OPERATIONS,
        "sql_operation_count": SQL_OPERATIONS,  # the postgres-* rows' size
        "field_count": 1,
        "field_length": 16,
        "thread_counts": list(THREAD_COUNTS),
        "asserted_speedup_at_8_threads": round(redis_speedup, 2),
        "asserted_sql_speedup_at_8_threads": round(sql_speedup, 2),
        "asserted_mvcc_read_parity_at_8_threads": round(mvcc_parity, 2),
        "asserted_mvcc_purge_speedup_at_8_threads": round(mixed_speedup, 2),
        "asserted_shard_speedup_at_8_threads": round(shard_speedup, 2),
        "asserted_sql_shard_speedup_at_8_threads": round(sql_shard_speedup, 2),
        "asserted_tcp_vs_pipe_ratio_at_8_threads": round(tcp_ratio, 2),
        "asserted_sql_tcp_vs_pipe_ratio_at_8_threads": round(sql_tcp_ratio, 2),
        "asserted_autopipe_speedup_at_8_issuers": round(autopipe_speedup, 2),
        "autopipe_floor": 2.0,
        "openloop_issuers": OPENLOOP_ISSUERS,
        "tcp_router_tax_floor": 0.5,
        "shard_floor_asserted_min": SHARD_FLOOR_MIN,
        "shard_floor_usable_cores": SHARD_FLOOR_CORES,
        "results": results,
    }
    if PROFILE == "full":
        # Only the canonical profile rewrites the tracked trajectory file.
        with open(BENCH_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    assert redis_speedup >= 2.0, (
        f"striped+pipelined at 8 threads is only {redis_speedup:.2f}x the seed "
        f"single-lock engine ({redis_striped:.0f} vs {redis_single:.0f} ops/s); "
        "the PR 1 tentpole requires >= 2x"
    )
    assert sql_speedup >= 2.0, (
        f"rw+batched minisql at 8 threads is only {sql_speedup:.2f}x the seed "
        f"global-lock engine ({sql_batched:.0f} vs {sql_global:.0f} ops/s); "
        "the PR 2 tentpole requires >= 2x"
    )
    assert mvcc_parity >= 1.0, (
        f"mvcc minisql at 8 threads reads at only {mvcc_parity:.2f}x the "
        "rw+batched configuration on YCSB-C; the PR 3 tentpole requires "
        "snapshot reads to match or beat shared read locks"
    )
    assert mixed_speedup >= 2.0, (
        f"mvcc under a concurrent TTL purge is only {mixed_speedup:.2f}x "
        f"rw+batched ({mixed_mvcc:.0f} vs {mixed_rw:.0f} ops/s); lock-free "
        "snapshot reads must at least double read throughput under purge "
        "contention"
    )
    assert shard_speedup >= SHARD_FLOOR_MIN, (
        f"4-shard minikv at 8 threads (full-GDPR features) is only "
        f"{shard_speedup:.2f}x the 1-shard in-process engine "
        f"({shard_four:.0f} vs {shard_single:.0f} ops/s); with "
        f"{SHARD_FLOOR_CORES} usable core(s) the PR 4 tentpole requires "
        f">= {SHARD_FLOOR_MIN}x (2x on the 4-core CI runners)"
    )
    assert sql_shard_speedup >= SHARD_FLOOR_MIN, (
        f"4-shard minisql at 8 threads (full-GDPR features) is only "
        f"{sql_shard_speedup:.2f}x the in-process Database facade "
        f"({sql_shard_four:.0f} vs {sql_shard_single:.0f} ops/s); with "
        f"{SHARD_FLOOR_CORES} usable core(s) the PR 5 tentpole requires "
        f">= {SHARD_FLOOR_MIN}x (2x on the 4-core CI runners)"
    )
    assert autopipe_speedup >= 2.0, (
        f"autopipe at {OPENLOOP_ISSUERS} open-loop issuers (full-GDPR "
        f"YCSB-{WORKLOAD}) is only {autopipe_speedup:.2f}x the unbatched "
        f"per-call front end ({autopipe_fast:.0f} vs {autopipe_percall:.0f} "
        "ops/s); the PR 8 tentpole requires implicit coalescing to buy "
        ">= 2x without the call sites opting in"
    )
    assert tcp_ratio >= 0.5, (
        f"tcp-transport 4-shard minikv at 8 threads (full-GDPR features) "
        f"sustains only {tcp_ratio:.2f}x the pipe transport "
        f"({tcp_sock:.0f} vs {tcp_pipe:.0f} ops/s); the PR 7 tentpole "
        "bounds the socket router tax at 0.5x pipe throughput"
    )
    assert sql_tcp_ratio >= 0.5, (
        f"tcp-transport 4-shard minisql at 8 threads (full-GDPR features) "
        f"sustains only {sql_tcp_ratio:.2f}x the pipe transport "
        f"({sql_tcp_sock:.0f} vs {sql_tcp_pipe:.0f} ops/s); the PR 7 "
        "tentpole bounds the socket router tax at 0.5x pipe throughput"
    )


def test_sharded_aof_replay_identity(tmp_path):
    """Per-shard AOFs must replay independently into the same union keyspace."""
    from repro.minikv import ShardedMiniKV

    config = MiniKVConfig(
        shards=4, aof_path=str(tmp_path / "sharded.aof"),
        fsync="always", aof_batch_size=32,
    )
    with ShardedMiniKV(config) as kv:
        pipe = kv.pipeline()
        for i in range(400):
            pipe.set(f"k{i}", b"v%d" % i)
        pipe.delete("k0", "k1", "k2")
        pipe.execute()
        kv.hmset("h", {"a": b"1"})
        expected = {
            key: kv.hgetall(key) if key == "h" else kv.get(key)
            for key in kv.keys()
        }
    with ShardedMiniKV(config) as replayed:
        rebuilt = {
            key: replayed.hgetall(key) if key == "h" else replayed.get(key)
            for key in replayed.keys()
        }
    assert rebuilt == expected
    assert len(rebuilt) == 398


def test_sharded_wal_replay_identity(tmp_path):
    """Per-shard WALs must replay independently into the same union store."""
    from repro.minisql import MiniSQLConfig, ShardedDatabase
    from repro.minisql.expr import Cmp
    from repro.minisql.schema import Column
    from repro.minisql.types import TEXT

    config = MiniSQLConfig(
        shards=4, wal_path=str(tmp_path / "sharded_wal.bin"),
        fsync="always", wal_batch_size=32,
    )
    columns = [Column("key", TEXT, nullable=False), Column("val", TEXT)]
    with ShardedDatabase(config) as db:
        db.create_table("t", columns, primary_key="key")
        pipe = db.pipeline()
        for i in range(400):
            pipe.insert("t", {"key": f"k{i}", "val": f"v{i}"})
        pipe.execute()
        db.delete("t", Cmp("key", "=", "k0"))
        db.update("t", {"val": "patched"}, Cmp("key", "=", "k1"))
        expected = sorted(
            (row["key"], row["val"]) for row in db.select("t")
        )
    with ShardedDatabase(config) as replayed:
        rebuilt = sorted(
            (row["key"], row["val"]) for row in replayed.select("t")
        )
    assert rebuilt == expected
    assert len(rebuilt) == 399


def test_group_commit_aof_replay_identity(tmp_path):
    """AOF written under group commit must replay to an identical keyspace."""
    path = str(tmp_path / "grouped.aof")
    with MiniKV(MiniKVConfig(aof_path=path, fsync="always", aof_batch_size=64)) as kv:
        pipe = kv.pipeline()
        for i in range(500):
            pipe.set(f"k{i}", b"v%d" % i)
            if i % 3 == 0:
                pipe.expire(f"k{i}", 3600.0)
        pipe.execute()
        kv.hmset("h", {"a": b"1", "b": b"2"})
        kv.sadd("s", b"x", b"y")
        kv.delete("k0", "k1")
        expected = {
            key: kv.hgetall(key) if key == "h"
            else (kv.smembers(key) if key == "s" else kv.get(key))
            for key in kv.keys()
        }
    with MiniKV(MiniKVConfig(aof_path=path, fsync="always")) as replayed:
        rebuilt = {
            key: replayed.hgetall(key) if key == "h"
            else (replayed.smembers(key) if key == "s" else replayed.get(key))
            for key in replayed.keys()
        }
    assert rebuilt == expected
    assert len(rebuilt) == 500  # 502 written, 2 deleted
