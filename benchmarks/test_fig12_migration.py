"""Extension figure — online resharding movement: hash ring vs modulo.

PR 7's consistent-hash ring exists so a sharded deployment can grow
online without reshuffling the world.  This harness regenerates fig12m:
load a live sharded minikv, call ``add_shard()`` for real (streaming
slot migration, per-slot cutover), and compare the keys the ring
actually moved against the remap count modulo placement would have paid
on the same key set.  The shape check asserts the tentpole's floor —
modulo remaps at least 2x the keys the ring moves for N -> N+1 — plus
zero data loss across the cutover.
"""

from conftest import report, run_once

from repro.experiments import migration


def test_fig12_migration_movement(benchmark):
    result = run_once(
        benchmark, migration.run, record_count=4000, shards=3,
    )
    report(result)
    by_strategy = {row["strategy"]: row for row in result.rows}
    ring = by_strategy["hash-ring (measured)"]
    modulo = by_strategy["modulo (computed)"]
    # the tentpole floor, restated on the raw rows: ring movement is
    # deterministic (fixed keys, fixed vnodes), so no noise escalation
    assert modulo["keys_moved"] >= 2 * ring["keys_moved"]
    assert ring["shards_after"] == 4
