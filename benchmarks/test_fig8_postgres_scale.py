"""Figure 8 — effect of scale on PostgreSQL (with metadata indices).

Paper: (a) YCSB-C completion flat as the DB grows; (b) GDPR customer
completion worsens only moderately thanks to metadata indices — in sharp
contrast to Redis' linear growth (Figure 7b).
"""

from conftest import report, run_once

from repro.experiments import scale


def test_fig8_postgres_scale_sweep(benchmark):
    result = run_once(
        benchmark, scale.run_fig8,
        ycsb_scales=(1000, 4000, 16000),
        gdpr_scales=(500, 1000, 2000, 4000),
        ycsb_operations=1000, gdpr_operations=100, threads=4,
    )
    report(result)


def test_fig8_vs_fig7_contrast(benchmark):
    """The paper's key cross-figure claim: indexed PostgreSQL scales far
    better than Redis on the same customer workload."""

    def both_growths():
        redis = [
            scale.gdpr_customer_completion("redis", n, 60, 2, 23)
            for n in (500, 2000)
        ]
        pg = [
            scale.gdpr_customer_completion("postgres", n, 60, 2, 23)
            for n in (500, 2000)
        ]
        return redis[1] / redis[0], pg[1] / pg[0]

    redis_growth, pg_growth = benchmark.pedantic(both_growths, rounds=1, iterations=1)
    assert redis_growth > pg_growth


def test_fig8_thread_scaling_rw_vs_global_lock(benchmark):
    """Extension (PR 2 tentpole): the same thread sweep as Figure 7's for
    Redis, on minisql — the seed's global statement lock cannot use added
    benchmark threads, while per-table reader-writer locking plus
    transaction-batched pipelining lifts the read-heavy stream."""
    result = run_once(benchmark, scale.sql_thread_scaling)
    report(result)
    by_series = {}
    for row in result.rows:
        by_series.setdefault(row["series"], {})[row["threads"]] = row["ops_s"]
    assert by_series["rw+batched"][8] > by_series["global-lock"][8]
