"""Table 3 — storage space overhead (metadata explosion).

Paper: 10 MB of personal data becomes 35 MB of database (3.5x) on both
engines; creating secondary indices for every metadata field raises the
factor to 5.95x.
"""

from conftest import report, run_once

from repro.experiments import table3


def test_table3_space_factors(benchmark):
    result = run_once(benchmark, table3.run, records=2000)
    report(result)
    by_config = {row["config"]: row for row in result.rows}
    base = by_config["postgres"]["space_factor"]
    indexed = by_config["postgres-metadata-index"]["space_factor"]
    # Paper band: base 3.5x, indexed 5.95x (ratio 1.7). Accept 1.3-2.5.
    assert 3.0 < base < 6.0
    assert 1.3 < indexed / base < 2.5
