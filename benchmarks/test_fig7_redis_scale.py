"""Figure 7 — effect of scale on Redis.

Paper: (a) YCSB-C completion is flat from 10K to 10M records; (b) GDPR
customer-workload completion grows linearly from 100K to 500K records.

Extension: a thread-count sweep comparing the paper's single-event-loop
execution model against the lock-striped + pipelined minikv hot path.
"""

from conftest import report, run_once

from repro.experiments import scale


def test_fig7_redis_scale_sweep(benchmark):
    result = run_once(
        benchmark, scale.run_fig7,
        ycsb_scales=(1000, 4000, 16000),
        gdpr_scales=(500, 1000, 2000, 4000),
        ycsb_operations=1000, gdpr_operations=100, threads=4,
    )
    report(result)
    gdpr = [row["completion_s"] for row in result.rows if row["series"] == "gdpr-customer"]
    # Linear-ish growth: each doubling of the DB grows completion >= 1.3x.
    for smaller, larger in zip(gdpr, gdpr[1:]):
        assert larger > smaller * 1.3


def test_fig7a_ycsb_point(benchmark):
    seconds = benchmark.pedantic(
        scale.ycsb_c_completion, args=("redis", 2000, 500, 4, 17),
        rounds=1, iterations=1,
    )
    assert seconds > 0


def test_fig7b_gdpr_point(benchmark):
    seconds = benchmark.pedantic(
        scale.gdpr_customer_completion, args=("redis", 1000, 50, 4, 17),
        rounds=1, iterations=1,
    )
    assert seconds > 0


def test_fig7_thread_scaling_striped_vs_single_lock(benchmark):
    result = run_once(benchmark, scale.redis_thread_scaling)
    report(result)
    by_series = {}
    for row in result.rows:
        by_series.setdefault(row["series"], {})[row["threads"]] = row["ops_s"]
    # The striped + pipelined engine must clearly beat the single event
    # loop once the bench drives it with the paper's thread counts.
    assert by_series["striped+pipelined"][8] > by_series["single-lock"][8]
