"""Extension figure — readers vs TTL purge: rw locking vs MVCC snapshots.

The paper's central finding is that GDPR compliance work (metadata purges,
timely deletion) contends with the OLTP stream and collapses throughput.
PR 3's MVCC mode removes the collision: snapshot reads take no locks, so
the purge and the read fleet only share CPU, never a lock queue.
"""

from conftest import report, run_once

from repro.experiments import scale


def test_fig9_readers_vs_purge(benchmark):
    result = run_once(
        benchmark, scale.sql_readers_vs_purge,
        record_count=1000, operations=1500, threads=8,
    )
    report(result)
    by_series = {row["series"]: row["ops_s"] for row in result.rows}
    assert by_series["mvcc+purge"] >= 2.0 * by_series["table-rw+purge"]
