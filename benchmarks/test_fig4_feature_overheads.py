"""Figure 4 — overhead of GDPR security features on YCSB workloads.

Paper: Redis loses ~10% to encryption, ~20% to TTL, ~70% to logging, ~80%
combined (5x); PostgreSQL loses 10-20% to encryption/TTL, 30-40% to
logging, and halves when combined (~2x).  Logging dominates on both.
"""

from conftest import report, run_once

from repro.experiments import fig4


def test_fig4a_redis_feature_overheads(benchmark):
    result = run_once(
        benchmark, fig4.run,
        engine="redis", records=2000, operations=2000, threads=1,
    )
    report(result)


def test_fig4b_postgres_feature_overheads(benchmark):
    result = run_once(
        benchmark, fig4.run,
        engine="postgres", records=2000, operations=2000, threads=1,
    )
    report(result)
