"""Extension figure — SQL shard scaling: in-process vs sharded minisql.

The SQL twin of the fig10s harness: every minisql configuration —
MVCC included — executes all engine bytecode on one GIL, so the fig8t
thread-scaling curves flatten at one core.  PR 5's sharded deployment
hash-partitions each table's rows by primary key across worker
processes; this harness regenerates the fig11q sweep (in-process vs 2
vs 4 shard workers) under the full-GDPR feature set, where index
maintenance, audit logging with response payloads, and cipher work make
every statement engine-dominated — the work sharding spreads across
cores.

The shape checks are CPU-tiered inside the experiment (the full 2x floor
needs 4+ usable cores; a single-core host can only bound the shard
router's IPC tax), so this harness stays green on any runner while the
dedicated throughput-regression floor enforces the 2x on CI hardware.
"""

from conftest import report, run_once

from repro.experiments import scale


def test_fig11_sql_shard_scaling(benchmark):
    result = run_once(
        benchmark, scale.sql_shard_scaling,
        record_count=500, operations=1000, threads=8,
    )
    if not result.shape_ok:
        # Same discipline as the asserted throughput floors: scheduling
        # jitter on busy single-core runners can sink one sample, so a
        # miss re-measures once before declaring a real failure.
        result = scale.sql_shard_scaling(
            record_count=500, operations=1000, threads=8,
        )
    report(result)
    assert all(row["correctness_pct"] == 100.0 for row in result.rows)
    by_series = {row["shards"]: row["ops_s"] for row in result.rows}
    assert set(by_series) == {1, 2, 4}
