"""The docs checker passes on the repo's own docs, and catches drift."""

import os
import subprocess
import sys

import pytest

TOOLS = os.path.join(os.path.dirname(__file__), "..", "..", "tools")
sys.path.insert(0, os.path.abspath(TOOLS))

import check_docs  # noqa: E402


def test_repo_docs_are_consistent():
    """Links resolve and every documented knob exists in code."""
    assert check_docs.main() == 0


def test_cli_exit_status():
    script = os.path.join(TOOLS, "check_docs.py")
    proc = subprocess.run([sys.executable, script], capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr


def test_broken_link_detected(tmp_path):
    text = "see [here](does-not-exist.md) and [ok](https://example.com)"
    path = tmp_path / "doc.md"
    path.write_text(text)
    problems = check_docs.check_links(str(path), text)
    assert len(problems) == 1 and "does-not-exist.md" in problems[0]


def test_anchor_and_external_links_skipped(tmp_path):
    text = "[a](#section) [b](mailto:x@y.z) [c](http://x)"
    problems = check_docs.check_links(str(tmp_path / "doc.md"), text)
    assert problems == []


@pytest.mark.parametrize("mention,broken", [
    ("`MiniSQLConfig.locking`", False),
    ("`MiniSQLConfig.wal_batch_size`", False),
    ("`MiniKVConfig.stripes`", False),
    ("`MiniKVConfig.shards`", False),
    ("`MiniKVConfig.aof_batch_size`", False),
    ("`MiniSQLConfig.no_such_knob`", True),
    ("`MiniKVConfig.vanished`", True),
])
def test_knob_mentions_checked(mention, broken):
    fields = check_docs._config_fields()
    problems = check_docs.check_knobs("doc.md", mention, fields)
    assert bool(problems) == broken


def test_knob_coverage_flags_undocumented_field():
    """A config field no doc mentions is reported (new knobs can't ship silent)."""
    fields = {"MiniKVConfig": {"stripes", "shards"}, "MiniSQLConfig": {"locking"}}
    texts = {
        "a.md": "tune `MiniKVConfig.stripes` for stripe counts",
        "b.md": "and `MiniSQLConfig.locking` for the lock mode",
    }
    problems = check_docs.check_knob_coverage(texts, fields)
    assert len(problems) == 1 and "MiniKVConfig.shards" in problems[0]


def test_knob_coverage_spans_the_doc_set():
    """Coverage counts mentions across all docs, not per file."""
    fields = {"MiniKVConfig": {"stripes"}, "MiniSQLConfig": set()}
    texts = {"a.md": "nothing here", "b.md": "`MiniKVConfig.stripes`"}
    assert check_docs.check_knob_coverage(texts, fields) == []


def test_repo_knob_tables_cover_every_config_field():
    """Every real MiniKVConfig/MiniSQLConfig field appears in the docs."""
    fields = check_docs._config_fields()
    texts = {}
    for path in check_docs._doc_paths():
        with open(path, encoding="utf-8") as handle:
            texts[path] = handle.read()
    assert check_docs.check_knob_coverage(texts, fields) == []
