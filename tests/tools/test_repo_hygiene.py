"""Repo hygiene: tracked-file rules the CI guard also enforces.

PR 4 accidentally committed 61 ``__pycache__/*.pyc`` files; PR 5 removed
them, added the root ``.gitignore``, and wired a CI guard into the docs
job.  This tier-1 twin keeps the rule enforced for anyone running the
suite locally without the workflow.
"""

import os
import subprocess

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _tracked_files() -> list[str]:
    try:
        out = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if out.returncode != 0:
        pytest.skip("not a git checkout")
    return out.stdout.splitlines()


def test_no_tracked_bytecode():
    offenders = [
        path for path in _tracked_files()
        if path.endswith(".pyc") or "__pycache__" in path.split("/")
    ]
    assert offenders == [], (
        "Python bytecode is tracked; git rm -r --cached these and rely on "
        f".gitignore: {offenders[:10]}"
    )


def test_gitignore_covers_bytecode():
    with open(os.path.join(REPO_ROOT, ".gitignore"), encoding="utf-8") as handle:
        lines = {line.strip() for line in handle}
    for pattern in ("__pycache__/", "*.pyc", ".pytest_cache/"):
        assert pattern in lines, f".gitignore lost the {pattern} rule"
