"""The standalone shard server CLI and the addressed-TCP deployment mode.

``tools/shard_server.py`` runs one shard worker as an external process:
a front configured with ``transport="tcp"`` and ``shard_addresses``
connects instead of spawning.  The CLI prints ``listening on
<host>:<port>`` once bound (how a supervisor learns a ``--port 0``
binding), builds a fresh engine per accepted connection (replaying the
shard's persistence file — the respawn-replay recovery contract), and
refuses configs with ``shards != 1``.
"""

import os
import re
import subprocess
import sys

import json

import pytest

from repro.minikv import MiniKVConfig, ShardedMiniKV, shard_aof_path

REPO = os.path.join(os.path.dirname(__file__), "..", "..")
SCRIPT = os.path.abspath(os.path.join(REPO, "tools", "shard_server.py"))


def start_server(*args):
    proc = subprocess.Popen(
        [sys.executable, SCRIPT, *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline().strip()
    match = re.fullmatch(r"listening on (\S+):(\d+)", line)
    assert match, f"unexpected banner: {line!r} (stderr: {proc.stderr.read()})"
    return proc, match.group(1), int(match.group(2))


@pytest.fixture
def servers(tmp_path):
    """Two external minikv shard servers plus their front's config."""
    base = str(tmp_path / "kv.aof")
    procs, addresses = [], []
    for i in range(2):
        config = {"aof_path": shard_aof_path(base, i), "fsync": "always"}
        proc, host, port = start_server(
            "--engine", "minikv", "--config-json", json.dumps(config),
        )
        procs.append(proc)
        addresses.append(f"{host}:{port}")
    yield base, tuple(addresses), procs
    for proc in procs:
        proc.terminate()
        proc.wait(timeout=10)


def make_front(base, addresses):
    return ShardedMiniKV(MiniKVConfig(
        shards=len(addresses), transport="tcp", shard_addresses=addresses,
        aof_path=base, fsync="always",
    ))


class TestCLI:
    def test_rejects_multi_shard_config(self):
        proc = subprocess.run(
            [sys.executable, SCRIPT, "--engine", "minikv",
             "--config-json", '{"shards": 2}'],
            capture_output=True, text=True,
        )
        assert proc.returncode != 0
        assert "shards must be 1" in proc.stderr

    def test_once_serves_one_connection_then_exits(self, tmp_path):
        proc, host, port = start_server("--engine", "minikv", "--once")
        from repro.common.netshard import connect_shard

        conn = connect_shard(host, port)
        conn.send(("call", "set", ("k", b"v"), {}))
        assert conn.recv() == ("ok", None)
        conn.send(("call", "get", ("k",), {}))
        assert conn.recv() == ("ok", b"v")
        conn.send(("stop",))
        assert conn.recv() == ("ok", None)
        conn.close()
        assert proc.wait(timeout=10) == 0

    def test_minisql_engine_serves(self, tmp_path):
        proc, host, port = start_server(
            "--engine", "minisql", "--once",
            "--config-json", json.dumps(
                {"wal_path": str(tmp_path / "db.wal.shard0")}),
        )
        from repro.common.netshard import connect_shard

        conn = connect_shard(host, port)
        conn.send(("call", "dump_catalog", (), {}))
        status, catalog = conn.recv()
        assert status == "ok"
        assert catalog["tables"] == []
        conn.send(("stop",))
        conn.recv()
        conn.close()
        proc.wait(timeout=10)


class TestAsyncioLoop:
    """``--loop asyncio``: one shared engine, concurrent fronts."""

    def test_once_serves_one_connection_then_exits(self):
        proc, host, port = start_server(
            "--engine", "minikv", "--loop", "asyncio", "--once"
        )
        from repro.common.netshard import connect_shard

        conn = connect_shard(host, port)
        conn.send(("call", "set", ("k", b"v"), {}))
        assert conn.recv() == ("ok", None)
        conn.send(("stop",))
        assert conn.recv() == ("ok", None)
        conn.close()
        assert proc.wait(timeout=10) == 0

    def test_front_serves_through_asyncio_shards(self, tmp_path):
        base = str(tmp_path / "kv.aof")
        procs, addresses = [], []
        try:
            for i in range(2):
                config = {"aof_path": shard_aof_path(base, i),
                          "fsync": "always"}
                proc, host, port = start_server(
                    "--engine", "minikv", "--loop", "asyncio",
                    "--config-json", json.dumps(config),
                )
                procs.append(proc)
                addresses.append(f"{host}:{port}")
            with make_front(base, tuple(addresses)) as kv:
                for i in range(30):
                    kv.set(f"k{i}", b"v%d" % i)
                assert kv.dbsize() == 30
                assert kv.get("k11") == b"v11"
        finally:
            for proc in procs:
                proc.terminate()
                proc.wait(timeout=10)

    def test_concurrent_fronts_share_one_engine(self, tmp_path):
        base = str(tmp_path / "kv.aof")
        config = {"aof_path": shard_aof_path(base, 0), "fsync": "always"}
        proc, host, port = start_server(
            "--engine", "minikv", "--loop", "asyncio",
            "--config-json", json.dumps(config),
        )
        addresses = (f"{host}:{port}",)
        first = make_front(base, addresses)
        second = make_front(base, addresses)
        try:
            # both fronts hold connections at once — the threaded loop
            # serves one connection at a time, the asyncio loop any
            # number — and they see one engine, not per-accept replays
            first.set("ka", b"va")
            second.set("kb", b"vb")
            assert first.get("kb") == b"vb"
            assert second.get("ka") == b"va"
        finally:
            first.close()
            second.close()
            proc.terminate()
            proc.wait(timeout=10)


class TestGracefulShutdown:
    """SIGTERM: both loops exit 0 with acknowledged writes on disk."""

    @pytest.mark.parametrize("loop", ["threads", "asyncio"])
    def test_sigterm_exits_zero_and_preserves_writes(self, tmp_path, loop):
        import signal

        base = str(tmp_path / "kv.aof")
        config = {"aof_path": shard_aof_path(base, 0), "fsync": "always"}
        argv = ("--engine", "minikv", "--loop", loop,
                "--config-json", json.dumps(config))
        proc, host, port = start_server(*argv)
        with make_front(base, (f"{host}:{port}",)) as kv:
            kv.set("k", b"durable")
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=10) == 0
        # a replacement server replays the same AOF: the write survived
        proc, host, port = start_server(*argv)
        try:
            with make_front(base, (f"{host}:{port}",)) as kv:
                assert kv.get("k") == b"durable"
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestAddressedFront:
    def test_front_serves_through_external_shards(self, servers):
        base, addresses, _procs = servers
        with make_front(base, addresses) as kv:
            for i in range(30):
                kv.set(f"k{i}", b"v%d" % i)
            assert kv.dbsize() == 30
            assert kv.get("k11") == b"v11"
            info = kv.info()
            assert info["shards"] == 2
            assert sum(info["keys_per_shard"]) == 30

    def test_reconnect_replays_persistence(self, servers):
        base, addresses, _procs = servers
        with make_front(base, addresses) as kv:
            for i in range(20):
                kv.set(f"k{i}", b"v%d" % i)
        # a brand-new front connects to the same servers: each accepted
        # connection gets a fresh engine replayed from this shard's AOF
        with make_front(base, addresses) as kv:
            assert kv.dbsize() == 20
            assert kv.get("k3") == b"v3"

    def test_servers_outlive_the_front(self, servers):
        base, addresses, procs = servers
        with make_front(base, addresses) as kv:
            kv.set("k", b"v")
        assert all(proc.poll() is None for proc in procs)
