"""Tests for audit-trail parsing and breach reporting."""

import pytest

from repro.common.clock import VirtualClock
from repro.crypto.luks import FileCipher
from repro.gdpr.audit import (
    AuditEvent,
    breach_report,
    events_from_aof,
    events_from_csvlog,
    split_csv_line,
)
from repro.minikv.aof import AOFWriter
from repro.minisql.csvlog import CSVLogger


class TestSplitCsvLine:
    def test_plain(self):
        assert split_csv_line("a,b,c") == ["a", "b", "c"]

    def test_quoted_commas(self):
        assert split_csv_line('a,"b,c",d') == ["a", "b,c", "d"]

    def test_escaped_quotes(self):
        assert split_csv_line('a,"say ""hi""",c') == ["a", 'say "hi"', "c"]


class TestEventsFromAOF:
    def test_missing_file(self, tmp_path):
        assert events_from_aof(str(tmp_path / "none.aof")) == []

    def test_parses_operations(self, tmp_path):
        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="always", log_reads=True)
        writer.append([b"SET", b"k1", b"v"])
        writer.append([b"GET", b"k1"])
        writer.append([b"DEL", b"k1"])
        writer.close()
        events = events_from_aof(path)
        assert [e.operation for e in events] == ["SET", "GET", "DEL"]
        assert events[0].target == "k1"
        assert events[0].timestamp is None

    def test_limit_returns_most_recent(self, tmp_path):
        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="always")
        for i in range(10):
            writer.append([b"SET", f"k{i}".encode(), b"v"])
        writer.close()
        events = events_from_aof(path, limit=3)
        assert [e.target for e in events] == ["k7", "k8", "k9"]

    def test_tail_window_on_large_file(self, tmp_path):
        path = str(tmp_path / "big.aof")
        writer = AOFWriter(path, fsync="always")
        for i in range(5000):
            writer.append([b"SET", f"key-{i:08d}".encode(), b"x" * 40])
        writer.close()
        events = events_from_aof(path, limit=5)
        # only the tail is parsed, and the newest entries are present
        assert events[-1].target == "key-00004999"
        assert len(events) == 5

    def test_encrypted_tail(self, tmp_path):
        path = str(tmp_path / "enc.aof")
        cipher = FileCipher()
        writer = AOFWriter(path, fsync="always", cipher=cipher)
        for i in range(2000):
            writer.append([b"SET", f"key-{i:06d}".encode(), b"y" * 50])
        writer.close()
        events = events_from_aof(path, limit=2, cipher=cipher)
        assert events[-1].target == "key-001999"


class TestEventsFromCsvlog:
    def test_time_bounded(self, tmp_path):
        clock = VirtualClock()
        logger = CSVLogger(str(tmp_path / "l.csv"), clock=clock)
        logger.log("INSERT", "t", "early", 1)
        clock.advance(100)
        logger.log("SELECT", "t", "late", 2)
        events = events_from_csvlog(logger, start=50.0, end=150.0)
        assert len(events) == 1
        assert events[0].operation == "SELECT"
        assert events[0].rows == 2
        logger.close()

    def test_unbounded_returns_all(self, tmp_path):
        logger = CSVLogger(str(tmp_path / "l.csv"))
        for i in range(4):
            logger.log("INSERT", "t", f"d{i}", 1)
        assert len(events_from_csvlog(logger)) == 4
        logger.close()


class TestBreachReport:
    def test_counts(self):
        events = [
            AuditEvent(1.0, "SELECT", "t", rows=3),
            AuditEvent(2.0, "INSERT", "t", rows=1),
            AuditEvent(3.0, "HGETALL", "rec:k1"),
            AuditEvent(4.0, "GET", "k2"),
        ]
        report = breach_report(events, affected_users={"u1", "u2"})
        assert report["events_in_window"] == 4
        assert report["read_events_in_window"] == 3
        assert report["approximate_affected_users"] == 2
