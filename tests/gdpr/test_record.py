"""Tests for the personal-data record model and its wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import RecordFormatError
from repro.gdpr.record import (
    ATTRIBUTE_ARTICLES,
    ATTRIBUTE_NAMES,
    PersonalRecord,
    format_ttl,
    parse_ttl,
)


def make(**overrides):
    base = dict(
        key="ph-1x4b",
        data="123-456-7890",
        purposes=("ads", "2fa"),
        ttl_seconds=365 * 86400.0,
        user="neo",
        objections=(),
        decisions=(),
        shared_with=(),
        source="first-party",
    )
    base.update(overrides)
    return PersonalRecord(**base)


class TestTTLFormat:
    @pytest.mark.parametrize("seconds,text", [
        (365 * 86400.0, "365days"),
        (2 * 3600.0, "2hours"),
        (5 * 60.0, "5min"),
        (42.0, "42s"),
    ])
    def test_format(self, seconds, text):
        assert format_ttl(seconds) == text

    @pytest.mark.parametrize("text,seconds", [
        ("365days", 365 * 86400.0),
        ("1day", 86400.0),
        ("2hours", 7200.0),
        ("5min", 300.0),
        ("300s", 300.0),
        ("300", 300.0),
        ("1.5min", 90.0),
    ])
    def test_parse(self, text, seconds):
        assert parse_ttl(text) == seconds

    @pytest.mark.parametrize("bad", ["", "days", "5lightyears", "  "])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(RecordFormatError):
            parse_ttl(bad)

    def test_negative_ttl_rejected(self):
        with pytest.raises(RecordFormatError):
            format_ttl(-1)

    @given(st.integers(0, 10**7))
    @settings(max_examples=100)
    def test_roundtrip_property(self, seconds):
        assert parse_ttl(format_ttl(float(seconds))) == float(seconds)


class TestValidation:
    def test_empty_key_rejected(self):
        with pytest.raises(RecordFormatError):
            make(key="")

    def test_non_ascii_rejected(self):
        with pytest.raises(RecordFormatError):
            make(data="données")

    def test_separator_in_field_rejected(self):
        with pytest.raises(RecordFormatError):
            make(data="has;semicolon")
        with pytest.raises(RecordFormatError):
            make(user="has,comma")
        with pytest.raises(RecordFormatError):
            make(purposes=("ok", "bad,token"))

    def test_list_attrs_must_be_tuples(self):
        with pytest.raises(RecordFormatError):
            make(purposes=["ads"])

    def test_negative_ttl_rejected(self):
        with pytest.raises(RecordFormatError):
            make(ttl_seconds=-5)


class TestSemantics:
    def test_metadata_has_all_seven_attributes(self):
        assert set(make().metadata()) == set(ATTRIBUTE_NAMES)

    def test_attribute_articles_registry_covers_all(self):
        assert set(ATTRIBUTE_ARTICLES) == set(ATTRIBUTE_NAMES)

    def test_objections_and_purpose_check(self):
        record = make(purposes=("ads",), objections=("analytics",))
        assert record.allows_purpose("ads")
        assert not record.allows_purpose("analytics")   # objected
        assert not record.allows_purpose("billing")     # never declared
        assert record.objects_to("analytics")

    def test_objection_overrides_declared_purpose(self):
        record = make(purposes=("ads",), objections=("ads",))
        assert not record.allows_purpose("ads")

    def test_with_metadata_copies(self):
        record = make()
        changed = record.with_metadata(user="trinity")
        assert changed.user == "trinity"
        assert record.user == "neo"  # frozen original untouched

    def test_size_accounting(self):
        record = make()
        assert record.data_bytes() == len("123-456-7890")
        assert record.metadata_bytes() > 0
        bigger = make(shared_with=("acme", "globex"))
        assert bigger.metadata_bytes() > record.metadata_bytes()


class TestWireFormat:
    def test_paper_example_roundtrip(self):
        record = make()
        wire = record.to_wire()
        assert wire.startswith("ph-1x4b;123-456-7890;PUR=ads,2fa;TTL=365days;USR=neo;")
        assert wire.endswith("SRC=first-party;")
        assert PersonalRecord.from_wire(wire) == record

    def test_empty_attributes_roundtrip(self):
        record = make(purposes=(), objections=(), decisions=(), shared_with=(), user="")
        assert PersonalRecord.from_wire(record.to_wire()) == record

    def test_accepts_papers_empty_set_glyph(self):
        wire = ("k;d;PUR=ads;TTL=1days;USR=neo;OBJ=∅;DEC=∅;SHR=∅;SRC=first-party;")
        record = PersonalRecord.from_wire(wire)
        assert record.objections == ()
        assert record.decisions == ()

    def test_missing_trailing_semicolon_rejected(self):
        with pytest.raises(RecordFormatError):
            PersonalRecord.from_wire("k;d;PUR=;TTL=1s;USR=;OBJ=;DEC=;SHR=;SRC=x")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(RecordFormatError):
            PersonalRecord.from_wire("k;d;PUR=;TTL=1s;")

    def test_attribute_order_enforced(self):
        wire = "k;d;TTL=1s;PUR=;USR=;OBJ=;DEC=;SHR=;SRC=x;"
        with pytest.raises(RecordFormatError):
            PersonalRecord.from_wire(wire)

    def test_attribute_missing_equals_rejected(self):
        wire = "k;d;PUR;TTL=1s;USR=;OBJ=;DEC=;SHR=;SRC=x;"
        with pytest.raises(RecordFormatError):
            PersonalRecord.from_wire(wire)

    _token = st.text(
        alphabet=st.characters(min_codepoint=48, max_codepoint=122,
                               blacklist_characters=";,=\\"),
        min_size=1, max_size=8,
    ).filter(lambda s: s.isascii() and s not in ("", "∅"))

    @given(
        key=_token,
        data=_token,
        purposes=st.lists(_token, max_size=3),
        user=_token,
        ttl_days=st.integers(1, 3650),
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, key, data, purposes, user, ttl_days):
        record = PersonalRecord(
            key=key, data=data, purposes=tuple(purposes),
            ttl_seconds=ttl_days * 86400.0, user=user,
        )
        assert PersonalRecord.from_wire(record.to_wire()) == record
