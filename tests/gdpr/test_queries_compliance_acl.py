"""Tests for the query taxonomy, Table 1 registry, and access control."""

import pytest

from repro.common.errors import AccessDeniedError, UnknownQueryError
from repro.gdpr.acl import AccessController, Principal
from repro.gdpr.compliance import (
    Action,
    TABLE_1,
    articles_for_attribute,
    evaluate_features,
    requirements_for_action,
)
from repro.gdpr.queries import (
    FAMILIES,
    GDPRQuery,
    QUERY_SPECS,
    Role,
    queries_for_role,
    query_spec,
    role_may_issue,
)
from repro.gdpr.record import PersonalRecord


class TestQueryTaxonomy:
    def test_all_section_33_families_present(self):
        assert set(FAMILIES) == {
            "CREATE-RECORD", "DELETE-RECORD", "READ-DATA",
            "READ-METADATA", "UPDATE-DATA", "UPDATE-METADATA", "GET-SYSTEM",
        }

    def test_taxonomy_size(self):
        # 1 create + 4 delete + 5 read-data + 3 read-metadata + 1 update-data
        # + 4 update-metadata + 3 get-system = 21 operations
        assert len(QUERY_SPECS) == 21

    def test_unknown_query_rejected(self):
        with pytest.raises(UnknownQueryError):
            query_spec("drop-all-tables")
        with pytest.raises(UnknownQueryError):
            GDPRQuery("drop-all-tables")

    def test_gdpr_query_carries_spec(self):
        q = GDPRQuery("read-data-by-key", {"key": "k1"})
        assert q.spec.family == "READ-DATA"
        assert "28" in q.spec.articles

    def test_every_role_has_queries(self):
        for role in Role:
            assert queries_for_role(role), role

    def test_figure1_arrows(self):
        # Controller: create/delete/update, no data reads
        assert role_may_issue(Role.CONTROLLER, "create-record")
        assert role_may_issue(Role.CONTROLLER, "delete-record-by-ttl")
        assert not role_may_issue(Role.CONTROLLER, "read-data-by-key")
        # Customer: their own data, not purpose-wide deletes
        assert role_may_issue(Role.CUSTOMER, "delete-record-by-key")
        assert role_may_issue(Role.CUSTOMER, "read-data-by-usr")
        assert not role_may_issue(Role.CUSTOMER, "delete-record-by-pur")
        # Processor: reads only
        assert role_may_issue(Role.PROCESSOR, "read-data-by-pur")
        assert not role_may_issue(Role.PROCESSOR, "delete-record-by-key")
        # Regulator: metadata and system, never personal data
        assert role_may_issue(Role.REGULATOR, "read-metadata-by-usr")
        assert role_may_issue(Role.REGULATOR, "get-system-logs")
        assert not role_may_issue(Role.REGULATOR, "read-data-by-usr")


class TestTable1:
    def test_thirteen_rows(self):
        assert len(TABLE_1) == 13

    def test_article_17_maps_to_timely_deletion(self):
        row = next(r for r in TABLE_1 if r.article == "17")
        assert Action.TIMELY_DELETION in row.actions
        assert "TTL" in row.attributes

    def test_requirements_for_action(self):
        monitoring = requirements_for_action(Action.MONITOR_AND_LOG)
        assert {r.article for r in monitoring} == {"30", "33"}

    def test_articles_for_attribute(self):
        assert "21" in articles_for_attribute("OBJ")
        assert "5(1b)" in articles_for_attribute("PUR")

    def test_full_feature_set_satisfies_all_articles(self):
        report = evaluate_features({a.value: True for a in Action})
        assert report.score() == 1.0
        assert report.missing == []

    def test_no_features_satisfies_nothing(self):
        report = evaluate_features({})
        assert report.score() == 0.0
        assert set(report.unsatisfied_articles) == {r.article for r in TABLE_1}

    def test_partial_features_partial_score(self):
        report = evaluate_features({"timely_deletion": True})
        assert 0.0 < report.score() < 1.0
        assert "17" in report.satisfied_articles
        assert "30" in report.unsatisfied_articles


def _record(user="neo", purposes=("ads",), objections=()):
    return PersonalRecord(key="k", data="d", purposes=purposes,
                          ttl_seconds=60.0, user=user, objections=objections)


class TestAccessController:
    def test_disabled_controller_allows_everything(self):
        acl = AccessController(enabled=False)
        acl.check_operation(Principal.regulator(), "read-data-by-key")
        acl.check_record_access(Principal.regulator(), _record())
        assert acl.denials == 0

    def test_role_gate(self):
        acl = AccessController()
        acl.check_operation(Principal.controller(), "create-record")
        with pytest.raises(AccessDeniedError):
            acl.check_operation(Principal.processor(), "create-record")
        assert acl.denials == 1

    def test_customer_record_gate(self):
        acl = AccessController()
        acl.check_record_access(Principal.customer("neo"), _record(user="neo"))
        with pytest.raises(AccessDeniedError):
            acl.check_record_access(Principal.customer("smith"), _record(user="neo"))

    def test_processor_read_only(self):
        acl = AccessController()
        acl.check_record_access(Principal.processor(), _record())
        with pytest.raises(AccessDeniedError):
            acl.check_record_access(Principal.processor(), _record(), write=True)

    def test_processor_purpose_gate(self):
        acl = AccessController()
        acl.check_record_access(Principal.processor("ads"), _record(purposes=("ads",)))
        with pytest.raises(AccessDeniedError):
            acl.check_record_access(Principal.processor("billing"), _record(purposes=("ads",)))
        # objection to the declared purpose blocks access (G 21)
        with pytest.raises(AccessDeniedError):
            acl.check_record_access(
                Principal.processor("ads"),
                _record(purposes=("ads",), objections=("ads",)),
            )

    def test_regulator_never_reads_data(self):
        acl = AccessController()
        with pytest.raises(AccessDeniedError):
            acl.check_record_access(Principal.regulator(), _record())

    def test_metadata_gate(self):
        acl = AccessController()
        acl.check_metadata_access(Principal.regulator(), _record())
        acl.check_metadata_access(Principal.controller(), _record())
        acl.check_metadata_access(Principal.customer("neo"), _record(user="neo"))
        with pytest.raises(AccessDeniedError):
            acl.check_metadata_access(Principal.customer("smith"), _record(user="neo"))
        with pytest.raises(AccessDeniedError):
            acl.check_metadata_access(Principal.processor(), _record())

    def test_unknown_operation_rejected_before_role_check(self):
        acl = AccessController()
        with pytest.raises(UnknownQueryError):
            acl.check_operation(Principal.controller(), "explode")

    def test_checks_counted(self):
        acl = AccessController()
        acl.check_operation(Principal.controller(), "create-record")
        acl.check_record_access(Principal.controller(), _record())
        assert acl.checks == 2
