"""Unit tests for the consistent-hash ring behind the sharded fronts.

The ring is a pure function of the live shard-id set (no process-local
randomness), so placement must agree across processes, vnode replication
must spread ownership roughly evenly, and a single add/remove must move
only the slots whose owner actually changed (~1/N of the keyspace, far
below modulo's ~(N-1)/N remap).
"""

import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

from repro.common.hashring import (
    DEFAULT_VNODES,
    RING_SIZE,
    HashRing,
    in_slot,
    key_point,
    plan_migration,
)

KEYS = [f"user{i}" for i in range(5000)]


class TestPlacementDeterminism:
    def test_same_ids_same_owners(self):
        a = HashRing([0, 1, 2])
        b = HashRing([0, 1, 2])
        assert [a.owner_of_key(k) for k in KEYS] == [b.owner_of_key(k) for k in KEYS]

    def test_id_order_does_not_matter(self):
        a = HashRing([0, 1, 2])
        b = HashRing([2, 0, 1])
        assert [a.owner_of_key(k) for k in KEYS[:500]] == \
            [b.owner_of_key(k) for k in KEYS[:500]]

    def test_placement_agrees_across_processes(self):
        """No reliance on PYTHONHASHSEED / id() / process-local state."""
        script = (
            "from repro.common.hashring import HashRing\n"
            "ring = HashRing([0, 1, 2], vnodes=64)\n"
            "print(','.join(str(ring.owner_of_key(f'user{i}')) "
            "for i in range(200)))\n"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={**os.environ, "PYTHONPATH": os.path.abspath(SRC),
                     "PYTHONHASHSEED": seed},
            ).stdout.strip()
            for seed in ("0", "12345")
        }
        assert len(outputs) == 1
        here = ",".join(str(HashRing([0, 1, 2], vnodes=64).owner_of_key(f"user{i}"))
                        for i in range(200))
        assert outputs == {here}

    def test_key_point_matches_old_modulo_input(self):
        # the ring hashes the same canonical text the modulo router did,
        # so sharded replay identity survives the routing change
        import zlib
        assert key_point("user42") == zlib.crc32(b"user42")


class TestVnodeSpread:
    def test_spread_is_roughly_even(self):
        ring = HashRing([0, 1, 2, 3], vnodes=DEFAULT_VNODES)
        spread = ring.spread()
        assert set(spread) == {0, 1, 2, 3}
        assert abs(sum(spread.values()) - 1.0) < 1e-9
        # 64 vnodes/shard keeps every share within ~2x of ideal
        for share in spread.values():
            assert 0.25 / 2 <= share <= 0.25 * 2

    def test_more_vnodes_tighten_the_spread(self):
        def imbalance(vnodes):
            spread = HashRing([0, 1, 2, 3], vnodes=vnodes).spread()
            ideal = 1 / 4
            return max(abs(s - ideal) for s in spread.values())

        assert imbalance(256) < imbalance(4)

    def test_slots_tile_the_ring(self):
        ring = HashRing([0, 1, 2], vnodes=8)
        slots = ring.slots()
        covered = sum((hi - lo) % RING_SIZE or RING_SIZE
                      for lo, hi, _ in slots)
        assert covered == RING_SIZE
        for lo, hi, owner in slots:
            probe = (lo + 1) % RING_SIZE
            assert in_slot(probe, lo, hi)
            assert ring.owner(probe) == owner


class TestBoundedMovement:
    def _moved(self, old_ids, new_ids):
        old = HashRing(old_ids)
        new = HashRing(new_ids)
        return sum(
            1 for k in KEYS if old.owner_of_key(k) != new.owner_of_key(k)
        )

    def test_single_add_moves_about_one_nth(self):
        for n in (2, 3, 4, 8):
            moved = self._moved(list(range(n)), list(range(n + 1)))
            ideal = len(KEYS) / (n + 1)
            # well under modulo's ~n/(n+1) remap; <= ~2x the ideal slice
            assert moved <= 2 * ideal, (n, moved, ideal)

    def test_single_remove_moves_only_the_departed_share(self):
        for n in (3, 4, 8):
            ids = list(range(n))
            moved = self._moved(ids, ids[:-1])
            ideal = len(KEYS) / n
            assert moved <= 2 * ideal, (n, moved, ideal)

    def test_surviving_keys_never_move_on_remove(self):
        old = HashRing([0, 1, 2, 3])
        new = HashRing([0, 1, 2])
        for k in KEYS[:1000]:
            if old.owner_of_key(k) != 3:
                assert new.owner_of_key(k) == old.owner_of_key(k)


class TestMigrationPlan:
    def test_plan_covers_exactly_the_moved_keys(self):
        old = HashRing([0, 1, 2])
        new = HashRing([0, 1, 2, 3])
        plan = plan_migration(old, new)
        for k in KEYS:
            point = key_point(k)
            src, dst = old.owner(point), new.owner(point)
            tasks = [t for t in plan if in_slot(point, t[0], t[1])]
            if src == dst:
                assert not tasks, k
            else:
                assert len(tasks) == 1, k
                assert tasks[0][2:] == (src, dst), k

    def test_plan_empty_when_nothing_changes(self):
        ring = HashRing([0, 1, 2])
        assert plan_migration(ring, ring) == []

    def test_plan_tasks_are_nonoverlapping(self):
        plan = plan_migration(HashRing([0, 1, 2, 3]), HashRing([0, 1, 2]))
        assert plan
        points = []
        for lo, hi, src, dst in plan:
            assert src != dst
            points.append(((lo + 1) % RING_SIZE, (lo, hi)))
        for probe, home in points:
            owners = [t for t in plan if in_slot(probe, t[0], t[1])]
            assert [(t[0], t[1]) for t in owners] == [home]
