"""Tests for the YCSB request-distribution generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.distributions import (
    CounterGenerator,
    DiscreteGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    make_key_chooser,
)
from repro.common.errors import ConfigurationError


class TestCounterGenerator:
    def test_sequence(self):
        counter = CounterGenerator(5)
        assert [counter.next_value() for _ in range(3)] == [5, 6, 7]
        assert counter.last_value() == 7

    def test_thread_safety_yields_unique_values(self):
        import threading

        counter = CounterGenerator()
        seen = []

        def pull():
            local = [counter.next_value() for _ in range(500)]
            seen.extend(local)

        threads = [threading.Thread(target=pull) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 2000


class TestUniformGenerator:
    def test_bounds_inclusive(self):
        gen = UniformGenerator(3, 5, rng=random.Random(1))
        values = {gen.next_value() for _ in range(200)}
        assert values == {3, 4, 5}

    def test_last_value_tracks(self):
        gen = UniformGenerator(0, 10, rng=random.Random(2))
        v = gen.next_value()
        assert gen.last_value() == v

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformGenerator(5, 3)

    @given(st.integers(0, 100), st.integers(0, 100), st.integers())
    @settings(max_examples=50)
    def test_always_in_bounds(self, lower, span, seed):
        gen = UniformGenerator(lower, lower + span, rng=random.Random(seed))
        for _ in range(20):
            assert lower <= gen.next_value() <= lower + span


class TestZipfianGenerator:
    def test_item_zero_most_popular(self):
        gen = ZipfianGenerator(0, 999, rng=random.Random(3))
        counts = Counter(gen.next_value() for _ in range(20000))
        assert counts[0] == max(counts.values())

    def test_skew_top_items_dominate(self):
        gen = ZipfianGenerator(0, 9999, rng=random.Random(4))
        counts = Counter(gen.next_value() for _ in range(20000))
        top10 = sum(counts[i] for i in range(10))
        # YCSB's 0.99-theta zipfian puts a large mass on the head.
        assert top10 / 20000 > 0.3

    def test_respects_lower_bound_offset(self):
        gen = ZipfianGenerator(100, 199, rng=random.Random(5))
        for _ in range(500):
            assert 100 <= gen.next_value() <= 199

    def test_invalid_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfianGenerator(0, 10, theta=1.0)
        with pytest.raises(ConfigurationError):
            ZipfianGenerator(0, 10, theta=0.0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfianGenerator(9, 3)

    def test_large_keyspace_setup_is_fast_and_valid(self):
        gen = ZipfianGenerator(0, 10_000_000, rng=random.Random(6))
        for _ in range(100):
            assert 0 <= gen.next_value() <= 10_000_000


class TestScrambledZipfian:
    def test_spreads_hot_items(self):
        gen = ScrambledZipfianGenerator(0, 999, rng=random.Random(7))
        counts = Counter(gen.next_value() for _ in range(20000))
        hottest = counts.most_common(3)
        # Hot items exist but are not clustered at the low end.
        assert any(item > 100 for item, _ in hottest)

    def test_bounds(self):
        gen = ScrambledZipfianGenerator(50, 149, rng=random.Random(8))
        for _ in range(1000):
            assert 50 <= gen.next_value() <= 149

    def test_fnv_is_deterministic(self):
        assert fnv1a_64(12345) == fnv1a_64(12345)
        assert fnv1a_64(1) != fnv1a_64(2)


class TestLatestGenerator:
    def test_prefers_recent_items(self):
        counter = CounterGenerator(1000)
        for _ in range(1000):
            counter.next_value()
        gen = LatestGenerator(counter, rng=random.Random(9))
        counts = Counter(gen.next_value() for _ in range(10000))
        newest = counter.last_value()
        recent_mass = sum(counts[k] for k in range(newest - 50, newest + 1))
        assert recent_mass / 10000 > 0.25

    def test_never_exceeds_newest(self):
        counter = CounterGenerator(10)
        counter.next_value()
        gen = LatestGenerator(counter, rng=random.Random(10))
        for i in range(500):
            value = gen.next_value()
            assert 0 <= value <= counter.last_value()
            if i % 50 == 0:
                counter.next_value()  # keyspace grows while sampling


class TestHotspotGenerator:
    def test_hot_set_receives_hot_fraction(self):
        gen = HotspotGenerator(0, 999, hot_set_fraction=0.1, hot_op_fraction=0.9,
                               rng=random.Random(11))
        hits = sum(1 for _ in range(10000) if gen.next_value() < 100)
        assert hits / 10000 > 0.8

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotGenerator(0, 10, hot_set_fraction=1.5)


class TestDiscreteGenerator:
    def test_weights_respected(self):
        gen = DiscreteGenerator(rng=random.Random(12))
        gen.add_value("a", 80)
        gen.add_value("b", 20)
        counts = Counter(gen.next_value() for _ in range(10000))
        assert 0.75 < counts["a"] / 10000 < 0.85

    def test_zero_weight_never_drawn(self):
        gen = DiscreteGenerator(rng=random.Random(13))
        gen.add_value("a", 1)
        gen.add_value("never", 0)
        assert all(gen.next_value() == "a" for _ in range(100))

    def test_negative_weight_rejected(self):
        gen = DiscreteGenerator()
        with pytest.raises(ConfigurationError):
            gen.add_value("x", -1)

    def test_empty_generator_rejected(self):
        with pytest.raises(ConfigurationError):
            DiscreteGenerator().next_value()

    def test_normalised_weights(self):
        gen = DiscreteGenerator()
        gen.add_value("a", 1)
        gen.add_value("b", 3)
        assert gen.weights == {"a": 0.25, "b": 0.75}


class TestMakeKeyChooser:
    @pytest.mark.parametrize("name", ["uniform", "zipfian", "rawzipfian", "hotspot"])
    def test_known_names(self, name):
        gen = make_key_chooser(name, 0, 99, rng=random.Random(14))
        assert 0 <= gen.next_value() <= 99

    def test_latest_needs_counter(self):
        with pytest.raises(ConfigurationError):
            make_key_chooser("latest", 0, 99)
        gen = make_key_chooser("latest", 0, 99, insert_counter=CounterGenerator(100))
        assert 0 <= gen.next_value() <= 99

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_key_chooser("pareto", 0, 99)
