"""Tests for repro.common.clock."""

import threading

import pytest

from repro.common.clock import SystemClock, VirtualClock


class TestSystemClock:
    def test_starts_near_zero(self):
        clock = SystemClock()
        assert 0 <= clock.now() < 1.0

    def test_monotonically_increases(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_advances_time(self):
        clock = SystemClock()
        before = clock.now()
        clock.sleep(0.01)
        assert clock.now() - before >= 0.01

    def test_sleep_zero_or_negative_is_noop(self):
        clock = SystemClock()
        clock.sleep(0)
        clock.sleep(-1)  # must not raise


class TestVirtualClock:
    def test_starts_at_given_origin(self):
        assert VirtualClock().now() == 0.0
        assert VirtualClock(start=42.5).now() == 42.5

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(10) == 10.0
        assert clock.now() == 10.0

    def test_sleep_is_advance(self):
        clock = VirtualClock()
        clock.sleep(3.5)
        assert clock.now() == 3.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_set_jumps_forward(self):
        clock = VirtualClock()
        clock.set(100.0)
        assert clock.now() == 100.0

    def test_set_rejects_backwards(self):
        clock = VirtualClock(start=50)
        with pytest.raises(ValueError):
            clock.set(49.9)

    def test_thread_safe_advance(self):
        clock = VirtualClock()

        def spin():
            for _ in range(1000):
                clock.advance(0.001)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now() == pytest.approx(4.0, abs=1e-6)
