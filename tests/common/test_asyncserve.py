"""The asyncio shard server: same wire protocol, one loop, many fronts.

:mod:`repro.common.asyncserve` re-serves PR 7's length-prefixed frame
protocol from a single event loop.  The contracts pinned here:

* the coroutine frame ends are byte-compatible with the blocking ones —
  a threaded front talks to an async server unchanged;
* the ``FrameError`` taxonomy survives the port: clean close is
  ``EOFError``, truncation / implausible length / unpicklable payload
  are ``FrameError``, and stream rot drops *that connection*, never the
  server;
* one **shared** engine serves every connection (the threaded server's
  fresh-engine-per-accept story does not apply when connections are
  concurrent), so ``("stop",)`` is connection-scoped;
* strictly one reply per message — engine errors become ``("err", exc)``
  replies and the stream stays in sync; unpicklable replies degrade
  through ``error_factory`` instead of desyncing;
* an idle connection costs nothing: other fronts are served while it
  holds its socket open (the property the threaded one-at-a-time loop
  lacks);
* :func:`async_scatter` launches every exchange before awaiting any
  reply, returns payloads in request order, and raises the first error
  only after every request got its reply;
* :meth:`AsyncShardServer.shutdown` drains handlers and closes the
  engine so persistence hits disk.
"""

import asyncio
import socket
import struct
import threading

import pytest

from repro.common.asyncserve import (
    AsyncShardConnection,
    AsyncShardServer,
    async_recv_frame,
    async_send_frame,
    async_scatter,
)
from repro.common.netshard import (
    MAX_FRAME_BYTES,
    FrameError,
    connect_shard,
    recv_frame,
    send_frame,
)

pytestmark = pytest.mark.deadline(60)


class _Engine:
    """Minimal stateful engine for exercising the async serve loop."""

    instances = 0

    def __init__(self):
        type(self).instances += 1
        self.serial = type(self).instances
        self.closed = False
        self.data = {}

    def ping(self):
        return ("pong", self.serial)

    def set(self, key, value):
        self.data[key] = value

    def get(self, key):
        return self.data.get(key)

    def boom(self):
        raise ValueError("kaboom")

    def gift(self):
        return lambda: None  # unpicklable on purpose

    def close(self):
        self.closed = True


def _run_batch(engine, calls):
    return [getattr(engine, method)(*args, **kwargs)
            for method, args, kwargs in calls]


def _fresh_server() -> AsyncShardServer:
    _Engine.instances = 0
    return AsyncShardServer(_Engine, _run_batch, RuntimeError)


def _run(scenario) -> None:
    """Run an async scenario against a started server, then shut it down."""

    async def main():
        server = _fresh_server()
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.shutdown()

    return asyncio.run(main())


class TestAsyncFrames:
    """The coroutine frame ends and their error taxonomy."""

    def _streams(self):
        """A socketpair: asyncio streams on one end, a raw socket peer."""
        ours, theirs = socket.socketpair()
        return ours, theirs

    def test_async_round_trip(self):
        async def scenario():
            ours, theirs = self._streams()
            reader, writer = await asyncio.open_connection(sock=ours)
            peer_r, peer_w = await asyncio.open_connection(sock=theirs)
            message = ("call", "get", ("user1",), {})
            await async_send_frame(writer, message)
            assert await async_recv_frame(peer_r) == message
            writer.close()
            peer_w.close()

        asyncio.run(scenario())

    def test_byte_compatible_with_blocking_ends(self):
        async def scenario():
            ours, theirs = self._streams()
            reader, writer = await asyncio.open_connection(sock=ours)
            # async sender -> blocking receiver
            await async_send_frame(writer, {"k": b"v"})
            assert recv_frame(theirs) == {"k": b"v"}
            # blocking sender -> async receiver
            send_frame(theirs, ("ok", 7))
            assert await async_recv_frame(reader) == ("ok", 7)
            writer.close()
            theirs.close()

        asyncio.run(scenario())

    def test_clean_close_is_eof(self):
        async def scenario():
            ours, theirs = self._streams()
            reader, writer = await asyncio.open_connection(sock=ours)
            theirs.close()
            with pytest.raises(EOFError):
                await async_recv_frame(reader)
            writer.close()

        asyncio.run(scenario())

    def test_truncated_payload_is_frame_error(self):
        async def scenario():
            ours, theirs = self._streams()
            reader, writer = await asyncio.open_connection(sock=ours)
            theirs.sendall(struct.pack("!I", 1024) + b"part")
            theirs.close()
            with pytest.raises(FrameError, match="truncated"):
                await async_recv_frame(reader)
            writer.close()

        asyncio.run(scenario())

    def test_implausible_length_is_frame_error(self):
        async def scenario():
            ours, theirs = self._streams()
            reader, writer = await asyncio.open_connection(sock=ours)
            theirs.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1) + b"junk")
            with pytest.raises(FrameError, match="implausible"):
                await async_recv_frame(reader)
            writer.close()
            theirs.close()

        asyncio.run(scenario())

    def test_garbage_payload_is_frame_error(self):
        async def scenario():
            ours, theirs = self._streams()
            reader, writer = await asyncio.open_connection(sock=ours)
            junk = b"\x93NOT-A-PICKLE"
            theirs.sendall(struct.pack("!I", len(junk)) + junk)
            with pytest.raises(FrameError, match="garbage"):
                await async_recv_frame(reader)
            writer.close()
            theirs.close()

        asyncio.run(scenario())


class TestAsyncShardServer:
    def test_one_shared_engine_serves_every_connection(self):
        async def scenario(server):
            first = await AsyncShardConnection.connect(server.host, server.port)
            second = await AsyncShardConnection.connect(server.host, server.port)
            await first.call("set", "k", b"v")
            # the second front reads the first front's write: shared state
            assert await second.call("get", "k") == b"v"
            # and both talk to the same engine instance, not replays
            assert await first.call("ping") == ("pong", 1)
            assert await second.call("ping") == ("pong", 1)
            await first.close()
            await second.close()

        _run(scenario)

    def test_engine_error_is_err_reply_stream_stays_in_sync(self):
        async def scenario(server):
            conn = await AsyncShardConnection.connect(server.host, server.port)
            with pytest.raises(ValueError, match="kaboom"):
                await conn.call("boom")
            # strictly one reply per message: the stream survives the err
            assert await conn.call("ping") == ("pong", 1)
            await conn.close()

        _run(scenario)

    def test_unpicklable_reply_degrades_instead_of_desyncing(self):
        async def scenario(server):
            conn = await AsyncShardConnection.connect(server.host, server.port)
            with pytest.raises(RuntimeError, match="unserialisable"):
                await conn.call("gift")
            assert await conn.call("ping") == ("pong", 1)
            await conn.close()

        _run(scenario)

    def test_batch_runs_through_run_batch(self):
        async def scenario(server):
            conn = await AsyncShardConnection.connect(server.host, server.port)
            replies = await conn.batch([
                ("set", ("a", b"1"), {}),
                ("get", ("a",), {}),
                ("ping", (), {}),
            ])
            assert replies == [None, b"1", ("pong", 1)]
            await conn.close()

        _run(scenario)

    def test_stop_is_connection_scoped(self):
        async def scenario(server):
            leaver = await AsyncShardConnection.connect(server.host, server.port)
            stayer = await AsyncShardConnection.connect(server.host, server.port)
            await stayer.call("set", "k", b"v")
            await leaver.stop()
            await server.connection_done.wait()
            # the engine outlived the stop: the other front still works
            assert await stayer.call("get", "k") == b"v"
            assert server.connections_served == 1
            await stayer.close()

        _run(scenario)

    def test_idle_connection_does_not_block_service(self):
        async def scenario(server):
            # an idle front parks its socket without sending anything --
            # on the threaded one-at-a-time loop this would starve the
            # next front; on the async loop it costs nothing
            idle_r, idle_w = await asyncio.open_connection(
                server.host, server.port
            )
            active = await AsyncShardConnection.connect(server.host, server.port)
            assert await active.call("ping") == ("pong", 1)
            await active.close()
            idle_w.close()

        _run(scenario)

    def test_frame_rot_drops_the_connection_not_the_server(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(struct.pack("!I", MAX_FRAME_BYTES + 1) + b"junk")
            await writer.drain()
            # the server drops the rotted stream: our read sees EOF
            assert await reader.read() == b""
            writer.close()
            # ...and keeps serving fresh fronts
            conn = await AsyncShardConnection.connect(server.host, server.port)
            assert await conn.call("ping") == ("pong", 1)
            await conn.close()

        _run(scenario)

    def test_concurrent_fronts_interleave_on_one_loop(self):
        async def scenario(server):
            conns = [
                await AsyncShardConnection.connect(server.host, server.port)
                for _ in range(4)
            ]

            async def chatter(conn, tag):
                for i in range(10):
                    await conn.call("set", f"{tag}:{i}", b"x")
                return await conn.call("get", f"{tag}:9")

            results = await asyncio.gather(
                *(chatter(conn, f"c{i}") for i, conn in enumerate(conns))
            )
            assert results == [b"x"] * 4
            for conn in conns:
                await conn.close()

        _run(scenario)

    def test_graceful_shutdown_drains_and_closes_the_engine(self):
        async def main():
            server = _fresh_server()
            await server.start()
            conn = await AsyncShardConnection.connect(server.host, server.port)
            await conn.call("set", "k", b"v")
            engine = server._engine
            await server.shutdown()
            # the handler drained, the shared engine flushed and closed
            assert engine.closed
            assert server._engine is None
            assert server.connections_served == 1
            with pytest.raises((EOFError, ConnectionError, OSError)):
                await conn.call("ping")
            await conn.close()

        asyncio.run(main())

    def test_connect_retries_then_raises(self):
        async def main():
            # nothing listens here: bind-and-close to claim a dead port
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            probe.close()
            with pytest.raises(ConnectionError, match="unreachable"):
                await AsyncShardConnection.connect(
                    "127.0.0.1", port, retries=2, delay=0.01
                )

        asyncio.run(main())


class TestAsyncScatter:
    def test_replies_in_request_order(self):
        async def scenario(server):
            a = await AsyncShardConnection.connect(server.host, server.port)
            b = await AsyncShardConnection.connect(server.host, server.port)
            payloads = await async_scatter([
                (a, ("call", "set", ("k1", b"v1"), {})),
                (b, ("call", "set", ("k2", b"v2"), {})),
                (a, ("call", "get", ("k2",), {})),
                (b, ("call", "get", ("k1",), {})),
            ])
            assert payloads == [None, None, b"v2", b"v1"]
            await a.close()
            await b.close()

        _run(scenario)

    def test_first_error_raised_after_every_reply(self):
        async def scenario(server):
            a = await AsyncShardConnection.connect(server.host, server.port)
            b = await AsyncShardConnection.connect(server.host, server.port)
            with pytest.raises(ValueError, match="kaboom"):
                await async_scatter([
                    (a, ("call", "boom", (), {})),
                    (b, ("call", "set", ("k", b"v"), {})),
                ])
            # every request got its reply before the raise: both streams
            # are still in sync and the non-error write landed
            assert await a.call("ping") == ("pong", 1)
            assert await b.call("get", "k") == b"v"
            await a.close()
            await b.close()

        _run(scenario)


class _HostedLoop:
    """An AsyncShardServer on a background-thread loop, for sync fronts."""

    def __init__(self):
        self.ready = threading.Event()
        self.server = None
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = _fresh_server()
        await self.server.start()
        self.ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def __enter__(self):
        self._thread.start()
        assert self.ready.wait(timeout=5), "server loop never came up"
        return self.server

    def __exit__(self, *_exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=5)


class TestThreadedFrontCompat:
    def test_blocking_front_talks_to_async_server(self):
        with _HostedLoop() as server:
            conn = connect_shard(server.host, server.port)
            conn.send(("call", "set", ("k", b"v"), {}))
            assert conn.recv() == ("ok", None)
            conn.send(("batch", [("get", ("k",), {}), ("ping", (), {})]))
            assert conn.recv() == ("ok", [b"v", ("pong", 1)])
            conn.send(("stop",))
            assert conn.recv() == ("ok", None)
            conn.close()

    def test_two_blocking_fronts_share_the_engine(self):
        with _HostedLoop() as server:
            first = connect_shard(server.host, server.port)
            second = connect_shard(server.host, server.port)
            first.send(("call", "set", ("k", b"shared"), {}))
            assert first.recv()[0] == "ok"
            second.send(("call", "get", ("k",), {}))
            assert second.recv() == ("ok", b"shared")
            first.close()
            second.close()
