"""Reader-writer lock semantics (the minisql per-table locking primitive)."""

import threading
import time

from repro.common.rwlock import RWLock


class TestSharedSide:
    def test_readers_share_the_lock(self):
        lock = RWLock()
        inside = threading.Barrier(5, timeout=5.0)  # 4 readers + this test
        done = threading.Event()

        def reader():
            with lock.read_locked():
                inside.wait()  # all 4 readers inside simultaneously
                done.wait(timeout=5.0)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        inside.wait()  # would time out if readers serialised
        assert lock.readers == 4
        done.set()
        for t in threads:
            t.join(timeout=5.0)
        assert lock.readers == 0

    def test_reader_blocks_writer(self):
        lock = RWLock()
        lock.acquire_read()
        acquired = threading.Event()

        def writer():
            with lock.write_locked():
                acquired.set()

        t = threading.Thread(target=writer)
        t.start()
        assert not acquired.wait(timeout=0.05)
        lock.release_read()
        assert acquired.wait(timeout=5.0)
        t.join(timeout=5.0)


class TestExclusiveSide:
    def test_writer_excludes_everyone(self):
        lock = RWLock()
        lock.acquire_write()
        progressed = []

        def contender(mode):
            if mode == "r":
                with lock.read_locked():
                    progressed.append(mode)
            else:
                with lock.write_locked():
                    progressed.append(mode)

        threads = [
            threading.Thread(target=contender, args=(m,)) for m in ("r", "w", "r")
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)
        assert progressed == []
        assert lock.write_held
        lock.release_write()
        for t in threads:
            t.join(timeout=5.0)
        assert sorted(progressed) == ["r", "r", "w"]

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a SELECT stream cannot starve a DELETE."""
        lock = RWLock()
        lock.acquire_read()
        writer_done = threading.Event()
        late_reader_done = threading.Event()
        order = []

        def writer():
            lock.acquire_write()
            order.append("writer")
            lock.release_write()
            writer_done.set()

        wt = threading.Thread(target=writer)
        wt.start()
        time.sleep(0.05)  # writer now queued behind the held read lock

        def late_reader():
            with lock.read_locked():
                order.append("reader")
            late_reader_done.set()

        rt = threading.Thread(target=late_reader)
        rt.start()
        time.sleep(0.05)
        # the late reader must queue behind the waiting writer
        assert not late_reader_done.is_set()
        lock.release_read()
        assert writer_done.wait(timeout=5.0)
        assert late_reader_done.wait(timeout=5.0)
        assert order == ["writer", "reader"]
        wt.join(timeout=5.0)
        rt.join(timeout=5.0)
