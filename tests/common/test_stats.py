"""Tests for the latency histogram and stats collector."""

import threading

import pytest

from repro.common.stats import Histogram, OperationStats, StatsCollector


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean_us == 0.0
        assert h.min_us == 0.0
        assert h.max_us == 0.0

    def test_mean_min_max_exact(self):
        h = Histogram()
        for v in (10, 20, 30):
            h.record(v)
        assert h.count == 3
        assert h.mean_us == pytest.approx(20.0)
        assert h.min_us == 10
        assert h.max_us == 30

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram().record(-1)

    def test_percentile_bounds(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(float(v))
        p50 = h.percentile_us(50)
        p99 = h.percentile_us(99)
        assert p50 <= p99
        # log-bucketed: within one growth factor of the true value
        assert 30 <= p50 <= 110
        assert 60 <= p99 <= 220

    def test_percentile_validation(self):
        h = Histogram()
        h.record(1)
        with pytest.raises(ValueError):
            h.percentile_us(0)
        with pytest.raises(ValueError):
            h.percentile_us(101)

    def test_percentile_empty_is_zero(self):
        assert Histogram().percentile_us(99) == 0.0

    def test_merge_combines(self):
        a, b = Histogram(), Histogram()
        a.record(10)
        b.record(1000)
        a.merge(b)
        assert a.count == 2
        assert a.min_us == 10
        assert a.max_us == 1000
        assert a.mean_us == pytest.approx(505.0)

    def test_huge_latency_clamps_to_last_bucket(self):
        h = Histogram()
        h.record(1e12)  # beyond bucket range
        assert h.count == 1
        assert h.max_us == 1e12


class TestOperationStats:
    def test_success_failure_tally(self):
        stats = OperationStats("read")
        stats.record(5.0, success=True)
        stats.record(7.0, success=False)
        assert stats.ok == 1
        assert stats.failed == 1
        assert stats.histogram.count == 2


class TestStatsCollector:
    def test_records_per_operation(self):
        collector = StatsCollector()
        collector.record("read", 10)
        collector.record("read", 20)
        collector.record("update", 30, success=False)
        ops = collector.operations
        assert ops["read"].ok == 2
        assert ops["update"].failed == 1
        assert collector.total_ops == 3
        assert collector.total_ok == 2

    def test_completion_time_and_throughput(self):
        collector = StatsCollector()
        collector.start(0.0)
        for _ in range(100):
            collector.record("op", 1.0)
        collector.finish(2.0)
        assert collector.completion_time_s == 2.0
        assert collector.throughput_ops_s == pytest.approx(50.0)

    def test_unstarted_run_reports_zero(self):
        collector = StatsCollector()
        collector.record("op", 1.0)
        assert collector.completion_time_s == 0.0
        assert collector.throughput_ops_s == 0.0

    def test_summary_shape(self):
        collector = StatsCollector()
        collector.start(0.0)
        collector.record("read", 15.0)
        collector.finish(1.0)
        summary = collector.summary()
        assert summary["total_ops"] == 1
        assert summary["operations"]["read"]["count"] == 1
        assert summary["operations"]["read"]["mean_us"] == 15.0

    def test_thread_safe_recording(self):
        collector = StatsCollector()

        def hammer():
            for _ in range(1000):
                collector.record("op", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert collector.total_ops == 4000
