"""Frame-level tests for the TCP shard transport.

The wire format is a 4-byte big-endian length prefix plus pickle; the
contract the router relies on is the *error taxonomy*: a clean peer
close on a frame boundary is ``EOFError`` (same as a closed pipe), and
every flavour of stream rot — truncation mid-frame, a garbage length
prefix, an unpicklable payload — is :class:`FrameError`, which subclasses
``ConnectionError`` so the router's ``except (EOFError, OSError)``
respawn path covers it without a special case.
"""

import pickle
import socket
import struct
import threading

import pytest

from repro.common.netshard import (
    MAX_FRAME_BYTES,
    FrameError,
    ShardServer,
    SocketConnection,
    connect_shard,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFrames:
    def test_round_trip(self, pair):
        a, b = pair
        message = ("call", "get", ("user1",), {})
        send_frame(a, message)
        assert recv_frame(b) == message

    def test_round_trip_large_payload(self, pair):
        a, b = pair
        blob = b"x" * (2 << 20)  # spans many recv() chunks
        sender = threading.Thread(target=send_frame, args=(a, blob))
        sender.start()
        assert recv_frame(b) == blob
        sender.join()

    def test_clean_close_is_eof(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)

    def test_truncated_header_is_frame_error(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")  # half a length prefix, then gone
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)

    def test_truncated_payload_is_frame_error(self, pair):
        a, b = pair
        payload = pickle.dumps("hello")
        a.sendall(struct.pack("!I", len(payload)) + payload[:3])
        a.close()
        with pytest.raises(FrameError, match="truncated"):
            recv_frame(b)

    def test_garbage_length_prefix_is_frame_error(self, pair):
        a, b = pair
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1) + b"junk")
        with pytest.raises(FrameError, match="implausible"):
            recv_frame(b)

    def test_garbage_payload_is_frame_error(self, pair):
        a, b = pair
        junk = b"\x93NOT-A-PICKLE"
        a.sendall(struct.pack("!I", len(junk)) + junk)
        with pytest.raises(FrameError, match="garbage"):
            recv_frame(b)

    def test_frame_error_is_a_connection_error(self):
        # the property the router's recovery path relies on
        assert issubclass(FrameError, ConnectionError)
        assert issubclass(FrameError, OSError)


class _PingEngine:
    """Minimal engine for exercising the server's serve loop."""

    instances = 0

    def __init__(self):
        type(self).instances += 1
        self.serial = type(self).instances
        self.closed = False

    def ping(self):
        return ("pong", self.serial)

    def boom(self):
        raise ValueError("kaboom")

    def close(self):
        self.closed = True


def _run_batch(engine, calls):
    return [getattr(engine, method)(*args, **kwargs)
            for method, args, kwargs in calls]


@pytest.fixture
def server():
    _PingEngine.instances = 0
    srv = ShardServer("127.0.0.1", 0, _PingEngine, _run_batch, RuntimeError)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


class TestShardServer:
    def test_call_and_stop(self, server):
        conn = connect_shard(server.host, server.port)
        conn.send(("call", "ping", (), {}))
        assert conn.recv() == ("ok", ("pong", 1))
        conn.send(("batch", [("ping", (), {}), ("ping", (), {})]))
        status, payload = conn.recv()
        assert status == "ok" and len(payload) == 2
        conn.send(("stop",))
        assert conn.recv() == ("ok", None)
        conn.close()

    def test_engine_exception_is_an_err_reply(self, server):
        conn = connect_shard(server.host, server.port)
        conn.send(("call", "boom", (), {}))
        status, exc = conn.recv()
        assert status == "err"
        assert isinstance(exc, ValueError)
        # the connection survives an engine error: strictly one reply
        # per message, stream still in sync
        conn.send(("call", "ping", (), {}))
        assert conn.recv()[0] == "ok"
        conn.close()

    def test_fresh_engine_per_connection(self, server):
        first = connect_shard(server.host, server.port)
        first.send(("call", "ping", (), {}))
        assert first.recv() == ("ok", ("pong", 1))
        first.close()  # abrupt: no stop message
        second = connect_shard(server.host, server.port)
        second.send(("call", "ping", (), {}))
        # a new connection gets a newly-constructed engine — the
        # respawn-replay semantics external shards promise the router
        assert second.recv() == ("ok", ("pong", 2))
        second.send(("stop",))
        second.recv()
        second.close()

    def test_mid_frame_disconnect_does_not_kill_server(self, server):
        raw = socket.create_connection((server.host, server.port))
        raw.sendall(struct.pack("!I", 1024) + b"partial")
        raw.close()  # server sees a truncated frame mid-read
        conn = connect_shard(server.host, server.port)
        conn.send(("call", "ping", (), {}))
        assert conn.recv()[0] == "ok"
        conn.send(("stop",))
        conn.recv()
        conn.close()

    def test_socket_connection_adapts_pipe_surface(self):
        # a real TCP pair: SocketConnection sets TCP_NODELAY, which
        # AF_UNIX socketpairs reject
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        a = socket.create_connection(listener.getsockname()[:2])
        b, _ = listener.accept()
        listener.close()
        left, right = SocketConnection(a), SocketConnection(b)
        left.send({"k": b"v"})
        assert right.recv() == {"k": b"v"}
        assert isinstance(right.fileno(), int)
        left.close()
        with pytest.raises(EOFError):
            right.recv()
        right.close()
