"""The futures contract: resolve-on-execute, callbacks, autopipe.

PR 8's front end changes what queueing methods *return* — a pending
:class:`~repro.clients.futures.ResultFuture` per slot — without changing
what executing a batch *does*.  This suite pins the new surface on every
deployment shape the pipeline contract covers (both engines ×
in-process/sharded/tcp):

* futures resolve on ``execute()`` to exactly the values the unbatched
  single-op methods return;
* per-slot error isolation — a poisoned slot fails its own future and
  nobody else's;
* ``then()`` callbacks fire after the batch settles, in slot order, and
  immediately when attached late;
* nested pipelines auto-merge into their root: one ``execute()`` = one
  wire round-trip for the whole tree;
* ``cancel()`` withdraws an unflushed slot; ``result(timeout)`` on a
  never-flushed future times out rather than deadlocking;
* ``client.autopipe()`` coalesces bare client calls — flush on read,
  on the size threshold, before any ordered operation, on context
  exit, and (under asyncio) on an event-loop tick.
"""

import asyncio

import pytest

from repro.clients import (
    CancelledFutureError,
    FeatureSet,
    ResultFuture,
    make_client,
)

pytestmark = pytest.mark.deadline(120)

#: (id, engine, client kwargs) — mirrors the pipeline-contract matrix so
#: the futures surface cannot drift between deployment shapes.
CONFIGS = (
    ("redis", "redis", {}),
    ("postgres", "postgres", {}),
    ("redis-sharded", "redis", {"shards": 3}),
    ("postgres-sharded", "postgres", {"shards": 3}),
    ("redis-sharded-tcp", "redis", {"shards": 3, "transport": "tcp"}),
    ("postgres-sharded-tcp", "postgres", {"shards": 3, "transport": "tcp"}),
)
N_ROWS = 20


def _load(client) -> None:
    for i in range(N_ROWS):
        client.ycsb_insert(f"user{i:04d}", {"field0": f"v{i}", "field1": "x"})


@pytest.fixture(params=CONFIGS, ids=[config[0] for config in CONFIGS])
def client(request):
    _, engine, kwargs = request.param
    c = make_client(engine, FeatureSet.none(), **kwargs)
    _load(c)
    yield c
    c.close()


def _poison(client, pipe) -> ResultFuture:
    """Queue an op guaranteed to fail on this engine; return its future."""
    if client.engine_name == "redis":
        # a non-hash value at the YCSB key makes HGETALL blow up
        client.engine.set("user:poison", b"not-a-hash")
        return pipe.ycsb_read("poison")
    # duplicate primary key makes the INSERT blow up
    return pipe.ycsb_insert("user0000", {"field0": "dup", "field1": "dup"})


class TestResultFutures:
    def test_resolve_on_execute_matches_unbatched(self, client):
        twin = make_client(client.engine_name, FeatureSet.none())
        try:
            _load(twin)
            expected = [
                twin.ycsb_read("user0003"),
                twin.ycsb_update("user0004", {"field0": "patched"}),
                twin.ycsb_read("user0004"),
            ]
            pipe = client.pipeline()
            futures = [
                pipe.ycsb_read("user0003"),
                pipe.ycsb_update("user0004", {"field0": "patched"}),
                pipe.ycsb_read("user0004"),
            ]
            assert all(f.pending for f in futures)
            responses = pipe.execute()
        finally:
            twin.close()
        assert all(f.resolved for f in futures)
        # the futures and the execute() return are the same slot values
        assert [f.result() for f in futures] == responses
        for got, want in zip(responses, expected):
            if isinstance(want, dict):
                assert {k: got[k] for k in ("field0", "field1")} == \
                       {k: want[k] for k in ("field0", "field1")}
            else:
                assert got == want

    def test_per_slot_error_isolation(self, client):
        pipe = client.pipeline()
        before = pipe.ycsb_update("user0001", {"field0": "pre"})
        bad = _poison(client, pipe)
        after = pipe.ycsb_read("user0002")
        with pytest.raises(Exception):
            pipe.execute()  # first error raised after the batch completes
        # the failure stayed on its own slot; neighbours resolved
        assert before.resolved and after.resolved
        assert after.result()["field0"] == "v2"
        assert bad.failed and isinstance(bad.error, Exception)
        with pytest.raises(type(bad.error)):
            bad.result()

    def test_callbacks_fire_in_slot_order(self, client):
        order = []
        pipe = client.pipeline()
        f1 = pipe.ycsb_read("user0001")
        f2 = pipe.ycsb_read("user0002")
        f2.then(lambda value: order.append(("second", value["field0"])))
        f1.then(lambda value: order.append(("first", value["field0"])))
        assert order == []  # nothing fires before the batch settles
        pipe.execute()
        assert order == [("first", "v1"), ("second", "v2")]
        # a late then() on a settled future fires immediately
        f2.then(lambda value: order.append(("late", value["field0"])))
        assert order[-1] == ("late", "v2")

    def test_error_callback_routes_to_on_error(self, client):
        seen = []
        pipe = client.pipeline()
        bad = _poison(client, pipe)
        bad.then(lambda value: seen.append(("value", value)),
                 lambda error: seen.append(("error", type(error).__name__)))
        with pytest.raises(Exception):
            pipe.execute()
        assert len(seen) == 1 and seen[0][0] == "error"

    def test_nested_pipelines_merge_into_one_round_trip(self, client, monkeypatch):
        twin = make_client(client.engine_name, FeatureSet.none())
        try:
            _load(twin)
            root = client.pipeline()
            batches = []
            original = type(root)._run_ops

            def counting_run_ops(self, ops):
                batches.append(len(ops))
                return original(self, ops)

            monkeypatch.setattr(type(root), "_run_ops", counting_run_ops)
            nested = root.pipeline()
            outer_fut = root.ycsb_read("user0005")
            inner_futs = [
                nested.ycsb_read("user0006"),
                nested.ycsb_update("user0007", {"field0": "inner"}),
            ]
            # a nested execute() drains its own view without a round-trip
            assert nested.execute() == inner_futs
            assert batches == []
            assert all(f.pending for f in inner_futs)
            root.execute()
            # one wire round-trip carried the whole tree, in issue order
            assert batches == [3]
            assert outer_fut.result()["field0"] == twin.ycsb_read("user0005")["field0"]
            assert inner_futs[0].result()["field0"] == "v6"
            assert inner_futs[1].result() == twin.ycsb_update(
                "user0007", {"field0": "inner"}
            )
        finally:
            twin.close()

    def test_cancel_withdraws_an_unflushed_slot(self, client):
        pipe = client.pipeline()
        doomed = pipe.ycsb_update("user0008", {"field0": "never"})
        kept = pipe.ycsb_read("user0009")
        assert doomed.cancel()
        assert len(pipe) == 1
        responses = pipe.execute()
        assert len(responses) == 1
        assert kept.result()["field0"] == "v9"
        assert doomed.cancelled
        with pytest.raises(CancelledFutureError):
            doomed.result()
        # the cancelled write never reached the engine
        assert client.ycsb_read("user0008")["field0"] == "v8"
        # cancelling a settled future is a no-op refusal
        assert not kept.cancel()

    def test_result_timeout_on_a_never_flushed_future(self, client):
        with client.autopipe(flush_on_read=False) as auto:
            fut = client.ycsb_read("user0001")
            assert fut.pending
            with pytest.raises(TimeoutError):
                fut.result(timeout=0.05)
            assert auto.flushes == 0
        # context exit flushed it; the value is now available
        assert fut.result()["field0"] == "v1"


class TestAutoPipe:
    def test_bare_calls_coalesce_and_match_unbatched(self, client):
        twin = make_client(client.engine_name, FeatureSet.none())
        try:
            _load(twin)
            with client.autopipe() as auto:
                futures = [client.ycsb_read(f"user{i:04d}") for i in range(6)]
                assert all(isinstance(f, ResultFuture) for f in futures)
                assert auto.flushes == 0
                # flush-on-read: the first result() executes the batch
                assert futures[0].result()["field0"] == "v0"
                assert auto.flushes == 1
                assert all(f.resolved for f in futures)
            expected = [twin.ycsb_read(f"user{i:04d}") for i in range(6)]
            for fut, want in zip(futures, expected):
                assert {k: fut.result()[k] for k in ("field0", "field1")} == \
                       {k: want[k] for k in ("field0", "field1")}
        finally:
            twin.close()

    def test_size_threshold_flushes_without_a_read(self, client):
        with client.autopipe(max_batch=4) as auto:
            futures = [client.ycsb_read(f"user{i:04d}") for i in range(4)]
            assert auto.flushes == 1  # fourth enqueue hit the threshold
            assert all(f.resolved for f in futures)

    def test_ordered_operation_flushes_first(self, client):
        with client.autopipe() as auto:
            fut = client.ycsb_insert("zzz0900", {"field0": "s", "field1": "t"})
            # scan is order-sensitive: it must observe the queued insert
            rows = client.ycsb_scan("zzz0900", 1)
            assert auto.flushes == 1
            assert fut.resolved
            assert len(rows) == 1

    def test_exit_flush_keeps_errors_per_slot(self, client):
        with client.autopipe() as auto:
            ok = client.ycsb_read("user0001")
            bad = _poison(client, auto._pipe)
            bad._flush_hook = auto.flush
        # exit flushed without raising the batch error
        assert auto.flushes == 1
        assert ok.result()["field0"] == "v1"
        assert bad.failed

    def test_outside_the_context_calls_run_per_call(self, client):
        response = client.ycsb_read("user0001")
        assert not isinstance(response, ResultFuture)
        assert response["field0"] == "v1"

    def test_asyncio_tick_coalesces_concurrent_tasks(self, client):
        async def scenario():
            with client.autopipe() as auto:
                async def one_read(i):
                    return await client.ycsb_read(f"user{i:04d}")

                values = await asyncio.gather(one_read(1), one_read(2))
                # both tasks' calls coalesced into one round-trip, flushed
                # by the scheduled event-loop tick (not by flush-on-read)
                return auto.flushes, values

        flushes, values = asyncio.run(scenario())
        assert flushes == 1
        assert [v["field0"] for v in values] == ["v1", "v2"]
