"""SQLGDPRClient over the multi-process sharded engine (shards > 1).

The client must behave identically to the in-process deployment for the
whole GDPR query surface — typed-column queries, secondary indices,
pipelined batches, TTL purges, audit logs — with each table's rows
hash-partitioned by primary key across worker processes and the audit
trail split into per-shard csvlogs.
"""

import time

import pytest

from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, make_client
from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError
from repro.gdpr.acl import Principal
from repro.minisql import Database, ShardedDatabase


def corpus(n=60, users=6):
    return generate_corpus(RecordCorpusConfig(record_count=n, user_count=users))


@pytest.fixture()
def client():
    c = make_client("postgres", FeatureSet(access_control=False), shards=3)
    yield c
    c.close()


class TestConstruction:
    def test_one_shard_stays_in_process(self):
        with make_client("postgres", FeatureSet.none(), shards=1) as c:
            assert isinstance(c.db, Database)

    def test_many_shards_build_the_router(self):
        with make_client("postgres", FeatureSet.none(), shards=3) as c:
            assert isinstance(c.db, ShardedDatabase)
            assert c.db.shard_count == 3

    def test_custom_clock_rejected_with_shards(self):
        with pytest.raises(ConfigurationError):
            make_client("postgres", FeatureSet.none(), shards=2,
                        clock=VirtualClock())

    def test_metadata_indices_fan_out(self):
        features = FeatureSet(access_control=False, metadata_indexing=True)
        with make_client("postgres", features, shards=2) as c:
            names = {info.name for info in c.db.catalog.indices_for("personal_records")}
            assert "idx_usr" in names and "idx_expiry" in names


class TestQuerySurface:
    def test_point_and_fanout_queries(self, client):
        records = corpus()
        client.load_records(records)
        anyone = Principal.controller()
        rec = records[0]
        assert client.read_data_by_key(anyone, rec.key) == rec.data
        assert client.read_metadata_by_key(anyone, rec.key)["USR"] == rec.user
        by_usr = client.read_data_by_usr(anyone, rec.user)
        expected = sorted(r.key for r in records if r.user == rec.user)
        assert sorted(k for k, _ in by_usr) == expected
        assert client.record_count() == len(records)

    def test_negative_and_list_queries_span_shards(self, client):
        records = corpus()
        client.load_records(records)
        anyone = Principal.controller()
        purpose = records[0].purposes[0]
        by_pur = {k for k, _ in client.read_data_by_pur(anyone, purpose)}
        assert by_pur == {r.key for r in records if purpose in r.purposes}
        objection = next(r.objections[0] for r in records if r.objections)
        by_obj = {k for k, _ in client.read_data_by_obj(anyone, objection)}
        assert by_obj == {r.key for r in records if objection not in r.objections}

    def test_update_and_delete_span_shards(self, client):
        records = corpus()
        client.load_records(records)
        anyone = Principal.controller()
        user = records[0].user
        expected = sum(1 for r in records if r.user == user)
        assert client.update_metadata_by_usr(anyone, user, "SRC", "bulk") == expected
        for _key, metadata in client.read_metadata_by_usr(anyone, user):
            assert metadata["SRC"] == "bulk"
        assert client.delete_record_by_usr(anyone, user) == expected
        assert client.read_data_by_usr(anyone, user) == []
        assert client.record_count() == len(records) - expected

    def test_delete_record_by_ttl_purges_every_shard(self):
        import dataclasses

        with make_client("postgres", FeatureSet(access_control=False),
                         shards=3) as client:
            records = [dataclasses.replace(r, ttl_seconds=0.05)
                       for r in corpus(n=30)]
            client.load_records(records)
            time.sleep(0.3)
            deleted = client.delete_record_by_ttl(Principal.controller())
            assert deleted == 30
            assert client.record_count() == 0

    def test_pipeline_batches_across_shards(self, client):
        records = corpus()
        client.load_records(records)
        anyone = Principal.controller()
        pipe = client.pipeline()
        pipe.read_data_by_key(anyone, records[0].key)
        pipe.read_metadata_by_usr(anyone, records[1].user)
        pipe.update_metadata_by_key(anyone, records[2].key, "SRC", "piped")
        pipe.read_data_by_key(anyone, records[3].key)
        responses = pipe.execute()
        assert responses[0] == records[0].data
        assert responses[1]
        assert responses[2] == 1
        assert responses[3] == records[3].data

    def test_ycsb_primitives(self, client):
        client.ycsb_insert("u1", {"field0": "a"})
        client.ycsb_insert("u2", {"field0": "b"})
        assert client.ycsb_read("u1", fields=("field0",)) == {"field0": "a"}
        assert client.ycsb_update("u1", {"field0": "z"}) == 1
        assert client.ycsb_scan("u1", 10)
        pipe = client.pipeline()
        pipe.ycsb_read("u1", fields=("field0",))
        pipe.ycsb_update("u2", {"field0": "y"})
        pipe.ycsb_insert("u3", {"field0": "c"})
        assert pipe.execute() == [{"field0": "z"}, 1, None]

    def test_pipeline_interleaves_point_runs_and_multi_ops(self, client):
        """A batch mixing YCSB point runs with multi-record GDPR ops must
        flush the pending run before each multi op (ordering preserved)."""
        records = corpus(n=20)
        client.load_records(records)
        anyone = Principal.controller()
        client.ycsb_insert("u1", {"field0": "a"})
        pipe = client.pipeline()
        pipe.ycsb_update("u1", {"field0": "b"})
        pipe.read_data_by_usr(anyone, records[0].user)
        pipe.ycsb_read("u1", fields=("field0",))
        responses = pipe.execute()
        assert responses[0] == 1
        assert responses[1]
        assert responses[2] == {"field0": "b"}  # the update flushed first


class TestAuditAndRecovery:
    def test_audit_trail_merges_per_shard_csvlogs(self, tmp_path):
        features = FeatureSet(access_control=False, monitoring=True)
        with make_client("postgres", features, data_dir=str(tmp_path),
                         shards=3) as client:
            client.load_records(corpus(n=30))
            client.read_data_by_key(Principal.controller(),
                                    next(iter(corpus(n=1))).key)
            assert len(client.db.csvlog_paths) == 3
            events = client.get_system_logs(Principal.regulator(), limit=40)
            assert events and len(events) <= 40

    def test_tail_limit_splits_exactly_across_shards(self, tmp_path):
        """The ``limit % shards`` remainder goes to the first shards, and
        a share of zero skips the shard entirely."""
        features = FeatureSet(access_control=False, monitoring=True)
        with make_client("postgres", features, data_dir=str(tmp_path),
                         shards=3) as client:
            client.load_records(corpus(n=60))  # plenty of lines per shard
            regulator = Principal.regulator()
            # limit=7 over 3 shards -> shares 3, 2, 2
            events = client.get_system_logs(regulator, limit=7)
            assert len(events) == 7
            # limit=2 over 3 shards -> shares 1, 1, 0: shard 2 contributes
            # nothing rather than stealing another shard's slot
            events = client.get_system_logs(regulator, limit=2)
            assert len(events) == 2

    def test_time_ranged_logs_merge_in_timestamp_order(self, tmp_path):
        features = FeatureSet(access_control=False, monitoring=True)
        with make_client("postgres", features, data_dir=str(tmp_path),
                         shards=3) as client:
            client.load_records(corpus(n=30))
            events = client.get_system_logs(
                Principal.regulator(), start=0.0, end=float("inf"), limit=20
            )
            assert len(events) == 20
            timestamps = [event.timestamp for event in events]
            assert timestamps == sorted(timestamps)

    def test_worker_crash_mid_workload_recovers(self, tmp_path):
        with make_client("postgres", FeatureSet(access_control=False),
                         data_dir=str(tmp_path), shards=3,
                         durable=True) as client:
            records = corpus()
            client.load_records(records)
            # force every shard WAL to disk, then hard-kill one worker
            client.db.flush_wal()
            client.db._shards[0].process.kill()
            client.db._shards[0].process.join()
            anyone = Principal.controller()
            # the whole store remains reachable (dead shard replays)
            for record in records:
                assert client.read_data_by_key(anyone, record.key) == record.data
            assert client.record_count() == len(records)

    def test_durable_restart_recovers_catalog_and_rows(self, tmp_path):
        features = FeatureSet(access_control=False, metadata_indexing=True,
                              timely_deletion=True)
        records = corpus(n=30)
        with make_client("postgres", features, data_dir=str(tmp_path),
                         shards=2, durable=True) as client:
            client.load_records(records)
            client.ycsb_insert("u1", {"field0": "a"})
        with make_client("postgres", features, data_dir=str(tmp_path),
                         shards=2, durable=True) as client:
            assert client.record_count() == len(records)
            anyone = Principal.controller()
            assert client.read_data_by_key(anyone, records[0].key) == records[0].data
            assert client.ycsb_read("u1", fields=("field0",)) == {"field0": "a"}
