"""Parity tests: both client stubs must implement every GDPR query
identically (modulo engine), plus per-engine specifics."""

import pytest

from repro.common.errors import AccessDeniedError, GDPRError
from repro.clients import FeatureSet, make_client
from repro.clients.base import normalise_attribute
from repro.gdpr import PersonalRecord, Principal

CTRL = Principal.controller()
REG = Principal.regulator()
PROC = Principal.processor()


def corpus():
    records = []
    for i in range(60):
        records.append(PersonalRecord(
            key=f"k{i:03d}",
            data=f"u{i % 6}:data{i:03d}",
            purposes=("ads",) if i % 2 == 0 else ("billing",),
            ttl_seconds=3600.0,
            user=f"u{i % 6}",
            objections=("analytics",) if i % 3 == 0 else (),
            decisions=("profiling",) if i % 4 == 0 else (),
            shared_with=("acme",) if i % 5 == 0 else (),
            source="first-party",
        ))
    return records


@pytest.fixture(params=["redis", "postgres"])
def client(request):
    features = FeatureSet.full(metadata_indexing=(request.param == "postgres"))
    c = make_client(request.param, features)
    c.load_records(corpus())
    yield c
    c.close()


class TestReads:
    def test_read_data_by_key(self, client):
        assert client.read_data_by_key(PROC, "k003") == "u3:data003"
        assert client.read_data_by_key(PROC, "ghost") is None

    def test_read_data_by_pur(self, client):
        rows = client.read_data_by_pur(PROC, "ads")
        assert len(rows) == 30
        assert all(key.startswith("k") for key, _ in rows)

    def test_read_data_by_usr(self, client):
        rows = client.read_data_by_usr(Principal.customer("u2"), "u2")
        assert len(rows) == 10
        assert all(data.startswith("u2:") for _, data in rows)

    def test_read_data_by_obj(self, client):
        rows = client.read_data_by_obj(PROC, "analytics")
        assert len(rows) == 40  # records NOT objecting

    def test_read_data_by_dec(self, client):
        assert len(client.read_data_by_dec(PROC, "profiling")) == 15

    def test_read_metadata_by_key(self, client):
        md = client.read_metadata_by_key(Principal.customer("u0"), "k000")
        assert md["USR"] == "u0"
        assert md["PUR"] == ("ads",)
        assert md["TTL"] == 3600.0
        assert client.read_metadata_by_key(REG, "ghost") is None

    def test_read_metadata_by_usr(self, client):
        rows = client.read_metadata_by_usr(REG, "u1")
        assert len(rows) == 10
        assert all(md["USR"] == "u1" for _, md in rows)

    def test_read_metadata_by_shr(self, client):
        rows = client.read_metadata_by_shr(REG, "acme")
        assert len(rows) == 12
        assert all("acme" in md["SHR"] for _, md in rows)


class TestWrites:
    def test_create_record(self, client):
        record = PersonalRecord(key="new1", data="u0:fresh", purposes=("ads",),
                                ttl_seconds=60.0, user="u0")
        assert client.create_record(CTRL, record) is True
        assert client.read_data_by_key(PROC, "new1") == "u0:fresh"

    def test_update_data_by_key(self, client):
        cust = Principal.customer("u1")
        assert client.update_data_by_key(cust, "k001", "u1:corrected") == 1
        assert client.read_data_by_key(cust, "k001") == "u1:corrected"
        assert client.update_data_by_key(cust, "ghost", "x") == 0

    def test_update_metadata_by_key_objection(self, client):
        cust = Principal.customer("u1")
        assert client.update_metadata_by_key(cust, "k001", "OBJ", ("ads",)) == 1
        md = client.read_metadata_by_key(cust, "k001")
        assert md["OBJ"] == ("ads",)

    def test_update_metadata_ttl_changes_expiry(self, client):
        assert client.update_metadata_by_key(CTRL, "k002", "TTL", 7200.0) == 1
        md = client.read_metadata_by_key(REG, "k002")
        assert md["TTL"] == 7200.0

    def test_update_metadata_by_pur(self, client):
        changed = client.update_metadata_by_pur(CTRL, "billing", "SHR", ("globex",))
        assert changed == 30
        rows = client.read_metadata_by_shr(REG, "globex")
        assert len(rows) == 30

    def test_update_metadata_by_usr(self, client):
        assert client.update_metadata_by_usr(CTRL, "u3", "SRC", "third-party") == 10

    def test_update_metadata_by_shr(self, client):
        changed = client.update_metadata_by_shr(CTRL, "acme", "DEC", ("scoring",))
        assert changed == 12


class TestDeletes:
    def test_delete_by_key_and_verify(self, client):
        cust = Principal.customer("u5")
        assert client.delete_record_by_key(cust, "k005") == 1
        assert client.verify_deletion(REG, "k005") is True
        assert client.verify_deletion(REG, "k006") is False
        assert client.delete_record_by_key(cust, "k005") == 0

    def test_delete_by_usr(self, client):
        assert client.delete_record_by_usr(CTRL, "u4") == 10
        assert client.read_data_by_usr(Principal.customer("u4"), "u4") == []

    def test_delete_by_pur(self, client):
        assert client.delete_record_by_pur(CTRL, "ads") == 30
        assert client.read_data_by_pur(PROC, "ads") == []
        assert client.record_count() == 30

    def test_delete_by_ttl_purges_expired(self):
        from repro.common.clock import VirtualClock
        for engine in ("redis", "postgres"):
            clock = VirtualClock()
            c = make_client(engine, FeatureSet(access_control=True), clock=clock)
            short = PersonalRecord(key="s", data="u0:x", purposes=("ads",),
                                   ttl_seconds=10.0, user="u0")
            long = PersonalRecord(key="l", data="u0:y", purposes=("ads",),
                                  ttl_seconds=10000.0, user="u0")
            c.load_records([short, long])
            clock.advance(60)
            deleted = c.delete_record_by_ttl(CTRL)
            assert deleted >= 1, engine
            assert c._record_exists("l"), engine
            c.close()


class TestACLIntegration:
    def test_customer_cannot_touch_others_records(self, client):
        smith = Principal.customer("u5")
        with pytest.raises(AccessDeniedError):
            client.read_data_by_key(smith, "k000")  # owned by u0
        with pytest.raises(AccessDeniedError):
            client.update_data_by_key(smith, "k000", "u0:hacked")
        with pytest.raises(AccessDeniedError):
            client.delete_record_by_key(smith, "k000")

    def test_role_gates(self, client):
        with pytest.raises(AccessDeniedError):
            client.delete_record_by_pur(Principal.customer("u0"), "ads")
        with pytest.raises(AccessDeniedError):
            client.read_data_by_key(REG, "k000")
        with pytest.raises(AccessDeniedError):
            client.create_record(PROC, corpus()[0])

    def test_processor_purpose_identity_enforced(self, client):
        scoped = Principal.processor("billing")
        with pytest.raises(AccessDeniedError):
            client.read_data_by_key(scoped, "k000")  # k000 is an 'ads' record
        assert client.read_data_by_key(scoped, "k001") == "u1:data001"


class TestSystemQueries:
    def test_get_system_logs(self, client):
        client.read_data_by_key(PROC, "k000")
        logs = client.get_system_logs(REG, limit=20)
        assert logs
        assert len(logs) <= 20

    def test_get_system_features(self, client):
        report = client.get_system_features(REG)
        assert report.features["encryption"] is True
        assert report.features["monitoring"] is True
        if client.engine_name == "postgres":
            assert report.score() == 1.0

    def test_logs_require_regulator_role(self, client):
        with pytest.raises(AccessDeniedError):
            client.get_system_logs(PROC)


class TestSpaceAccounting:
    def test_space_overhead_positive(self, client):
        assert client.space_overhead() > 1.0
        assert client.personal_data_bytes() > 0
        assert client.total_db_bytes() > client.personal_data_bytes()

    def test_record_count(self, client):
        assert client.record_count() == 60


class TestNormaliseAttribute:
    def test_list_attributes(self):
        assert normalise_attribute("PUR", "ads") == ("ads",)
        assert normalise_attribute("obj", ["a", "b"]) == ("a", "b")
        assert normalise_attribute("SHR", "") == ()

    def test_ttl(self):
        assert normalise_attribute("TTL", 60) == 60.0
        assert normalise_attribute("TTL", "5min") == 300.0

    def test_scalars(self):
        assert normalise_attribute("USR", "neo") == "neo"
        with pytest.raises(GDPRError):
            normalise_attribute("USR", 42)

    def test_unknown_attribute(self):
        with pytest.raises(GDPRError):
            normalise_attribute("XYZ", "v")


class TestMakeClient:
    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            make_client("oracle")
