"""RedisGDPRClient over the multi-process sharded engine (shards > 1).

The client must behave identically to the in-process deployment for the
whole GDPR query surface — routing, reverse indices, pipelined batches,
TTL purges, audit logs — with the keyspace spread across worker
processes and the audit trail split into per-shard AOFs.
"""

import time

import pytest

from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, make_client
from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError
from repro.gdpr.acl import Principal
from repro.minikv import MiniKV, ShardedMiniKV


def corpus(n=60, users=6):
    return generate_corpus(RecordCorpusConfig(record_count=n, user_count=users))


@pytest.fixture()
def client():
    c = make_client("redis", FeatureSet(access_control=False),
                    shards=3, client_indices=True)
    yield c
    c.close()


class TestConstruction:
    def test_one_shard_stays_in_process(self):
        with make_client("redis", FeatureSet.none(), shards=1) as c:
            assert isinstance(c.engine, MiniKV)

    def test_many_shards_build_the_router(self):
        with make_client("redis", FeatureSet.none(), shards=3) as c:
            assert isinstance(c.engine, ShardedMiniKV)
            assert c.engine.shard_count == 3

    def test_custom_clock_rejected_with_shards(self):
        with pytest.raises(ConfigurationError):
            make_client("redis", FeatureSet.none(), shards=2,
                        clock=VirtualClock())


class TestQuerySurface:
    def test_point_and_fanout_queries(self, client):
        records = corpus()
        client.load_records(records)
        anyone = Principal.controller()
        rec = records[0]
        assert client.read_data_by_key(anyone, rec.key) == rec.data
        assert client.read_metadata_by_key(anyone, rec.key)["USR"] == rec.user
        by_usr = client.read_data_by_usr(anyone, rec.user)
        expected = sorted(r.key for r in records if r.user == rec.user)
        assert sorted(k for k, _ in by_usr) == expected
        assert client.record_count() == len(records)

    def test_indexed_queries_span_shards(self, client):
        records = corpus()
        client.load_records(records)
        anyone = Principal.controller()
        purpose = records[0].purposes[0]
        by_pur = {k for k, _ in client.read_data_by_pur(anyone, purpose)}
        assert by_pur == {r.key for r in records if purpose in r.purposes}
        # negative query: master index minus objectors, across shards
        objection = next(r.objections[0] for r in records if r.objections)
        by_obj = {k for k, _ in client.read_data_by_obj(anyone, objection)}
        assert by_obj == {r.key for r in records if objection not in r.objections}

    def test_update_and_delete_span_shards(self, client):
        records = corpus()
        client.load_records(records)
        anyone = Principal.controller()
        user = records[0].user
        expected = sum(1 for r in records if r.user == user)
        assert client.update_metadata_by_usr(anyone, user, "SRC", "bulk") == expected
        for key, metadata in client.read_metadata_by_usr(anyone, user):
            assert metadata["SRC"] == "bulk"
        assert client.delete_record_by_usr(anyone, user) == expected
        assert client.read_data_by_usr(anyone, user) == []
        assert client.record_count() == len(records) - expected

    def test_delete_record_by_ttl_purges_every_shard(self):
        with make_client("redis", FeatureSet(access_control=False),
                         shards=3, client_indices=True) as client:
            import dataclasses
            records = [dataclasses.replace(r, ttl_seconds=0.05)
                       for r in corpus(n=30)]
            client.load_records(records)
            time.sleep(0.3)
            deleted = client.delete_record_by_ttl(Principal.controller())
            # engine-side expiry and the purge race benignly; either way
            # every record is gone from every shard afterwards
            assert deleted >= 0
            assert client.record_count() == 0

    def test_pipeline_batches_across_shards(self, client):
        records = corpus()
        client.load_records(records)
        anyone = Principal.controller()
        pipe = client.pipeline()
        pipe.read_data_by_key(anyone, records[0].key)
        pipe.read_metadata_by_usr(anyone, records[1].user)
        pipe.update_metadata_by_key(anyone, records[2].key, "SRC", "piped")
        pipe.read_data_by_key(anyone, records[3].key)
        responses = pipe.execute()
        assert responses[0] == records[0].data
        assert responses[1]
        assert responses[2] == 1
        assert responses[3] == records[3].data

    def test_ycsb_primitives(self, client):
        client.ycsb_insert("u1", {"f0": "a"})
        client.ycsb_insert("u2", {"f0": "b"})
        assert client.ycsb_read("u1") == {"f0": "a"}
        assert client.ycsb_update("u1", {"f0": "z"}) == 1
        assert client.ycsb_scan("u1", 10)  # in-client sorted key index
        pipe = client.pipeline()
        pipe.ycsb_read("u1")
        pipe.ycsb_update("u2", {"f0": "y"})
        pipe.ycsb_insert("u3", {"f0": "c"})
        assert pipe.execute() == [{"f0": "z"}, 1, None]


class TestAuditAndRecovery:
    def test_audit_trail_merges_per_shard_aofs(self, tmp_path):
        features = FeatureSet(access_control=False, monitoring=True)
        with make_client("redis", features, data_dir=str(tmp_path),
                         shards=3) as client:
            client.load_records(corpus(n=30))
            client.read_data_by_key(Principal.controller(), "k00000000")
            assert len(client.engine.aof_paths) == 3
            events = client.get_system_logs(Principal.regulator(), limit=40)
            assert events and len(events) <= 40

    def test_tail_limit_splits_exactly_across_shards(self, tmp_path):
        """The ``limit % shards`` remainder goes to the first shards, and
        a share of zero skips the shard entirely — no shard can crowd
        another out of the merged audit window."""
        features = FeatureSet(access_control=False, monitoring=True)
        with make_client("redis", features, data_dir=str(tmp_path),
                         shards=3) as client:
            client.load_records(corpus(n=60))  # plenty of entries per shard
            client.engine.flush_aof()
            regulator = Principal.regulator()
            # limit=7 over 3 shards -> shares 3, 2, 2
            events = client.get_system_logs(regulator, limit=7)
            assert len(events) == 7
            # limit=2 over 3 shards -> shares 1, 1, 0: the remainder
            # branch gives the first two shards one slot each and the
            # third shard is skipped, not given a rounding slot
            events = client.get_system_logs(regulator, limit=2)
            assert len(events) == 2

    def test_sharded_audit_archival_via_client(self, tmp_path):
        """The client archival path is shard-aware: rewrite_aof lands one
        archive per worker and the live trail stays queryable."""
        import os

        from repro.gdpr.audit import events_from_aof

        features = FeatureSet(access_control=False, monitoring=True)
        with make_client("redis", features, data_dir=str(tmp_path),
                         shards=2) as client:
            client.load_records(corpus(n=30))
            client.read_data_by_key(Principal.controller(), "k00000000")
            archive = str(tmp_path / "audit.archive")
            old, new = client.rewrite_aof(archive_path=archive)
            assert 0 < new <= old
            paths = client.audit_archive_paths(archive)
            assert len(paths) == 2
            assert all(os.path.exists(path) for path in paths)
            # archived history still parses with the per-shard tooling
            assert any(events_from_aof(path) for path in paths)
            # the client keeps serving on the compacted files
            assert client.record_count() == 30
            assert client.get_system_logs(Principal.regulator(), limit=10) is not None

    def test_worker_crash_mid_workload_recovers(self, tmp_path):
        features = FeatureSet(access_control=False, monitoring=True)
        with make_client("redis", features, data_dir=str(tmp_path),
                         shards=3) as client:
            records = corpus()
            client.load_records(records)
            # force every shard AOF to disk, then hard-kill one worker
            client.engine.flush_aof()
            client.engine._shards[0].process.kill()
            client.engine._shards[0].process.join()
            anyone = Principal.controller()
            # the whole keyspace remains reachable (dead shard replays)
            for record in records:
                assert client.read_data_by_key(anyone, record.key) == record.data
            assert client.record_count() == len(records)
