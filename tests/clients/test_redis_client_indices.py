"""Client-maintained reverse indices on Redis (the §7.2 metadata-indexing
challenge): behaviour must be identical to the scan-based client, with
index-set maintenance across every mutation path."""

import pytest

from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, RedisGDPRClient
from repro.common.clock import VirtualClock
from repro.gdpr import PersonalRecord, Principal

CTRL = Principal.controller()
PROC = Principal.processor()
REG = Principal.regulator()

CORPUS = RecordCorpusConfig(record_count=120, user_count=12, seed=21)


@pytest.fixture
def pair():
    """(indexed client, scan client) loaded with the same corpus."""
    indexed = RedisGDPRClient(FeatureSet(access_control=True), client_indices=True)
    plain = RedisGDPRClient(FeatureSet(access_control=True))
    corpus = generate_corpus(CORPUS)
    indexed.load_records(corpus)
    plain.load_records(corpus)
    yield indexed, plain
    indexed.close()
    plain.close()


def _same(indexed, plain, fn):
    got_indexed = fn(indexed)
    got_plain = fn(plain)
    if isinstance(got_indexed, list):
        assert sorted(got_indexed, key=repr) == sorted(got_plain, key=repr)
    else:
        assert got_indexed == got_plain
    return got_indexed


class TestParityWithScanClient:
    def test_reads_agree(self, pair):
        indexed, plain = pair
        for user in ("u00000", "u00005", "ghost"):
            _same(indexed, plain,
                  lambda c, u=user: c.read_data_by_usr(Principal.customer(u), u))
            _same(indexed, plain,
                  lambda c, u=user: c.read_metadata_by_usr(REG, u))
        for purpose in ("ads", "2fa", "nonexistent"):
            _same(indexed, plain, lambda c, p=purpose: c.read_data_by_pur(PROC, p))

    def test_deletes_agree(self, pair):
        indexed, plain = pair
        _same(indexed, plain, lambda c: c.delete_record_by_usr(CTRL, "u00003"))
        _same(indexed, plain, lambda c: c.delete_record_by_pur(CTRL, "ads"))
        _same(indexed, plain, lambda c: c.record_count())
        # deleted data really is unreachable through the index
        assert indexed.read_data_by_usr(Principal.customer("u00003"), "u00003") == []
        assert indexed.read_data_by_pur(PROC, "ads") == []

    def test_updates_agree_and_maintain_indices(self, pair):
        indexed, plain = pair
        _same(indexed, plain,
              lambda c: c.update_metadata_by_usr(CTRL, "u00002", "SHR", ("acme",)))
        _same(indexed, plain,
              lambda c: c.update_metadata_by_pur(CTRL, "billing", "SRC", "third-party"))
        # moving a record between users updates the usr index
        target = indexed.read_metadata_by_usr(REG, "u00002")[0][0]
        for client in pair:
            client.update_metadata_by_key(CTRL, target, "USR", "u00099")
        _same(indexed, plain,
              lambda c: c.read_metadata_by_usr(REG, "u00099"))
        assert all(k != target for k, _ in indexed.read_metadata_by_usr(REG, "u00002"))

    def test_purpose_change_moves_pur_index(self, pair):
        indexed, plain = pair
        key = indexed.read_data_by_pur(PROC, "ads")[0][0]
        for client in pair:
            client.update_metadata_by_key(CTRL, key, "PUR", ("research",))
        _same(indexed, plain, lambda c: c.read_data_by_pur(PROC, "research"))
        assert all(k != key for k, _ in indexed.read_data_by_pur(PROC, "ads"))

    def test_obj_dec_shr_reads_agree(self, pair):
        """The OBJ/DEC/SHR reverse indices must answer exactly like the
        scan-based client, including the negative OBJ query."""
        indexed, plain = pair
        corpus_values = {
            "obj": {o for r in indexed._iter_records() for o in r.objections},
            "dec": {d for r in indexed._iter_records() for d in r.decisions},
            "shr": {s for r in indexed._iter_records() for s in r.shared_with},
        }
        for purpose in sorted(corpus_values["obj"])[:3] + ["nonexistent"]:
            _same(indexed, plain, lambda c, p=purpose: c.read_data_by_obj(PROC, p))
        for decision in sorted(corpus_values["dec"])[:3] + ["nonexistent"]:
            _same(indexed, plain, lambda c, d=decision: c.read_data_by_dec(PROC, d))
        for party in sorted(corpus_values["shr"])[:3] + ["nonexistent"]:
            _same(indexed, plain, lambda c, s=party: c.read_metadata_by_shr(REG, s))

    def test_shr_group_update_moves_shr_index(self, pair):
        indexed, plain = pair
        party = sorted({s for r in indexed._iter_records()
                        for s in r.shared_with})[0]
        _same(indexed, plain,
              lambda c: c.update_metadata_by_shr(CTRL, party, "DEC", ("audit",)))
        _same(indexed, plain, lambda c: c.read_data_by_dec(PROC, "audit"))

    def test_objection_change_moves_obj_index(self, pair):
        indexed, plain = pair
        key = indexed.read_metadata_by_usr(REG, "u00001")[0][0]
        for client in pair:
            client.update_metadata_by_key(CTRL, key, "OBJ", ("marketing",))
        # the record now objects to 'marketing': the negative query drops it
        assert all(k != key for k, _ in indexed.read_data_by_obj(PROC, "marketing"))
        _same(indexed, plain, lambda c: c.read_data_by_obj(PROC, "marketing"))

    def test_deletes_unlink_obj_dec_shr_indices(self, pair):
        indexed, plain = pair
        _same(indexed, plain, lambda c: c.delete_record_by_usr(CTRL, "u00004"))
        for decision in sorted({d for r in plain._iter_records()
                                for d in r.decisions})[:2]:
            _same(indexed, plain, lambda c, d=decision: c.read_data_by_dec(PROC, d))
        member_sets = [indexed.engine.smembers(indexed._all_index())]
        remaining = {r.key for r in indexed._iter_records()}
        assert {m.decode() for m in member_sets[0]} == remaining


class TestIndexMechanics:
    def test_features_report_indexing(self):
        client = RedisGDPRClient(FeatureSet.none(), client_indices=True)
        try:
            assert client.get_system_features(REG).features["metadata_indexing"]
        finally:
            client.close()

    def test_stale_entries_cleaned_lazily_after_ttl_expiry(self):
        clock = VirtualClock()
        client = RedisGDPRClient(FeatureSet(access_control=False), clock=clock,
                                 client_indices=True)
        try:
            client.load_records([
                PersonalRecord(key="s", data="u1:x", purposes=("ads",),
                               ttl_seconds=5.0, user="u1"),
                PersonalRecord(key="l", data="u1:y", purposes=("ads",),
                               ttl_seconds=5000.0, user="u1"),
            ])
            clock.advance(60)  # 's' expires engine-side; index entry is stale
            rows = client.read_data_by_usr(Principal.customer("u1"), "u1")
            assert rows == [("l", "u1:y")]
            # the stale member was reaped during that read
            assert client.engine.smembers("midx:usr:u1") == {b"l"}
        finally:
            client.close()

    def test_index_lookup_avoids_full_scan(self):
        client = RedisGDPRClient(FeatureSet.none(), client_indices=True)
        try:
            client.load_records(generate_corpus(CORPUS))
            before = client.engine.info()["commands_processed"]
            client.read_data_by_usr(Principal.customer("u00001"), "u00001")
            commands = client.engine.info()["commands_processed"] - before
            # 1 SMEMBERS + ~10 HGETALLs, versus a 120-record SCAN+HGETALL walk
            assert commands < 40
        finally:
            client.close()

    def test_dec_and_shr_lookups_avoid_full_scan(self):
        client = RedisGDPRClient(FeatureSet.none(), client_indices=True)
        try:
            records = list(generate_corpus(CORPUS))
            client.load_records(records)
            decision = sorted({d for r in records for d in r.decisions})[0]
            matches = sum(1 for r in records if decision in r.decisions)
            before = client.engine.info()["commands_processed"]
            client.read_data_by_dec(Principal.processor(), decision)
            commands = client.engine.info()["commands_processed"] - before
            assert commands <= matches + 2  # SMEMBERS + one HGETALL per hit
            party = sorted({s for r in records for s in r.shared_with})[0]
            party_matches = sum(1 for r in records if party in r.shared_with)
            before = client.engine.info()["commands_processed"]
            client.read_metadata_by_shr(Principal.regulator(), party)
            commands = client.engine.info()["commands_processed"] - before
            assert commands <= party_matches + 2
        finally:
            client.close()

    def test_stale_obj_entries_cleaned_from_master_set(self):
        from repro.common.clock import VirtualClock as _VC
        clock = _VC()
        client = RedisGDPRClient(FeatureSet(access_control=False), clock=clock,
                                 client_indices=True)
        try:
            client.load_records([
                PersonalRecord(key="gone", data="u1:x", purposes=("ads",),
                               ttl_seconds=5.0, user="u1"),
                PersonalRecord(key="stays", data="u1:y", purposes=("ads",),
                               ttl_seconds=5000.0, user="u1"),
            ])
            clock.advance(60)  # 'gone' expires engine-side
            # neither record objects to 'marketing', so the negative query
            # fetches both master-set members and trips over the stale one
            rows = client.read_data_by_obj(Principal.processor(), "marketing")
            assert rows == [("stays", "u1:y")]
            members = client.engine.smembers(client._all_index())
            assert members == {b"stays"}  # stale master entry reaped
        finally:
            client.close()

    def test_delete_by_ttl_agrees_with_scan_client(self):
        """Expiry-indexed purge erases exactly what the EXP-field sweep
        erases (engine_ttl=False: only the EXP metadata tracks deadlines)."""
        records = [
            PersonalRecord(key=f"r{i}", data=f"u{i % 3}:d", purposes=("ads",),
                           ttl_seconds=5.0 if i % 2 == 0 else 5000.0,
                           user=f"u{i % 3}")
            for i in range(20)
        ]
        clocks = (VirtualClock(), VirtualClock())
        indexed = RedisGDPRClient(FeatureSet(access_control=False), clock=clocks[0],
                                  client_indices=True, engine_ttl=False)
        plain = RedisGDPRClient(FeatureSet(access_control=False), clock=clocks[1],
                                engine_ttl=False)
        try:
            indexed.load_records(records)
            plain.load_records(records)
            for clock in clocks:
                clock.advance(60)  # even-numbered records are now expired
            assert indexed.delete_record_by_ttl(CTRL) == \
                plain.delete_record_by_ttl(CTRL) == 10
            assert indexed.record_count() == plain.record_count() == 10
            # reverse indices dropped the purged members too
            survivors = {r.key.encode() for r in indexed._iter_records()}
            assert indexed.engine.smembers(indexed._all_index()) == survivors
        finally:
            indexed.close()
            plain.close()

    def test_delete_by_ttl_respects_extended_ttl(self):
        """A TTL extension strands the old heap entry; the purge must skip
        the record because its *current* EXP has not passed."""
        clock = VirtualClock()
        client = RedisGDPRClient(FeatureSet(access_control=False), clock=clock,
                                 client_indices=True, engine_ttl=False)
        try:
            client.load_records([
                PersonalRecord(key="ext", data="u1:x", purposes=("ads",),
                               ttl_seconds=5.0, user="u1"),
            ])
            client.update_metadata_by_key(CTRL, "ext", "TTL", 5000.0)
            clock.advance(60)  # past the original deadline, not the new one
            assert client.delete_record_by_ttl(CTRL) == 0
            assert client.read_data_by_key(Principal.customer("u1"), "ext") == "u1:x"
            clock.advance(10000)  # now past the extended deadline too
            assert client.delete_record_by_ttl(CTRL) == 1
        finally:
            client.close()

    def test_delete_by_ttl_avoids_full_scan(self):
        clock = VirtualClock()
        client = RedisGDPRClient(FeatureSet.none(), clock=clock,
                                 client_indices=True, engine_ttl=False)
        try:
            records = list(generate_corpus(CORPUS))
            client.load_records(records)
            clock.advance(1)  # nothing expired yet
            before = client.engine.info()["commands_processed"]
            client.delete_record_by_ttl(CTRL)
            commands = client.engine.info()["commands_processed"] - before
            # no due heap entries -> no per-record fetches at all, versus
            # the scan client's SCAN + 2 HGETALLs per record walk
            assert commands <= 2
        finally:
            client.close()

    def test_create_after_load_lands_in_index(self):
        client = RedisGDPRClient(FeatureSet.none(), client_indices=True)
        try:
            client.create_record(CTRL, PersonalRecord(
                key="fresh", data="u9:d", purposes=("ads",),
                ttl_seconds=60.0, user="u9",
            ))
            assert client.read_data_by_usr(Principal.customer("u9"), "u9") == [
                ("fresh", "u9:d")
            ]
        finally:
            client.close()
