"""Durable SQL client stores: WAL replay through the client boundary."""

import pytest

from repro.clients import FeatureSet, SQLGDPRClient
from repro.clients.sql_client import RECORDS_TABLE
from repro.common.errors import ConfigurationError
from repro.gdpr import PersonalRecord
from repro.minisql import Cmp


def _record(i: int) -> PersonalRecord:
    return PersonalRecord(
        key=f"k{i}", data=f"u{i}:d", purposes=("ads",),
        ttl_seconds=5000.0, user=f"u{i}",
    )


class TestDurableReopen:
    def test_state_survives_reopen(self, tmp_path):
        d = str(tmp_path)
        with SQLGDPRClient(FeatureSet.none(), data_dir=d, durable=True,
                           wal_batch_size=16) as client:
            pipe = client.pipeline()
            for i in range(20):
                pipe.ycsb_insert(f"u{i:03d}", {"field0": f"v{i}"})
            pipe.execute()
            client.load_records([_record(i) for i in range(5)])
        with SQLGDPRClient(FeatureSet.none(), data_dir=d, durable=True) as client:
            assert client.ycsb_read("u007", fields=("field0",)) == {"field0": "v7"}
            assert client.record_count() == 5

    def test_reopen_with_indexing_builds_missing_indices(self, tmp_path):
        d = str(tmp_path)
        with SQLGDPRClient(FeatureSet.none(), data_dir=d, durable=True) as client:
            client.load_records([_record(i) for i in range(10)])
        features = FeatureSet(access_control=False, metadata_indexing=True)
        with SQLGDPRClient(features, data_dir=d, durable=True) as client:
            names = {i.name for i in client.db.catalog.indices_for(RECORDS_TABLE)}
            assert "idx_usr" in names and "idx_expiry" in names
            # the freshly-built index serves queries over replayed rows
            assert "idx_usr" in client.db.explain(
                RECORDS_TABLE, Cmp("usr", "=", "u3")
            )

    def test_reopen_with_ttl_on_non_ttl_store_refuses(self, tmp_path):
        d = str(tmp_path)
        with SQLGDPRClient(FeatureSet.none(), data_dir=d, durable=True) as client:
            client.ycsb_insert("u001", {"field0": "x"})  # usertable sans expiry
        features = FeatureSet(access_control=False, timely_deletion=True)
        with SQLGDPRClient(features, data_dir=d, durable=True) as client:
            with pytest.raises(ConfigurationError):
                client.ycsb_read("u001")  # first YCSB op arms the sweeper
