"""Shared GDPRPipeline contract, parametrized over both engine stubs.

Both ``RedisGDPRClient`` and ``SQLGDPRClient`` expose ``pipeline()``
factories returning :class:`~repro.clients.base.GDPRPipeline`
implementations.  This suite runs the *same* assertions against both, so
the contract — queued futures, response ordering and shapes,
batched/unbatched equivalence, error semantics — cannot drift between
engines.  The sharded deployments run the identical assertions (their
unbatched twins stay in-process), so scatter/gather batching cannot
drift from the single-engine contract either.
"""

import pytest

from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, GDPRPipeline, ResultFuture, make_client
from repro.common.errors import GDPRError
from repro.gdpr.acl import Principal

#: (id, engine, client kwargs) — each runs the whole contract suite.
#: The tcp variants run the same sharded deployments over the socket
#: transport, so the wire framing cannot drift from the pipe contract.
CONFIGS = (
    ("redis", "redis", {}),
    ("postgres", "postgres", {}),
    ("redis-sharded", "redis", {"shards": 3}),
    ("postgres-sharded", "postgres", {"shards": 3}),
    ("redis-sharded-tcp", "redis", {"shards": 3, "transport": "tcp"}),
    ("postgres-sharded-tcp", "postgres", {"shards": 3, "transport": "tcp"}),
)
N_ROWS = 30


@pytest.fixture(params=CONFIGS, ids=[config[0] for config in CONFIGS])
def client(request):
    _, engine, kwargs = request.param
    c = make_client(engine, FeatureSet.none(), **kwargs)
    for i in range(N_ROWS):
        c.ycsb_insert(f"user{i:04d}", {"field0": f"v{i}", "field1": "x"})
    yield c
    c.close()


class TestPipelineContract:
    def test_pipeline_is_a_gdpr_pipeline(self, client):
        pipe = client.pipeline()
        assert isinstance(pipe, GDPRPipeline)
        # the batchable surface covers the YCSB primitives and the hot
        # GDPR query families on every engine
        assert {"read", "update", "insert"} <= client.PIPELINE_OP_NAMES
        assert {
            "read-data-by-key", "read-data-by-usr", "read-metadata-by-key",
            "read-metadata-by-usr", "delete-record-by-ttl",
            "update-metadata-by-key", "update-metadata-by-usr",
        } <= client.PIPELINE_OP_NAMES

    def test_queueing_returns_pending_futures_and_counts(self, client):
        pipe = client.pipeline()
        assert len(pipe) == 0
        futures = [
            pipe.ycsb_read("user0001"),
            pipe.ycsb_update("user0002", {"field0": "new"}),
            pipe.ycsb_insert("fresh0001", {"field0": "a", "field1": "b"}),
        ]
        assert all(isinstance(f, ResultFuture) and f.pending for f in futures)
        assert len(pipe) == 3

    def test_empty_execute_returns_empty(self, client):
        assert client.pipeline().execute() == []

    def test_responses_in_queue_order_matching_unbatched(self, client):
        # Unbatched reference run against an identically-loaded twin.
        twin = make_client(client.engine_name, FeatureSet.none())
        try:
            for i in range(N_ROWS):
                twin.ycsb_insert(f"user{i:04d}", {"field0": f"v{i}", "field1": "x"})
            expected = [
                twin.ycsb_read("user0003"),
                twin.ycsb_update("user0004", {"field0": "patched"}),
                twin.ycsb_read("user0004"),
                twin.ycsb_update("user9999", {"field0": "nope"}),  # missing -> 0
                twin.ycsb_read("user9999"),                        # missing -> None
            ]
            twin.ycsb_insert("fresh0002", {"field0": "f", "field1": "g"})
            expected.append(None)  # insert's response slot
            expected.append(twin.ycsb_read("fresh0002"))

            pipe = client.pipeline()
            pipe.ycsb_read("user0003")
            pipe.ycsb_update("user0004", {"field0": "patched"})
            pipe.ycsb_read("user0004")
            pipe.ycsb_update("user9999", {"field0": "nope"})
            pipe.ycsb_read("user9999")
            pipe.ycsb_insert("fresh0002", {"field0": "f", "field1": "g"})
            pipe.ycsb_read("fresh0002")  # sees the insert from its own batch
            responses = pipe.execute()
        finally:
            twin.close()
        assert len(responses) == 7
        for got, want in zip(responses, expected):
            if isinstance(want, dict):
                # engines may carry engine-specific extra columns (e.g. the
                # SQL schema's key column); the written fields must agree
                assert {k: got[k] for k in ("field0", "field1")} == \
                       {k: want[k] for k in ("field0", "field1")}
            else:
                assert got == want

    def test_projection_filter_applies(self, client):
        pipe = client.pipeline()
        pipe.ycsb_read("user0005", fields=("field1",))
        (response,) = pipe.execute()
        assert response == {"field1": "x"}

    def test_execute_drains_the_queue(self, client):
        pipe = client.pipeline()
        pipe.ycsb_read("user0000")
        pipe.execute()
        assert len(pipe) == 0
        assert pipe.execute() == []  # reusable

    def test_batched_effects_visible_unbatched(self, client):
        pipe = client.pipeline()
        pipe.ycsb_insert("fresh0003", {"field0": "q", "field1": "r"})
        pipe.ycsb_update("user0006", {"field1": "patched"})
        pipe.execute()
        assert client.ycsb_read("fresh0003")["field0"] == "q"
        assert client.ycsb_read("user0006")["field1"] == "patched"

    def test_scan_sees_pipelined_inserts(self, client):
        pipe = client.pipeline()
        for i in range(5):
            pipe.ycsb_insert(f"zzz{i:04d}", {"field0": "s", "field1": "t"})
        pipe.execute()
        rows = client.ycsb_scan("zzz0000", 5)
        assert len(rows) == 5

    def test_gdpr_batch_matches_unbatched(self, client):
        """The GDPR query surface batches on both engines: a pipelined
        run must return exactly what the single-op methods return, and
        its write effects must be equivalent."""
        corpus = RecordCorpusConfig(record_count=40, user_count=6)
        records = list(generate_corpus(corpus))
        principal = Principal.controller()
        twin = make_client(client.engine_name, FeatureSet.none())
        try:
            client.load_records(records)
            twin.load_records(records)
            purpose = records[2].purposes[0]
            expected = [
                twin.read_data_by_key(principal, records[3].key),
                twin.read_data_by_usr(principal, records[0].user),
                twin.read_data_by_pur(principal, purpose),
                twin.read_metadata_by_key(principal, records[5].key),
                twin.read_metadata_by_usr(principal, records[1].user),
                twin.update_metadata_by_key(principal, records[7].key, "SRC", "batched"),
                twin.update_metadata_by_usr(principal, records[1].user, "SRC", "bulk"),
                twin.delete_record_by_ttl(principal),
                twin.read_metadata_by_key(principal, records[7].key),
            ]
            pipe = client.pipeline()
            pipe.read_data_by_key(principal, records[3].key)
            pipe.read_data_by_usr(principal, records[0].user)
            pipe.read_data_by_pur(principal, purpose)
            pipe.read_metadata_by_key(principal, records[5].key)
            pipe.read_metadata_by_usr(principal, records[1].user)
            pipe.update_metadata_by_key(principal, records[7].key, "SRC", "batched")
            pipe.update_metadata_by_usr(principal, records[1].user, "SRC", "bulk")
            pipe.delete_record_by_ttl(principal)
            pipe.read_metadata_by_key(principal, records[7].key)  # sees the update
            responses = pipe.execute()
        finally:
            twin.close()
        assert len(responses) == len(expected)
        for got, want in zip(responses, expected):
            if isinstance(want, list):
                assert sorted(got) == sorted(want)  # scan order may differ
            else:
                assert got == want
        # the batched writes landed: slot 8 re-read reflects the updates
        assert responses[8]["SRC"] in ("batched", "bulk")

    def test_gdpr_batch_acl_denial_captured_per_slot(self, client):
        """An access-control denial inside a batch follows the pipeline
        error contract: later slots still execute, then the first error
        is raised."""
        corpus = RecordCorpusConfig(record_count=10, user_count=3)
        records = list(generate_corpus(corpus))
        acl_client = make_client(client.engine_name, FeatureSet(access_control=True))
        try:
            acl_client.load_records(records)
            stranger = Principal.customer("nobody-else")
            pipe = acl_client.pipeline()
            pipe.read_data_by_key(stranger, records[0].key)  # denied
            pipe.read_metadata_by_usr(Principal.regulator(), records[1].user)
            with pytest.raises(GDPRError):
                pipe.execute()
            # the regulator's slot still executed (batch completed)
            ok = acl_client.pipeline()
            ok.read_metadata_by_usr(Principal.regulator(), records[1].user)
            assert ok.execute()[0] == acl_client.read_metadata_by_usr(
                Principal.regulator(), records[1].user
            )
        finally:
            acl_client.close()

    def test_error_semantics_batch_completes_then_raises(self, client):
        """Contract: every command executes, failures are captured per
        slot, the first is raised after the batch, the queue drains."""
        # engine-appropriate poison op: each engine fails differently, but
        # the contract around the failure must be identical
        pipe = client.pipeline()
        pipe.ycsb_update("aaa0000", {"field0": "before-error"})  # missing -> 0, fine
        if client.engine_name == "redis":
            # a non-hash value at the YCSB key makes HGETALL blow up
            client.engine.set("user:poison", b"not-a-hash")
            pipe.ycsb_read("poison")
        else:
            # duplicate primary key makes the INSERT blow up
            pipe.ycsb_insert("user0000", {"field0": "dup", "field1": "dup"})
        pipe.ycsb_insert("after0001", {"field0": "late", "field1": "op"})
        with pytest.raises(Exception):
            pipe.execute()
        # the queue drained and the pipeline is reusable
        assert len(pipe) == 0
        assert pipe.execute() == []
        # commands after the failing slot still executed
        assert client.ycsb_read("after0001", fields=("field0",)) == {"field0": "late"}
