"""Concurrency stress: many threads hammering the clients must never
corrupt state, deadlock, or raise unexpected errors."""

import threading

import pytest

from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, make_client
from repro.common.errors import ReproError
from repro.gdpr import PersonalRecord, Principal

CTRL = Principal.controller()
PROC = Principal.processor()
REG = Principal.regulator()


def _hammer(threads, fn, rounds):
    errors = []

    def worker(tid):
        try:
            for i in range(rounds):
                fn(tid, i)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return errors


@pytest.mark.parametrize("engine", ["redis", "postgres"])
class TestConcurrentClients:
    def test_mixed_gdpr_traffic(self, engine):
        client = make_client(engine, FeatureSet.full(metadata_indexing=(engine == "postgres")))
        try:
            client.load_records(
                generate_corpus(RecordCorpusConfig(record_count=200, user_count=20))
            )

            def op(tid, i):
                kind = (tid + i) % 5
                key = f"k{(i * 7 + tid) % 200:08d}"
                user = f"u{(i + tid) % 20:05d}"
                if kind == 0:
                    client.read_data_by_key(PROC, key)
                elif kind == 1:
                    client.read_metadata_by_usr(REG, user)
                elif kind == 2:
                    client.update_metadata_by_usr(CTRL, user, "SHR", ("acme",))
                elif kind == 3:
                    client.delete_record_by_key(
                        Principal.customer(f"u{int(key[1:]) % 20:05d}"), key)
                else:
                    client.create_record(CTRL, PersonalRecord(
                        key=f"new-{tid}-{i}", data=f"{user}:fresh",
                        purposes=("ads",), ttl_seconds=600.0, user=user,
                    ))

            errors = _hammer(6, op, 60)
            assert errors == []
            # Engine is still coherent afterwards.
            assert client.record_count() >= 0
            assert client.get_system_features(REG).features
        finally:
            client.close()

    def test_concurrent_inserts_unique_keys(self, engine):
        client = make_client(engine, FeatureSet.none())
        try:
            def op(tid, i):
                client.ycsb_insert(f"user{tid:02d}{i:06d}", {"field0": "x"})

            errors = _hammer(8, op, 100)
            assert errors == []
            rows = client.ycsb_scan("user", 1000)
            assert len(rows) == 800
        finally:
            client.close()

    def test_readers_with_concurrent_deleter(self, engine):
        """Readers racing a deleter see either the record or nothing —
        never a partial record (the phantom-recreation regression test)."""
        client = make_client(engine, FeatureSet(access_control=False))
        try:
            client.load_records(
                generate_corpus(RecordCorpusConfig(record_count=100, user_count=10))
            )
            bad = []

            def reader(tid, i):
                rows = client.read_data_by_usr(PROC, f"u{i % 10:05d}")
                for _, data in rows:
                    if ":" not in data:
                        bad.append(data)

            def deleter(tid, i):
                client.delete_record_by_key(CTRL, f"k{(i * 3) % 100:08d}")
                if i % 10 == 0:
                    client.update_metadata_by_usr(CTRL, f"u{i % 10:05d}", "TTL", 900.0)

            errors = []
            threads = (
                [threading.Thread(target=lambda: [reader(0, i) for i in range(40)])]
                + [threading.Thread(target=lambda: [deleter(1, i) for i in range(40)])]
            )
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert bad == []
            assert errors == []
        finally:
            client.close()


class TestEngineThreadSafety:
    def test_minikv_concurrent_commands(self):
        from repro.minikv import MiniKV

        kv = MiniKV()

        def op(tid, i):
            key = f"t{tid}-k{i % 20}"
            kv.set(key, b"v", ttl=100.0 if i % 3 == 0 else None)
            kv.get(key)
            if i % 5 == 0:
                kv.delete(key)

        errors = _hammer(8, op, 200)
        assert errors == []
        kv.close()

    def test_minisql_concurrent_statements(self):
        from repro.minisql import Cmp, Column, Database, INTEGER, TEXT

        db = Database()
        db.create_table(
            "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
            primary_key="id",
        )

        def op(tid, i):
            row_id = tid * 1000 + i
            db.insert("t", {"id": row_id, "v": "a"})
            db.update("t", {"v": "b"}, Cmp("id", "=", row_id))
            db.select("t", Cmp("id", "=", row_id))
            if i % 4 == 0:
                db.delete("t", Cmp("id", "=", row_id))

        errors = _hammer(8, op, 100)
        assert errors == []
        db.close()
