"""Cross-module integration tests: full GDPR lifecycles on both engines."""

import pytest

from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, make_client
from repro.common.clock import VirtualClock
from repro.gdpr import PersonalRecord, Principal, breach_report


@pytest.mark.parametrize("engine", ["redis", "postgres"])
class TestRightToBeForgotten:
    """G 17 end to end: erase, verify, and prove via the audit trail."""

    def test_full_erasure_lifecycle(self, engine):
        client = make_client(engine, FeatureSet.full(metadata_indexing=(engine == "postgres")))
        try:
            client.load_records(generate_corpus(RecordCorpusConfig(record_count=100, user_count=10)))
            target = Principal.customer("u00003")
            regulator = Principal.regulator()

            owned = client.read_data_by_usr(target, "u00003")
            assert len(owned) == 10

            # The customer exercises G 17 on all their records.
            deleted = sum(
                client.delete_record_by_key(target, key) for key, _ in owned
            )
            assert deleted == 10

            # Erasure is externally verifiable (G 5(2) accountability).
            assert client.read_data_by_usr(target, "u00003") == []
            for key, _ in owned:
                assert client.verify_deletion(regulator, key)

            # And the audit trail shows the deletions happened.
            events = client.get_system_logs(regulator, limit=200)
            delete_ops = [e for e in events if e.operation in ("DEL", "DELETE")]
            assert delete_ops
        finally:
            client.close()


@pytest.mark.parametrize("engine", ["redis", "postgres"])
class TestTimelyDeletionLifecycle:
    """G 5(1e): expiry-driven erasure with a virtual clock."""

    def test_expiry_prunes_without_explicit_deletes(self, engine):
        clock = VirtualClock()
        client = make_client(
            engine,
            FeatureSet(timely_deletion=True, access_control=True),
            clock=clock,
        )
        try:
            corpus = RecordCorpusConfig(
                record_count=50, user_count=5,
                short_ttl_fraction=0.5, short_ttl_seconds=30.0,
            )
            client.load_records(generate_corpus(corpus))
            clock.advance(60)
            # Any controller activity triggers engine-side timely deletion
            # (strict cycle on minikv, sweeper daemon on minisql).
            client.delete_record_by_ttl(Principal.controller())
            remaining = client.record_count()
            assert remaining < 50
            # only long-TTL records remain
            rows = client.read_metadata_by_usr(Principal.regulator(), "u00000")
            assert all(md["TTL"] > 30.0 for _, md in rows)
        finally:
            client.close()


@pytest.mark.parametrize("engine", ["redis", "postgres"])
class TestConsentAndObjectionFlow:
    """G 21 / G 28(3c): objections immediately bind processors."""

    def test_objection_blocks_processor(self, engine):
        client = make_client(engine, FeatureSet(access_control=True))
        try:
            record = PersonalRecord(
                key="r1", data="u1:secret", purposes=("ads",),
                ttl_seconds=3600.0, user="u1",
            )
            client.create_record(Principal.controller(), record)
            scoped = Principal.processor("ads")
            assert client.read_data_by_key(scoped, "r1") == "u1:secret"

            # The customer objects to 'ads' (G 21).
            client.update_metadata_by_key(Principal.customer("u1"), "r1", "OBJ", ("ads",))

            from repro.common.errors import AccessDeniedError
            with pytest.raises(AccessDeniedError):
                client.read_data_by_key(scoped, "r1")
            # And purpose-conditioned reads that respect objections skip it.
            assert ("r1",) not in [k for k, _ in client.read_data_by_obj(scoped, "ads")]
        finally:
            client.close()


@pytest.mark.parametrize("engine", ["redis", "postgres"])
class TestBreachInvestigation:
    """G 33/34: regulator reconstructs exposure from the audit trail."""

    def test_breach_report_from_logs(self, engine):
        client = make_client(engine, FeatureSet(monitoring=True, access_control=True))
        try:
            client.load_records(generate_corpus(RecordCorpusConfig(record_count=30, user_count=3)))
            processor = Principal.processor()
            for i in range(5):
                client.read_data_by_key(processor, f"k{i:08d}")
            events = client.get_system_logs(Principal.regulator(), limit=500)
            report = breach_report(events, affected_users={"u00000", "u00001"})
            assert report["events_in_window"] > 0
            assert report["read_events_in_window"] > 0
            assert report["approximate_affected_users"] == 2
        finally:
            client.close()


class TestCrashRecoveryEndToEnd:
    def test_redis_records_survive_restart(self, tmp_path):
        features = FeatureSet(monitoring=True, access_control=True)
        data_dir = str(tmp_path)
        client = make_client("redis", features, data_dir=data_dir)
        client.load_records(generate_corpus(RecordCorpusConfig(record_count=20, user_count=2)))
        client.engine._aof.flush()
        client.engine.close()  # crash without graceful client close

        revived = make_client("redis", features, data_dir=data_dir)
        try:
            assert revived.record_count() == 20
            assert revived.read_data_by_key(Principal.processor(), "k00000007") is not None
        finally:
            revived.close()


class TestComplianceScore:
    def test_score_ordering_matches_paper_narrative(self):
        """PostgreSQL (full features + indices) outscored Redis, which lacks
        native metadata indexing — Table 1 through the features lens."""
        redis = make_client("redis", FeatureSet.full())
        pg = make_client("postgres", FeatureSet.full(metadata_indexing=True))
        try:
            reg = Principal.regulator()
            redis_score = redis.get_system_features(reg).score()
            pg_score = pg.get_system_features(reg).score()
            assert pg_score == 1.0
            assert redis_score < pg_score
        finally:
            redis.close()
            pg.close()
