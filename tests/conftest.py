"""Shared test plumbing: a per-test wall-clock deadline marker.

The asyncio suites (``tests/common/test_asyncserve.py``, the futures
coalescing tests) drive real event loops and real sockets; a bug that
parks an event loop or loses a wakeup would otherwise hang the whole
tier-1 run until the CI job timeout.  ``@pytest.mark.deadline(seconds)``
arms a ``SIGALRM``-based timer around the test body so a stuck loop
fails fast, with a message naming the budget instead of a 30-minute
job kill.

The timer is POSIX-only and only meaningful from the main thread (where
Python delivers signals); elsewhere the marker degrades to a no-op
rather than skipping the test — the assertions still run, only the
hang protection is absent.  ``pytest-timeout`` would provide the same
service, but the test environment is stdlib-only by constraint.
"""

from __future__ import annotations

import signal
import threading

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "deadline(seconds): fail the test if its wall-clock runtime "
        "exceeds the budget (SIGALRM; POSIX main thread only)",
    )


@pytest.fixture(autouse=True)
def _deadline(request):
    marker = request.node.get_closest_marker("deadline")
    if marker is None:
        yield
        return
    seconds = float(marker.args[0])
    usable = (
        hasattr(signal, "SIGALRM")
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def on_alarm(_signum, _frame):
        raise TimeoutError(
            f"test exceeded its {seconds:g}s deadline "
            "(stuck event loop or lost wakeup?)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
