"""ShardedMiniKV: routing, scatter/gather batches, per-shard AOF recovery.

The contract under test is docs/sharding.md: the sharded front exposes
the engine command surface unchanged, per-key operations stay on one
worker, cross-key operations merge per-shard results, and a worker that
dies is respawned with its shard rebuilt from its own AOF while the
other shards keep serving.
"""

import os

import pytest

from repro.common.errors import ConfigurationError, WrongTypeError
from repro.minikv import (
    MiniKV,
    MiniKVConfig,
    ShardedMiniKV,
    open_minikv,
    shard_aof_path,
)


def sharded(tmp_path=None, shards=3, **overrides):
    config = MiniKVConfig(
        shards=shards,
        aof_path=(str(tmp_path / "kv.aof") if tmp_path is not None else None),
        **overrides,
    )
    return ShardedMiniKV(config)


class TestFactoryAndConfig:
    def test_open_minikv_default_is_in_process(self):
        with open_minikv(MiniKVConfig()) as kv:
            assert isinstance(kv, MiniKV)

    def test_open_minikv_sharded(self):
        with open_minikv(MiniKVConfig(shards=2)) as kv:
            assert isinstance(kv, ShardedMiniKV)
            assert kv.shard_count == 2

    def test_engine_rejects_sharded_config(self):
        with pytest.raises(ConfigurationError):
            MiniKV(MiniKVConfig(shards=2))

    def test_custom_clock_requires_one_shard(self):
        from repro.common.clock import VirtualClock

        with pytest.raises(ConfigurationError):
            open_minikv(MiniKVConfig(shards=2), clock=VirtualClock())

    def test_invalid_shard_counts_rejected_everywhere(self):
        for shards in (0, -1):
            with pytest.raises(ConfigurationError):
                open_minikv(MiniKVConfig(shards=shards))
            with pytest.raises(ConfigurationError):
                MiniKV(MiniKVConfig(shards=shards))
            with pytest.raises(ConfigurationError):
                ShardedMiniKV(MiniKVConfig(shards=shards))


class TestRouting:
    def test_commands_route_and_merge(self):
        with sharded() as kv:
            for i in range(60):
                kv.set(f"k{i}", b"v%d" % i)
            assert kv.get("k17") == b"v17"
            assert kv.exists("k0") and not kv.exists("nope")
            assert kv.dbsize() == 60
            assert sorted(kv.keys()) == sorted(f"k{i}" for i in range(60))
            assert kv.delete("k1", "k2", "k3", "nope") == 3
            assert kv.dbsize() == 57
            info = kv.info()
            assert info["shards"] == 3
            assert sum(info["keys_per_shard"]) == info["keys"] == 57
            # keys actually spread across workers (crc32 is uniform enough
            # that 60 keys cannot all land on one of 3 shards)
            assert all(count > 0 for count in info["keys_per_shard"])

    def test_hash_and_set_commands(self):
        with sharded() as kv:
            kv.hmset("h", {"a": b"1", "b": b"2"})
            assert kv.hget("h", "a") == b"1"
            assert kv.hgetall("h") == {"a": b"1", "b": b"2"}
            assert kv.hdel("h", "a") == 1
            kv.sadd("s", b"x", b"y")
            assert kv.smembers("s") == {b"x", b"y"}
            assert kv.sismember("s", b"x")
            assert kv.srem("s", b"x") == 1

    def test_engine_errors_cross_the_process_boundary(self):
        with sharded() as kv:
            kv.set("str", b"plain")
            with pytest.raises(WrongTypeError):
                kv.hgetall("str")

    def test_scan_traverses_every_shard_exactly_once(self):
        with sharded() as kv:
            expected = {f"k{i}" for i in range(100)}
            for key in expected:
                kv.set(key, b"v")
            seen = []
            cursor = 0
            while True:
                cursor, batch = kv.scan(cursor, count=9)
                seen.extend(batch)
                if cursor == 0:
                    break
            assert sorted(seen) == sorted(expected)  # no dupes, no misses

    def test_scan_match_and_flushall(self):
        with sharded() as kv:
            for i in range(20):
                kv.set(f"rec:{i}", b"r")
                kv.set(f"usr:{i}", b"u")
            matched = []
            cursor = 0
            while True:
                cursor, batch = kv.scan(cursor, match="rec:*", count=7)
                matched.extend(batch)
                if cursor == 0:
                    break
            assert len(matched) == 20
            kv.flushall()
            assert kv.dbsize() == 0 and kv.randomkey() is None

    def test_scan_continues_across_restart_shard_mid_iteration(self, tmp_path):
        """A composite cursor stays valid across a deliberate worker
        bounce: shards not yet entered are traversed by the fresh worker
        (which replayed its AOF), and the union is still exact."""
        config = MiniKVConfig(shards=3, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            expected = {f"k{i}" for i in range(90)}
            for key in expected:
                kv.set(key, b"v")
            seen = []
            cursor, batch = kv.scan(0, count=7)  # cursor now inside shard 0
            seen.extend(batch)
            assert cursor != 0
            # bounce a shard the traversal has not reached yet — and the
            # one currently mid-traversal is untouched, so its snapshot
            # generation survives
            kv.restart_shard(2)
            while cursor != 0:
                cursor, batch = kv.scan(cursor, count=7)
                seen.extend(batch)
            assert sorted(seen) == sorted(expected)  # no dupes, no misses

    def test_scan_survives_restart_of_inflight_shard(self, tmp_path):
        """Bouncing the shard the cursor is currently inside degrades
        gracefully: the fresh worker re-snapshots at the cursor's
        generation and the traversal still terminates with every durable
        key of the *other* shards intact."""
        config = MiniKVConfig(shards=2, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            expected = {f"k{i}" for i in range(40)}
            for key in expected:
                kv.set(key, b"v")
            seen = []
            cursor, batch = kv.scan(0, count=5)  # mid-shard-0
            seen.extend(batch)
            kv.restart_shard(0)  # graceful: flushes + replays shard 0
            rounds = 0
            while cursor != 0:
                cursor, batch = kv.scan(cursor, count=5)
                seen.extend(batch)
                rounds += 1
                assert rounds < 100  # the traversal must terminate
            # every key still exists (restart lost nothing durable)...
            assert sorted(kv.keys()) == sorted(expected)
            # ...and the traversal covered shard 1 completely
            shard1 = {k for k in expected if kv._shard_index(k) == 1}
            assert shard1 <= set(seen)

    def test_ttl_commands_and_purge_fan_out(self):
        with sharded() as kv:
            for i in range(30):
                kv.set(f"k{i}", b"v")
                kv.expireat(f"k{i}", -1.0)  # already expired, every shard
            kv.set("keeper", b"v")
            expired = kv.purge_expired()
            assert sorted(expired) == sorted(f"k{i}" for i in range(30))
            assert kv.keys() == ["keeper"]
            assert kv.ttl("keeper") == -1.0
            assert kv.ttl("gone") == -2.0


class TestShardedPipeline:
    def test_batch_matches_unsharded_results(self):
        with sharded() as kv, MiniKV() as plain:
            for engine in (kv, plain):
                pipe = engine.pipeline()
                for i in range(40):
                    pipe.set(f"k{i}", b"v%d" % i)
                pipe.hmset("h", {"f": b"1"})
                pipe.get("k5")
                pipe.delete("k0", "k1", "missing")
                pipe.hgetall("h")
                pipe.exists("k2")
                engine.results = pipe.execute()
            assert kv.results == plain.results

    def test_error_captured_per_slot(self):
        with sharded() as kv:
            kv.set("str", b"x")
            pipe = kv.pipeline()
            pipe.get("str")
            pipe.hget("str", "f")  # wrong type
            pipe.set("ok", b"fine")
            results = pipe.execute(raise_on_error=False)
            assert results[0] == b"x"
            assert isinstance(results[1], WrongTypeError)
            assert kv.get("ok") == b"fine"  # batch did not stop at the error
            with pytest.raises(WrongTypeError):
                kv.pipeline().hget("str", "f").execute()

    def test_queue_phase_error_captured_per_slot(self):
        """An arity error in one queued command fills its slot and leaves
        the rest of the batch — on every shard — intact."""
        with sharded() as kv:
            pipe = kv.pipeline()
            pipe.set("a", b"1")
            pipe.expire("b")  # missing ttl argument -> TypeError in worker
            pipe.set("c", b"3")
            results = pipe.execute(raise_on_error=False)
            assert results[0] is None
            assert isinstance(results[1], TypeError)
            assert results[2] is None
            assert kv.get("a") == b"1" and kv.get("c") == b"3"

    def test_queue_methods_accept_keywords_like_engine_pipeline(self):
        with sharded() as kv:
            pipe = kv.pipeline()
            pipe.set("a", b"1", ttl=3600.0)  # the engine Pipeline form
            pipe.ttl("a")
            results = pipe.execute()
            assert results[0] is None and 0 < results[1] <= 3600.0

    def test_len_counts_queued_commands(self):
        with sharded() as kv:
            pipe = kv.pipeline()
            assert len(pipe) == 0
            pipe.set("a", b"1")
            pipe.delete("a", "b", "c")  # multi-shard, still one slot
            assert len(pipe) == 2
            assert pipe.execute() == [None, 1]
            assert pipe.execute() == []  # queue drained, object reusable


class TestRecovery:
    def test_cold_restart_replays_every_shard(self, tmp_path):
        config = MiniKVConfig(shards=3, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always", aof_batch_size=16)
        with ShardedMiniKV(config) as kv:
            pipe = kv.pipeline()
            for i in range(90):
                pipe.set(f"k{i}", b"v%d" % i)
            pipe.execute()
            kv.hmset("h", {"a": b"1"})
            for index, path in enumerate(kv.aof_paths):
                assert path == shard_aof_path(config.aof_path, index)
                assert os.path.exists(path)
        with ShardedMiniKV(config) as kv:
            assert kv.dbsize() == 91
            assert kv.get("k42") == b"v42"
            assert kv.hgetall("h") == {"a": b"1"}

    def test_killed_worker_respawns_and_replays_mid_run(self, tmp_path):
        """Kill a worker between batches: the router must respawn it, the
        replacement must rebuild the shard from its own AOF, and routing
        (point ops and scatter/gather batches) must resume seamlessly."""
        config = MiniKVConfig(shards=3, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            pipe = kv.pipeline()
            for i in range(60):
                pipe.set(f"k{i}", b"v%d" % i)
            pipe.execute()
            victim = kv._shards[1]
            victim_pid = victim.process.pid
            victim.process.kill()
            victim.process.join()
            # every durable key is still readable — including the dead
            # worker's shard, transparently rebuilt from its AOF
            for i in range(60):
                assert kv.get(f"k{i}") == b"v%d" % i
            assert kv._shards[1].process.pid != victim_pid
            # scatter/gather across all shards works on the new worker
            pipe = kv.pipeline()
            for i in range(60, 90):
                pipe.set(f"k{i}", b"v%d" % i)
            pipe.execute()
            assert kv.dbsize() == 90

    def test_kill_during_scatter_gather_batch(self, tmp_path):
        """A worker death detected *inside* a batch exchange: the gather
        respawns the shard, re-sends its sub-batch, and the batch still
        returns a full, ordered result set."""
        config = MiniKVConfig(shards=3, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            pipe = kv.pipeline()
            for i in range(30):
                pipe.set(f"k{i}", b"v%d" % i)
            pipe.execute()
            kv._shards[2].process.kill()
            kv._shards[2].process.join()
            # this batch's scatter hits the dead pipe mid-flight
            pipe = kv.pipeline()
            for i in range(30):
                pipe.get(f"k{i}")
            results = pipe.execute()
            assert results == [b"v%d" % i for i in range(30)]

    def test_deliberate_restart_shard(self, tmp_path):
        config = MiniKVConfig(shards=2, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            kv.set("a", b"1")
            kv.set("b", b"2")
            for index in range(kv.shard_count):
                kv.restart_shard(index)
            assert kv.get("a") == b"1" and kv.get("b") == b"2"

    def test_deliberate_restart_flushes_everysec_buffer(self, tmp_path):
        """restart_shard is a *graceful* bounce: under fsync='everysec'
        (the client default) acknowledged writes still sitting in the
        AOF buffer must be flushed before the worker goes down."""
        config = MiniKVConfig(shards=2, aof_path=str(tmp_path / "kv.aof"),
                              fsync="everysec")
        with ShardedMiniKV(config) as kv:
            for i in range(20):
                kv.set(f"k{i}", b"v%d" % i)
            for index in range(kv.shard_count):
                kv.restart_shard(index)
            assert kv.dbsize() == 20
            assert all(kv.get(f"k{i}") == b"v%d" % i for i in range(20))

    def test_crash_only_loses_unflushed_tail_not_other_shards(self, tmp_path):
        """fsync='always' acks are durable per shard; killing one worker
        never affects the other shards' data."""
        config = MiniKVConfig(shards=2, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            for i in range(40):
                kv.set(f"k{i}", b"v%d" % i)
            before = {key: kv.get(key) for key in kv.keys()}
            kv._shards[0].process.kill()
            kv._shards[0].process.join()
            after = {key: kv.get(key) for key in kv.keys()}
            assert after == before

    def test_commands_after_close_fail_loudly(self):
        """close() is final: no silent worker resurrection against an
        empty keyspace, no leaked daemon processes."""
        import multiprocessing

        from repro.minikv.sharded import ShardConnectionError

        kv = sharded(shards=2)
        kv.set("a", b"1")
        kv.close()
        with pytest.raises(ShardConnectionError):
            kv.get("a")
        with pytest.raises(ShardConnectionError):
            kv.dbsize()
        with pytest.raises(ShardConnectionError):
            kv.pipeline().set("b", b"2").execute()
        assert not [
            p for p in multiprocessing.active_children()
            if p.name.startswith("minikv-shard-")
        ]

    def test_encrypted_shard_aofs_replay(self, tmp_path):
        config = MiniKVConfig(shards=2, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always", encryption_at_rest=True)
        with ShardedMiniKV(config) as kv:
            kv.set("secret", b"payload")
            kv._shards[kv._shard_index("secret")].process.kill()
            assert kv.get("secret") == b"payload"  # respawn decrypts + replays
        with ShardedMiniKV(config) as kv:
            assert kv.get("secret") == b"payload"
