"""AOF framing, fsync policies, replay, crash tolerance, encryption."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.common.errors import AOFCorruptError, ConfigurationError
from repro.crypto.luks import FileCipher
from repro.minikv import MiniKV, MiniKVConfig
from repro.minikv.aof import AOFWriter, decode_entries, encode_entry, load_aof


class TestFraming:
    def test_roundtrip_single(self):
        entry = [b"SET", b"key", b"value"]
        assert list(decode_entries(encode_entry(entry))) == [entry]

    def test_roundtrip_many(self):
        entries = [[b"SET", b"k", b"v"], [b"DEL", b"k"], [b"FLUSHALL"]]
        blob = b"".join(encode_entry(e) for e in entries)
        assert list(decode_entries(blob)) == entries

    def test_binary_safe_values(self):
        entry = [b"SET", b"k", bytes(range(256))]
        assert list(decode_entries(encode_entry(entry))) == [entry]

    def test_torn_trailing_entry_skipped(self):
        good = encode_entry([b"SET", b"k", b"v"])
        torn = encode_entry([b"SET", b"k2", b"w"])[:-4]
        assert list(decode_entries(good + torn)) == [[b"SET", b"k", b"v"]]

    def test_garbage_prefix_rejected(self):
        with pytest.raises(AOFCorruptError):
            list(decode_entries(b"not-an-entry"))

    @given(st.lists(st.lists(st.binary(max_size=30), max_size=5), max_size=10))
    @settings(max_examples=50)
    def test_roundtrip_property(self, entries):
        blob = b"".join(encode_entry(e) for e in entries)
        assert list(decode_entries(blob)) == entries


class TestAOFWriter:
    def test_unknown_fsync_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            AOFWriter(str(tmp_path / "x.aof"), fsync="sometimes")

    def test_always_policy_flushes_immediately(self, tmp_path):
        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="always")
        writer.append([b"SET", b"k", b"v"])
        assert os.path.getsize(path) > 0
        writer.close()

    def test_everysec_policy_batches(self, tmp_path):
        clock = VirtualClock()
        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="everysec", clock=clock)
        writer.append([b"SET", b"k", b"v"])
        assert os.path.getsize(path) == 0  # still buffered
        clock.advance(1.1)
        writer.append([b"SET", b"k2", b"v"])
        assert os.path.getsize(path) > 0  # the window flushed
        writer.close()

    def test_should_log_reads_only_when_enabled(self, tmp_path):
        writer = AOFWriter(str(tmp_path / "a.aof"), log_reads=False)
        assert writer.should_log("SET")
        assert not writer.should_log("GET")
        writer.log_reads = True
        assert writer.should_log("GET")
        writer.close()

    def test_size_includes_buffer(self, tmp_path):
        clock = VirtualClock()
        writer = AOFWriter(str(tmp_path / "a.aof"), fsync="everysec", clock=clock)
        writer.append([b"SET", b"k", b"v" * 100])
        assert writer.size_bytes() > 100
        writer.close()

    def test_entries_logged_counter(self, tmp_path):
        writer = AOFWriter(str(tmp_path / "a.aof"), fsync="always")
        for i in range(5):
            writer.append([b"SET", f"k{i}".encode(), b"v"])
        assert writer.entries_logged == 5
        writer.close()


class TestEncryptedAOF:
    def test_file_bytes_are_ciphered(self, tmp_path):
        path = str(tmp_path / "enc.aof")
        cipher = FileCipher()
        writer = AOFWriter(path, fsync="always", cipher=cipher)
        writer.append([b"SET", b"secret-key", b"secret-value"])
        writer.close()
        raw = open(path, "rb").read()
        assert b"secret-value" not in raw
        assert load_aof(path, cipher=cipher) == [[b"SET", b"secret-key", b"secret-value"]]

    def test_append_after_reopen_keeps_offsets(self, tmp_path):
        path = str(tmp_path / "enc.aof")
        cipher = FileCipher()
        w1 = AOFWriter(path, fsync="always", cipher=cipher)
        w1.append([b"SET", b"a", b"1"])
        w1.close()
        w2 = AOFWriter(path, fsync="always", cipher=cipher)
        w2.append([b"SET", b"b", b"2"])
        w2.close()
        assert load_aof(path, cipher=cipher) == [[b"SET", b"a", b"1"], [b"SET", b"b", b"2"]]


class TestEngineReplay:
    def _engine(self, tmp_path, **kw):
        return MiniKV(
            MiniKVConfig(aof_path=str(tmp_path / "kv.aof"), fsync="always", **kw)
        )

    def test_full_state_rebuild(self, tmp_path):
        kv = self._engine(tmp_path)
        kv.set("s", b"string")
        kv.hmset("h", {"f1": b"a", "f2": b"b"})
        kv.hdel("h", "f1")
        kv.sadd("set", b"m1", b"m2")
        kv.srem("set", b"m1")
        kv.set("gone", b"x")
        kv.delete("gone")
        kv.close()

        kv2 = self._engine(tmp_path)
        assert kv2.get("s") == b"string"
        assert kv2.hgetall("h") == {"f2": b"b"}
        assert kv2.smembers("set") == {b"m2"}
        assert not kv2.exists("gone")
        kv2.close()

    def test_expireat_survives_restart(self, tmp_path):
        clock = VirtualClock()
        kv = MiniKV(MiniKVConfig(aof_path=str(tmp_path / "kv.aof"), fsync="always"),
                    clock=clock)
        kv.set("k", b"v", ttl=100)
        kv.close()
        clock.advance(50)
        kv2 = MiniKV(MiniKVConfig(aof_path=str(tmp_path / "kv.aof"), fsync="always"),
                     clock=clock)
        assert kv2.ttl("k") == pytest.approx(50, abs=0.1)
        clock.advance(60)
        assert kv2.get("k") is None
        kv2.close()

    def test_flushall_replays(self, tmp_path):
        kv = self._engine(tmp_path)
        kv.set("a", b"1")
        kv.flushall()
        kv.set("b", b"2")
        kv.close()
        kv2 = self._engine(tmp_path)
        assert not kv2.exists("a")
        assert kv2.get("b") == b"2"
        kv2.close()

    def test_torn_final_write_recovers_prefix(self, tmp_path):
        path = str(tmp_path / "kv.aof")
        kv = MiniKV(MiniKVConfig(aof_path=path, fsync="always"))
        kv.set("a", b"1")
        kv.set("b", b"2")
        kv.close()
        # simulate crash mid-append
        size = os.path.getsize(path)
        with open(path, "ab") as f:
            f.write(b"*3\n$3\nSET\n$1\nc\n$5\nxx")  # truncated entry
        kv2 = MiniKV(MiniKVConfig(aof_path=path, fsync="always"))
        assert kv2.get("a") == b"1"
        assert kv2.get("b") == b"2"
        assert not kv2.exists("c")
        kv2.close()

    def test_read_logging_entries_do_not_break_replay(self, tmp_path):
        path = str(tmp_path / "kv.aof")
        kv = MiniKV(MiniKVConfig(aof_path=path, fsync="always", log_reads=True))
        kv.set("a", b"1")
        kv.get("a")
        kv.hmset("h", {"f": b"v"})
        kv.hgetall("h")
        kv.keys()
        kv.close()
        kv2 = MiniKV(MiniKVConfig(aof_path=path, fsync="always", log_reads=True))
        assert kv2.get("a") == b"1"
        assert kv2.hgetall("h") == {"f": b"v"}
        kv2.close()

    def test_encrypted_engine_replay(self, tmp_path):
        path = str(tmp_path / "kv.aof")
        kv = MiniKV(MiniKVConfig(aof_path=path, fsync="always", encryption_at_rest=True))
        kv.set("secret", b"payload-123")
        kv.close()
        raw = open(path, "rb").read()
        assert b"payload-123" not in raw  # at-rest encryption held
        kv2 = MiniKV(MiniKVConfig(aof_path=path, fsync="always", encryption_at_rest=True))
        assert kv2.get("secret") == b"payload-123"
        kv2.close()

    def test_audit_trail_grows_with_reads_when_enabled(self, tmp_path):
        path = str(tmp_path / "kv.aof")
        kv = MiniKV(MiniKVConfig(aof_path=path, fsync="always", log_reads=True))
        kv.set("k", b"v")
        before = kv.aof_size()
        for _ in range(10):
            kv.get("k")
        assert kv.aof_size() > before
        kv.close()

    def test_reads_not_logged_by_default(self, tmp_path):
        path = str(tmp_path / "kv.aof")
        kv = MiniKV(MiniKVConfig(aof_path=path, fsync="always", log_reads=False))
        kv.set("k", b"v")
        before = kv.aof_size()
        for _ in range(10):
            kv.get("k")
        assert kv.aof_size() == before
        kv.close()
