"""Tests for the minikv engine: strings, hashes, sets, keyspace commands."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import WrongTypeError
from repro.minikv import MiniKV, MiniKVConfig


@pytest.fixture
def kv():
    engine = MiniKV(clock=VirtualClock())
    yield engine
    engine.close()


class TestStrings:
    def test_set_get(self, kv):
        kv.set("k", b"value")
        assert kv.get("k") == b"value"

    def test_get_missing_is_none(self, kv):
        assert kv.get("nope") is None

    def test_set_overwrites(self, kv):
        kv.set("k", b"one")
        kv.set("k", b"two")
        assert kv.get("k") == b"two"

    def test_delete_returns_count(self, kv):
        kv.set("a", b"1")
        kv.set("b", b"2")
        assert kv.delete("a", "b", "missing") == 2
        assert kv.get("a") is None

    def test_exists(self, kv):
        assert not kv.exists("k")
        kv.set("k", b"v")
        assert kv.exists("k")

    def test_wrong_type_on_hash_key(self, kv):
        kv.hset("h", "f", b"v")
        with pytest.raises(WrongTypeError):
            kv.get("h")


class TestHashes:
    def test_hset_hget(self, kv):
        assert kv.hset("h", "f", b"v") == 1  # created
        assert kv.hset("h", "f", b"w") == 0  # overwritten
        assert kv.hget("h", "f") == b"w"

    def test_hget_missing_field(self, kv):
        kv.hset("h", "f", b"v")
        assert kv.hget("h", "other") is None
        assert kv.hget("missing", "f") is None

    def test_hmset_hgetall(self, kv):
        kv.hmset("h", {"a": b"1", "b": b"2"})
        assert kv.hgetall("h") == {"a": b"1", "b": b"2"}
        assert kv.hgetall("missing") == {}

    def test_hdel_removes_fields_and_empty_hash(self, kv):
        kv.hmset("h", {"a": b"1", "b": b"2"})
        assert kv.hdel("h", "a") == 1
        assert kv.hdel("h", "a") == 0
        assert kv.hdel("h", "b") == 1
        assert not kv.exists("h")  # empty hash disappears, like Redis

    def test_hset_if_exists_declines_on_missing_key(self, kv):
        assert kv.hset_if_exists("ghost", "f", b"v") == 0
        assert not kv.exists("ghost")
        kv.hset("h", "f", b"v")
        assert kv.hset_if_exists("h", "g", b"w") == 1
        assert kv.hget("h", "g") == b"w"

    def test_hmset_if_exists_declines_on_missing_key(self, kv):
        assert kv.hmset_if_exists("ghost", {"f": b"v"}) == 0
        kv.hset("h", "f", b"v")
        assert kv.hmset_if_exists("h", {"f": b"x", "g": b"y"}) == 1
        assert kv.hgetall("h") == {"f": b"x", "g": b"y"}

    def test_wrong_type_on_string_key(self, kv):
        kv.set("s", b"v")
        with pytest.raises(WrongTypeError):
            kv.hset("s", "f", b"v")


class TestSets:
    def test_sadd_smembers(self, kv):
        assert kv.sadd("s", b"a", b"b", b"a") == 2
        assert kv.smembers("s") == {b"a", b"b"}

    def test_sismember(self, kv):
        kv.sadd("s", b"a")
        assert kv.sismember("s", b"a")
        assert not kv.sismember("s", b"b")
        assert not kv.sismember("missing", b"a")

    def test_srem_and_empty_removal(self, kv):
        kv.sadd("s", b"a", b"b")
        assert kv.srem("s", b"a", b"zz") == 1
        assert kv.srem("s", b"b") == 1
        assert not kv.exists("s")


class TestKeyspace:
    def test_dbsize(self, kv):
        for i in range(5):
            kv.set(f"k{i}", b"v")
        assert kv.dbsize() == 5

    def test_keys_pattern(self, kv):
        kv.set("user:1", b"a")
        kv.set("user:2", b"b")
        kv.set("other", b"c")
        assert sorted(kv.keys("user:*")) == ["user:1", "user:2"]
        assert len(kv.keys()) == 3

    def test_scan_full_traversal(self, kv):
        for i in range(25):
            kv.set(f"k{i}", b"v")
        seen = []
        cursor = 0
        while True:
            cursor, batch = kv.scan(cursor, count=7)
            seen.extend(batch)
            if cursor == 0:
                break
        assert sorted(seen) == sorted(f"k{i}" for i in range(25))

    def test_scan_with_match(self, kv):
        kv.set("rec:1", b"a")
        kv.set("usr:1", b"b")
        _, batch = kv.scan(0, match="rec:*", count=10)
        assert batch == ["rec:1"]

    def test_flushall(self, kv):
        kv.set("a", b"1", ttl=100)
        kv.hset("h", "f", b"v")
        kv.flushall()
        assert kv.dbsize() == 0
        assert kv.info()["keys_with_expiry"] == 0

    def test_randomkey(self, kv):
        assert kv.randomkey() is None
        kv.set("only", b"v")
        assert kv.randomkey() == "only"

    def test_info_reports_features(self):
        engine = MiniKV(MiniKVConfig(strict_ttl=True))
        info = engine.info()
        assert info["expiry_algorithm"] == "strict"
        assert info["gdpr_features"]["timely_deletion"] is True
        assert info["gdpr_features"]["metadata_indexing"] is False
        engine.close()

    def test_memory_accounting_grows_and_shrinks(self, kv):
        empty = kv.memory_used()
        kv.set("k", b"x" * 1000)
        grown = kv.memory_used()
        assert grown > empty + 1000
        kv.delete("k")
        assert kv.memory_used() == empty
