"""Tests for the heap expiry cycle (the §7.2 efficient-deletion extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError
from repro.minikv import (
    ExpiresIndex,
    HeapExpiryCycle,
    MiniKV,
    MiniKVConfig,
    StrictExpiryCycle,
    TICK_SECONDS,
)


def _engine(algorithm: str, clock=None):
    return MiniKV(MiniKVConfig(ttl_algorithm=algorithm), clock=clock or VirtualClock())


class TestHeapCycle:
    def test_single_tick_erases_all_expired(self):
        clock = VirtualClock()
        kv = _engine("heap", clock)
        for i in range(500):
            kv.set(f"k{i}", b"v", ttl=10.0 if i % 5 == 0 else 10000.0)
        clock.advance(11)
        erased = kv.cron()
        assert erased == 100
        assert kv._expires.all_expired(clock.now()) == []
        assert kv.dbsize() == 400
        kv.close()

    def test_deadline_extension_honoured(self):
        """A stale heap entry must not erase a key whose TTL grew."""
        clock = VirtualClock()
        kv = _engine("heap", clock)
        kv.set("k", b"v", ttl=5.0)
        kv.expire("k", 10_000.0)  # extend: old heap entry is now stale
        clock.advance(6)
        kv.cron()
        assert kv.get("k") == b"v"
        clock.advance(10_000)
        kv.cron()
        assert kv.get("k") is None
        kv.close()

    def test_persist_cancels_scheduled_deletion(self):
        clock = VirtualClock()
        kv = _engine("heap", clock)
        kv.set("k", b"v", ttl=5.0)
        kv.persist("k")
        clock.advance(100)
        kv.cron()
        assert kv.get("k") == b"v"
        kv.close()

    def test_foreground_work_is_bounded(self):
        """Heap ticks touch only due entries; strict scans everything."""
        clock_h, clock_s = VirtualClock(), VirtualClock()
        heap_kv = _engine("heap", clock_h)
        strict_kv = _engine("strict", clock_s)
        for kv in (heap_kv, strict_kv):
            for i in range(1000):
                kv.set(f"k{i}", b"v", ttl=10_000.0)
        # Run 50 ticks with nothing expired.
        for _ in range(50):
            clock_h.advance(TICK_SECONDS)
            heap_kv.cron()
            clock_s.advance(TICK_SECONDS)
            strict_kv.cron()
        assert heap_kv.expiry_stats.sampled == 0         # no due entries popped
        assert strict_kv.expiry_stats.sampled >= 30_000  # tens of full scans
        heap_kv.close()
        strict_kv.close()

    def test_replay_reschedules_heap_entries(self, tmp_path):
        clock = VirtualClock()
        path = str(tmp_path / "kv.aof")
        kv = MiniKV(MiniKVConfig(aof_path=path, fsync="always", ttl_algorithm="heap"),
                    clock=clock)
        kv.set("k", b"v", ttl=50.0)
        kv.close()
        kv2 = MiniKV(MiniKVConfig(aof_path=path, fsync="always", ttl_algorithm="heap"),
                     clock=clock)
        clock.advance(60)
        kv2.cron()
        assert kv2.get("k") is None  # active (not just passive) erasure
        assert kv2.expiry_stats.deleted >= 1
        kv2.close()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            MiniKV(MiniKVConfig(ttl_algorithm="quantum"))

    def test_features_report_timely_deletion(self):
        assert MiniKVConfig(ttl_algorithm="heap").gdpr_features["timely_deletion"]
        assert MiniKVConfig(strict_ttl=True).gdpr_features["timely_deletion"]
        assert not MiniKVConfig().gdpr_features["timely_deletion"]

    def test_explicit_algorithm_overrides_strict_flag(self):
        config = MiniKVConfig(strict_ttl=True, ttl_algorithm="lazy")
        assert config.resolved_ttl_algorithm() == "lazy"


class TestHeapCycleUnit:
    @given(st.lists(st.tuples(st.integers(0, 20), st.floats(1, 100)), max_size=60))
    @settings(max_examples=60)
    def test_heap_matches_strict_semantics(self, entries):
        """After any schedule sequence, one heap tick at time T erases the
        same keys a strict scan would."""
        index_h, index_s = ExpiresIndex(), ExpiresIndex()
        deleted_h, deleted_s = [], []
        heap = HeapExpiryCycle(index_h, lambda k: (deleted_h.append(k), index_h.remove(k)))
        strict = StrictExpiryCycle(index_s, lambda k: (deleted_s.append(k), index_s.remove(k)))
        for key_id, deadline in entries:
            key = f"k{key_id}"
            index_h.set(key, deadline)
            heap.schedule(key, deadline)
            index_s.set(key, deadline)
        now = 50.0
        heap.run(now)
        strict.run(now)
        assert sorted(deleted_h) == sorted(deleted_s)
        assert sorted(index_h.all_expired(now)) == sorted(index_s.all_expired(now)) == []
