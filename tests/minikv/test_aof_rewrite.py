"""AOF rewrite (compaction) and its GDPR audit-trail guard."""

import os

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError
from repro.gdpr.audit import events_from_aof
from repro.minikv import MiniKV, MiniKVConfig


def _engine(tmp_path, **kw):
    return MiniKV(
        MiniKVConfig(aof_path=str(tmp_path / "kv.aof"), fsync="always", **kw),
        clock=kw.pop("clock", None) or VirtualClock(),
    )


class TestRewrite:
    def test_compaction_shrinks_churned_log(self, tmp_path):
        kv = _engine(tmp_path)
        for round_ in range(20):
            for i in range(20):
                kv.set(f"k{i}", f"v{round_}".encode())
        old, new = kv.rewrite_aof()
        assert new < old / 5  # 20 rounds of churn collapse to one SET each
        kv.close()

    def test_state_identical_after_rewrite_and_replay(self, tmp_path):
        clock = VirtualClock()
        kv = MiniKV(MiniKVConfig(aof_path=str(tmp_path / "kv.aof"), fsync="always"),
                    clock=clock)
        kv.set("s", b"string", ttl=500)
        kv.hmset("h", {"f1": b"a", "f2": b"b"})
        kv.sadd("set", b"m1", b"m2")
        kv.set("churn", b"1")
        kv.set("churn", b"2")
        kv.delete("churn")
        kv.rewrite_aof()
        # append after the rewrite still works
        kv.set("post", b"yes")
        kv.close()

        kv2 = MiniKV(MiniKVConfig(aof_path=str(tmp_path / "kv.aof"), fsync="always"),
                     clock=clock)
        assert kv2.get("s") == b"string"
        assert 0 < kv2.ttl("s") <= 500
        assert kv2.hgetall("h") == {"f1": b"a", "f2": b"b"}
        assert kv2.smembers("set") == {b"m1", b"m2"}
        assert not kv2.exists("churn")
        assert kv2.get("post") == b"yes"
        kv2.close()

    def test_expired_keys_not_rewritten(self, tmp_path):
        clock = VirtualClock()
        kv = MiniKV(MiniKVConfig(aof_path=str(tmp_path / "kv.aof"), fsync="always"),
                    clock=clock)
        kv.set("dead", b"x", ttl=1)
        kv.set("live", b"y")
        clock.advance(5)
        kv.rewrite_aof()
        kv.close()
        kv2 = MiniKV(MiniKVConfig(aof_path=str(tmp_path / "kv.aof"), fsync="always"),
                     clock=clock)
        assert not kv2.exists("dead")
        assert kv2.get("live") == b"y"
        kv2.close()

    def test_encrypted_rewrite(self, tmp_path):
        kv = _engine(tmp_path, encryption_at_rest=True)
        kv.set("secret", b"classified-value")
        kv.rewrite_aof()
        raw = open(str(tmp_path / "kv.aof"), "rb").read()
        assert b"classified-value" not in raw
        kv.close()
        kv2 = _engine(tmp_path, encryption_at_rest=True)
        assert kv2.get("secret") == b"classified-value"
        kv2.close()

    def test_audit_bearing_aof_refuses_silent_rewrite(self, tmp_path):
        kv = _engine(tmp_path, log_reads=True)
        kv.set("k", b"v")
        kv.get("k")
        with pytest.raises(ConfigurationError):
            kv.rewrite_aof()
        kv.close()

    def test_audit_archive_preserves_history(self, tmp_path):
        kv = _engine(tmp_path, log_reads=True)
        kv.set("k", b"v")
        for _ in range(5):
            kv.get("k")
        archive = str(tmp_path / "audit-archive.aof")
        kv.rewrite_aof(archive_path=archive)
        kv.close()
        # The archive still shows the reads (G 30 records of processing)...
        archived_ops = [e.operation for e in events_from_aof(archive)]
        assert archived_ops.count("GET") == 5
        # ...while the live AOF is compact.
        live_ops = [e.operation for e in events_from_aof(str(tmp_path / "kv.aof"))]
        assert "GET" not in live_ops

    def test_rewrite_without_aof_rejected(self):
        kv = MiniKV()
        with pytest.raises(ConfigurationError):
            kv.rewrite_aof()
        kv.close()


class TestShardedRewrite:
    """rewrite_aof through the shard front (the PR 5 bugfix: previously
    an AttributeError whenever shards > 1)."""

    def _sharded(self, tmp_path, **kw):
        from repro.minikv import ShardedMiniKV

        return ShardedMiniKV(MiniKVConfig(
            shards=2, aof_path=str(tmp_path / "kv.aof"), fsync="always", **kw
        ))

    def test_rewrite_under_load_then_replay_identity(self, tmp_path):
        """Churn every shard, compact through the front mid-load, keep
        writing, then cold-restart: the per-shard rewritten AOFs must
        replay into exactly the final keyspace."""
        config = MiniKVConfig(shards=2, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        from repro.minikv import ShardedMiniKV

        with ShardedMiniKV(config) as kv:
            for round_ in range(10):
                pipe = kv.pipeline()
                for i in range(40):
                    pipe.set(f"k{i}", f"v{round_}".encode())
                pipe.execute()
            old, new = kv.rewrite_aof()
            assert new < old / 3  # 10 rounds of churn collapse per shard
            # the front keeps serving through its swapped writers
            kv.set("post", b"yes")
            kv.hmset("h", {"a": b"1"})
            kv.delete("k0")
            expected = {
                key: kv.hgetall(key) if key == "h" else kv.get(key)
                for key in kv.keys()
            }
        with ShardedMiniKV(config) as replayed:
            rebuilt = {
                key: replayed.hgetall(key) if key == "h" else replayed.get(key)
                for key in replayed.keys()
            }
        assert rebuilt == expected
        assert len(rebuilt) == 41  # 40 churned keys - k0 + post + h

    def test_sharded_audit_archival_lands_per_shard(self, tmp_path):
        from repro.minikv.sharded import shard_aof_path

        kv = self._sharded(tmp_path, log_reads=True)
        for i in range(20):
            kv.set(f"k{i}", b"v")
        for i in range(20):
            kv.get(f"k{i}")
        with pytest.raises(ConfigurationError):
            kv.rewrite_aof()  # the audit trail needs an archive, per shard
        archive = str(tmp_path / "audit-archive.aof")
        kv.rewrite_aof(archive_path=archive)
        kv.close()
        archived_gets = 0
        for index in range(2):
            path = shard_aof_path(archive, index)
            assert os.path.exists(path)
            archived_gets += sum(
                1 for e in events_from_aof(path) if e.operation == "GET"
            )
            live = [e.operation
                    for e in events_from_aof(shard_aof_path(str(tmp_path / "kv.aof"), index))]
            assert "GET" not in live
        assert archived_gets == 20

    def test_rewrite_without_aof_rejected_sharded(self):
        from repro.minikv import ShardedMiniKV

        with ShardedMiniKV(MiniKVConfig(shards=2)) as kv:
            with pytest.raises(ConfigurationError):
                kv.rewrite_aof()


class TestRewriteConcurrency:
    def test_aof_size_during_rewrite_never_crashes(self, tmp_path):
        """aof_size() races with rewrite_aof()'s writer swap: sizing the
        just-closed old writer must report the on-disk size, not raise."""
        import threading

        kv = _engine(tmp_path, stripes=8)
        for i in range(300):
            kv.set(f"k{i}", b"v" * 50)
        errors = []
        stop = threading.Event()

        def sizer():
            while not stop.is_set():
                try:
                    assert kv.aof_size() >= 0
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=sizer) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(10):
            kv.rewrite_aof()
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        kv.close()
