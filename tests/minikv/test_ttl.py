"""TTL behaviour: passive expiry, lazy vs strict active cycles (Figure 3a)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.minikv import (
    MiniKV,
    MiniKVConfig,
    ExpiresIndex,
    LazyExpiryCycle,
    StrictExpiryCycle,
    SAMPLE_SIZE,
    TICK_SECONDS,
)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def kv(clock):
    engine = MiniKV(clock=clock)
    yield engine
    engine.close()


class TestTTLCommands:
    def test_ttl_semantics(self, kv, clock):
        assert kv.ttl("missing") == -2
        kv.set("k", b"v")
        assert kv.ttl("k") == -1
        kv.expire("k", 10)
        assert kv.ttl("k") == pytest.approx(10, abs=0.01)
        clock.advance(4)
        assert kv.ttl("k") == pytest.approx(6, abs=0.01)

    def test_expire_on_missing_key(self, kv):
        assert kv.expire("missing", 10) is False

    def test_expireat_absolute(self, kv, clock):
        kv.set("k", b"v")
        assert kv.expireat("k", clock.now() + 3)
        clock.advance(4)
        assert kv.get("k") is None

    def test_persist_clears_ttl(self, kv, clock):
        kv.set("k", b"v", ttl=5)
        assert kv.persist("k")
        clock.advance(100)
        assert kv.get("k") == b"v"
        assert kv.persist("k") is False  # no TTL to clear

    def test_set_clears_previous_ttl(self, kv, clock):
        kv.set("k", b"v", ttl=5)
        kv.set("k", b"w")  # plain SET removes the TTL, like Redis
        clock.advance(100)
        assert kv.get("k") == b"w"

    def test_passive_expiry_on_access(self, kv, clock):
        kv.set("k", b"v", ttl=5)
        clock.advance(6)
        assert kv.get("k") is None
        assert kv.dbsize() == 0

    def test_expired_keys_hidden_from_scan_and_keys(self, kv, clock):
        kv.set("dead", b"v", ttl=1)
        kv.set("live", b"v")
        clock.advance(2)
        assert kv.keys() == ["live"]
        _, batch = kv.scan(0, count=10)
        assert batch == ["live"]
        assert kv.dbsize() == 1


class TestExpiresIndex:
    def test_set_remove_contains(self):
        index = ExpiresIndex()
        index.set("a", 5.0)
        assert "a" in index
        assert index.deadline("a") == 5.0
        index.remove("a")
        assert "a" not in index
        index.remove("a")  # idempotent

    def test_swap_pop_keeps_sampling_consistent(self):
        index = ExpiresIndex()
        for i in range(10):
            index.set(f"k{i}", float(i))
        index.remove("k0")
        index.remove("k5")
        rng = random.Random(1)
        sampled = set(index.sample(100, rng))
        assert "k0" not in sampled and "k5" not in sampled
        assert len(index) == 8

    def test_all_expired(self):
        index = ExpiresIndex()
        index.set("a", 1.0)
        index.set("b", 10.0)
        assert index.all_expired(5.0) == ["a"]

    def test_sample_bounds(self):
        index = ExpiresIndex()
        rng = random.Random(2)
        assert index.sample(5, rng) == []
        index.set("a", 1.0)
        assert index.sample(5, rng) == ["a"]

    def test_clear(self):
        index = ExpiresIndex()
        index.set("a", 1.0)
        index.clear()
        assert len(index) == 0

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=4), st.floats(0, 100)),
                    max_size=50))
    @settings(max_examples=50)
    def test_index_matches_dict_model(self, entries):
        """The swap-pop index behaves like a plain dict."""
        index = ExpiresIndex()
        model = {}
        for key, deadline in entries:
            index.set(key, deadline)
            model[key] = deadline
        assert len(index) == len(model)
        for key, deadline in model.items():
            assert index.deadline(key) == deadline
        assert sorted(index.all_expired(50.0)) == sorted(
            k for k, d in model.items() if d <= 50.0
        )


def _populate(kv, total, short_ttl=300.0, long_ttl=432000.0):
    for i in range(total):
        kv.set(f"k{i}", b"v", ttl=short_ttl if i % 5 == 0 else long_ttl)


class TestLazyExpiryCycle:
    def test_leaves_stragglers_after_one_tick(self, clock):
        kv = MiniKV(MiniKVConfig(strict_ttl=False, expiry_seed=1), clock=clock)
        _populate(kv, 1000)
        clock.advance(301)
        kv.cron()
        # One tick samples at most SAMPLE_SIZE keys per iteration; with 200
        # expired of 1000 it cannot clear everything instantly.
        assert len(kv._expires.all_expired(clock.now())) > 0
        kv.close()

    def test_eventually_erases_everything(self, clock):
        kv = MiniKV(MiniKVConfig(strict_ttl=False, expiry_seed=1), clock=clock)
        _populate(kv, 500)
        clock.advance(301)
        for _ in range(100000):
            kv.cron()
            if not kv._expires.all_expired(clock.now()):
                break
            clock.advance(TICK_SECONDS)
        assert kv._expires.all_expired(clock.now()) == []
        assert kv.dbsize() == 400
        kv.close()

    def test_erasure_delay_grows_with_db_size(self, clock):
        """The Figure 3a effect in miniature."""

        def delay(total):
            c = VirtualClock()
            kv = MiniKV(MiniKVConfig(strict_ttl=False, expiry_seed=2), clock=c)
            _populate(kv, total)
            c.advance(301)
            start = c.now()
            while kv._expires.all_expired(c.now()):
                kv.cron()
                c.advance(TICK_SECONDS)
            kv.close()
            return c.now() - start

        assert delay(2000) > 2 * delay(500)

    def test_stats_track_activity(self, clock):
        kv = MiniKV(MiniKVConfig(strict_ttl=False, expiry_seed=3), clock=clock)
        _populate(kv, 200)
        clock.advance(301)
        kv.cron()
        stats = kv.expiry_stats
        assert stats.ticks >= 1
        assert stats.sampled >= SAMPLE_SIZE


class TestStrictExpiryCycle:
    def test_single_tick_erases_all(self, clock):
        kv = MiniKV(MiniKVConfig(strict_ttl=True), clock=clock)
        _populate(kv, 2000)
        clock.advance(301)
        erased = kv.cron()
        assert erased == 400
        assert kv._expires.all_expired(clock.now()) == []
        assert kv.dbsize() == 1600
        kv.close()

    def test_strict_cycle_scans_whole_index(self, clock):
        index = ExpiresIndex()
        deleted = []
        cycle = StrictExpiryCycle(index, deleted.append)
        for i in range(100):
            index.set(f"k{i}", 1.0 if i < 30 else 100.0)
        assert cycle.run(now=2.0) == 30
        assert len(deleted) == 30

    def test_due_respects_tick_interval(self, clock):
        index = ExpiresIndex()
        cycle = LazyExpiryCycle(index, lambda k: None)
        assert cycle.due(0.0)
        cycle.run(0.0)
        assert not cycle.due(0.05)
        assert cycle.due(TICK_SECONDS)
