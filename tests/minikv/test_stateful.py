"""Model-based stateful testing: minikv vs a plain dict model with TTLs.

Hypothesis drives random command sequences (set/hset/delete/expire/persist/
clock advances/active expiry ticks) against the engine and a dict model;
visible state must agree after every step for all three TTL algorithms.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.common.clock import VirtualClock
from repro.minikv import MiniKV, MiniKVConfig

_KEYS = tuple(f"k{i}" for i in range(8))


class _Machine(RuleBasedStateMachine):
    algorithm = "lazy"

    @initialize()
    def setup(self):
        self.clock = VirtualClock()
        self.kv = MiniKV(MiniKVConfig(ttl_algorithm=self.algorithm), clock=self.clock)
        self.values: dict[str, bytes] = {}
        self.deadlines: dict[str, float] = {}

    def _expire_model(self):
        now = self.clock.now()
        for key in [k for k, d in self.deadlines.items() if d <= now]:
            del self.deadlines[key]
            self.values.pop(key, None)

    @rule(key=st.sampled_from(_KEYS), value=st.binary(min_size=1, max_size=8))
    def set(self, key, value):
        self._expire_model()
        self.kv.set(key, value)
        self.values[key] = value
        self.deadlines.pop(key, None)

    @rule(key=st.sampled_from(_KEYS), value=st.binary(min_size=1, max_size=8),
          ttl=st.floats(0.5, 50))
    def set_with_ttl(self, key, value, ttl):
        self._expire_model()
        self.kv.set(key, value, ttl=ttl)
        self.values[key] = value
        self.deadlines[key] = self.clock.now() + ttl

    @rule(key=st.sampled_from(_KEYS))
    def delete(self, key):
        self._expire_model()
        deleted = self.kv.delete(key)
        assert deleted == (1 if key in self.values else 0)
        self.values.pop(key, None)
        self.deadlines.pop(key, None)

    @rule(key=st.sampled_from(_KEYS), ttl=st.floats(0.5, 50))
    def expire(self, key, ttl):
        self._expire_model()
        ok = self.kv.expire(key, ttl)
        assert ok == (key in self.values)
        if ok:
            self.deadlines[key] = self.clock.now() + ttl

    @rule(key=st.sampled_from(_KEYS))
    def persist(self, key):
        self._expire_model()
        ok = self.kv.persist(key)
        assert ok == (key in self.deadlines)
        self.deadlines.pop(key, None)

    @rule(seconds=st.floats(0.1, 30))
    def advance(self, seconds):
        self.clock.advance(seconds)

    @rule()
    def tick(self):
        self.kv.cron()

    @invariant()
    def visible_state_matches_model(self):
        self._expire_model()
        for key in _KEYS:
            assert self.kv.get(key) == self.values.get(key), key
        assert self.kv.dbsize() == len(self.values)

    def teardown(self):
        if hasattr(self, "kv"):
            self.kv.close()


class LazyMachine(_Machine):
    algorithm = "lazy"


class StrictMachine(_Machine):
    algorithm = "strict"


class HeapMachine(_Machine):
    algorithm = "heap"


_SETTINGS = settings(max_examples=25, stateful_step_count=25, deadline=None)

TestLazyModel = LazyMachine.TestCase
TestLazyModel.settings = _SETTINGS
TestStrictModel = StrictMachine.TestCase
TestStrictModel.settings = _SETTINGS
TestHeapModel = HeapMachine.TestCase
TestHeapModel.settings = _SETTINGS
