"""AOF group commit: batched fsync with unchanged replay semantics.

``batch_size > 1`` under ``fsync='always'`` amortises the fsync over a
batch of entries; the ``batch()`` context manager gives explicit command
batches (pipelines, AOF rewrite) one policy decision per block.  Framing
never changes, so replay — including Redis' aof-load-truncated handling
of a torn trailing write — behaves exactly as per-append fsync.
"""

import os

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError
from repro.minikv import MiniKV, MiniKVConfig
from repro.minikv.aof import AOFWriter, encode_entry, load_aof


class TestGroupCommitBuffering:
    def test_batch_size_one_flushes_per_append(self, tmp_path):
        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="always")
        writer.append([b"SET", b"k", b"v"])
        assert os.path.getsize(path) > 0  # durable immediately
        writer.close()

    def test_appends_buffer_until_batch_full(self, tmp_path):
        path = str(tmp_path / "a.aof")
        clock = VirtualClock()
        writer = AOFWriter(path, fsync="always", batch_size=8, clock=clock)
        for _ in range(7):
            writer.append([b"SET", b"k", b"v"])
        assert os.path.getsize(path) == 0           # still buffered
        assert writer.size_bytes() > 0              # but accounted for
        writer.append([b"SET", b"k", b"v"])         # 8th fills the batch
        assert os.path.getsize(path) == writer.size_bytes()
        writer.close()

    def test_clock_boundary_bounds_the_wait(self, tmp_path):
        path = str(tmp_path / "a.aof")
        clock = VirtualClock()
        writer = AOFWriter(path, fsync="always", batch_size=1000, clock=clock)
        writer.append([b"SET", b"k1", b"v"])
        assert os.path.getsize(path) == 0
        clock.advance(1.5)
        writer.append([b"SET", b"k2", b"v"])  # crosses the 1s boundary
        assert os.path.getsize(path) > 0
        writer.close()

    def test_batch_context_defers_then_flushes_once(self, tmp_path):
        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="always")
        with writer.batch():
            for i in range(20):
                writer.append([b"SET", b"k%d" % i, b"v"])
                assert os.path.getsize(path) == 0  # deferred inside block
        assert os.path.getsize(path) == writer.size_bytes()
        assert writer.entries_logged == 20
        writer.close()

    def test_append_many_is_one_group_commit(self, tmp_path):
        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="always")
        writer.append_many([[b"SET", b"a", b"1"], [b"SET", b"b", b"2"]])
        assert load_aof(path) == [[b"SET", b"a", b"1"], [b"SET", b"b", b"2"]]
        writer.close()

    def test_close_flushes_pending_batch(self, tmp_path):
        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="always", batch_size=100)
        writer.append([b"SET", b"k", b"v"])
        writer.close()
        assert load_aof(path) == [[b"SET", b"k", b"v"]]

    def test_rejects_nonpositive_batch(self, tmp_path):
        with pytest.raises(ConfigurationError):
            AOFWriter(str(tmp_path / "a.aof"), batch_size=0)

    def test_batch_deferral_is_per_thread(self, tmp_path):
        """Another thread's appends keep their own fsync policy while a
        batch is open elsewhere — batch() must not serialise or defer
        appends from other stripes' threads."""
        import threading

        path = str(tmp_path / "a.aof")
        writer = AOFWriter(path, fsync="always")
        with writer.batch():
            writer.append([b"SET", b"batched", b"v"])
            done = threading.Event()

            def other_thread():
                writer.append([b"SET", b"other", b"v"])
                done.set()

            threading.Thread(target=other_thread).start()
            assert done.wait(5.0)  # would deadlock if batch held the lock
            # the other thread's always-policy flushed both pending entries
            assert os.path.getsize(path) > 0
        writer.close()
        assert [e[1] for e in load_aof(path)] == [b"batched", b"other"]


class TestTornWriteReplay:
    def _write_grouped(self, path, entries):
        writer = AOFWriter(path, fsync="always", batch_size=len(entries))
        for entry in entries:
            writer.append(entry)
        writer.close()

    def test_torn_tail_inside_batch_truncates_to_prefix(self, tmp_path):
        """A crash mid-group-commit tears the last entries; replay keeps
        the intact prefix, exactly like per-append fsync."""
        path = str(tmp_path / "torn.aof")
        entries = [[b"SET", b"k%d" % i, b"value%d" % i] for i in range(10)]
        self._write_grouped(path, entries)
        size = os.path.getsize(path)
        tear_at = size - len(encode_entry(entries[-1])) // 2  # mid-entry
        with open(path, "r+b") as handle:
            handle.truncate(tear_at)
        recovered = load_aof(path)
        assert recovered == entries[:9]

    def test_replay_after_torn_write_rebuilds_prefix_state(self, tmp_path):
        path = str(tmp_path / "torn.aof")
        with MiniKV(MiniKVConfig(aof_path=path, fsync="always",
                                 aof_batch_size=50)) as kv:
            pipe = kv.pipeline()
            for i in range(40):
                pipe.set(f"k{i}", b"v%d" % i)
            pipe.execute()
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)  # tear the tail
        with MiniKV(MiniKVConfig(aof_path=path, fsync="always")) as replayed:
            # the torn final entry is dropped, every prior one survives
            assert replayed.dbsize() == 39
            assert replayed.get("k0") == b"v0"
            assert replayed.get("k38") == b"v38"
            assert replayed.get("k39") is None

    def test_grouped_and_ungrouped_aof_bytes_identical(self, tmp_path):
        """Group commit only changes *when* bytes hit the disk, never
        which bytes do."""
        grouped = str(tmp_path / "grouped.aof")
        ungrouped = str(tmp_path / "ungrouped.aof")
        entries = [[b"SET", b"k%d" % i, b"v"] for i in range(25)]
        self._write_grouped(grouped, entries)
        writer = AOFWriter(ungrouped, fsync="always")
        for entry in entries:
            writer.append(entry)
        writer.close()
        assert open(grouped, "rb").read() == open(ungrouped, "rb").read()


class TestEngineGroupCommitReplay:
    def test_identical_keyspace_after_group_commit_replay(self, tmp_path):
        path = str(tmp_path / "engine.aof")
        config = MiniKVConfig(
            aof_path=path, fsync="always", aof_batch_size=32, stripes=8
        )
        clock = VirtualClock()
        with MiniKV(config, clock=clock) as kv:
            pipe = kv.pipeline()
            for i in range(100):
                pipe.set(f"s{i}", b"v%d" % i, ttl=500.0 if i % 4 == 0 else None)
            pipe.hmset("h1", {"a": b"1"}).sadd("set1", b"m1", b"m2")
            pipe.execute()
            kv.delete("s0", "s1")
            kv.persist("s4")
            expected_keys = sorted(kv.keys())
            expected_expiry = kv.info()["keys_with_expiry"]
        with MiniKV(MiniKVConfig(aof_path=path, fsync="always"),
                    clock=clock) as replayed:
            assert sorted(replayed.keys()) == expected_keys
            assert replayed.info()["keys_with_expiry"] == expected_expiry
            assert replayed.hgetall("h1") == {"a": b"1"}
            assert replayed.smembers("set1") == {b"m1", b"m2"}
