"""Engine pipelining: batch results, atomicity, and amortised ticking.

A pipeline executes its queued batch under one multi-stripe lock
acquisition and one expiry tick per involved stripe — so a batch is
atomic with respect to other commands on the stripes it touches, and its
results must equal running the same commands serially.
"""

import threading

import pytest

from repro.common.clock import VirtualClock
from repro.minikv import MiniKV, MiniKVConfig, load_aof


@pytest.fixture(params=[1, 8])
def kv(request):
    engine = MiniKV(MiniKVConfig(stripes=request.param))
    yield engine
    engine.close()


class TestBatchSemantics:
    def test_results_in_queue_order(self, kv):
        pipe = kv.pipeline()
        pipe.set("a", b"1").set("b", b"2").get("a").get("b").get("nope")
        pipe.exists("a").delete("a").exists("a")
        results = pipe.execute()
        assert results == [None, None, b"1", b"2", None, True, 1, False]

    def test_matches_serial_execution(self, kv):
        serial = MiniKV(MiniKVConfig())
        try:
            commands = [
                ("set", ("k1", b"v1", None)),
                ("hset", ("h", "f", b"x")),
                ("hmset", ("h", {"g": b"y"})),
                ("sadd", ("s", (b"m1", b"m2"))),
                ("hgetall", ("h",)),
                ("smembers", ("s",)),
                ("hdel", ("h", ("f",))),
                ("srem", ("s", (b"m1",))),
                ("ttl", ("k1",)),
                ("get", ("k1",)),
            ]
            pipe = kv.pipeline()
            pipe.set("k1", b"v1").hset("h", "f", b"x").hmset("h", {"g": b"y"})
            pipe.sadd("s", b"m1", b"m2").hgetall("h").smembers("s")
            pipe.hdel("h", "f").srem("s", b"m1").ttl("k1").get("k1")
            got = pipe.execute()

            want = []
            serial.set("k1", b"v1")
            want.append(None)
            want.append(serial.hset("h", "f", b"x"))
            serial.hmset("h", {"g": b"y"})
            want.append(None)
            want.append(serial.sadd("s", b"m1", b"m2"))
            want.append(serial.hgetall("h"))
            want.append(serial.smembers("s"))
            want.append(serial.hdel("h", "f"))
            want.append(serial.srem("s", b"m1"))
            want.append(serial.ttl("k1"))
            want.append(serial.get("k1"))
            assert got == want
            assert sorted(kv.keys()) == sorted(serial.keys())
        finally:
            serial.close()

    def test_empty_pipeline(self, kv):
        assert kv.pipeline().execute() == []

    def test_keyless_delete_in_pipeline(self, kv):
        """delete() with no keys (an empty victim list) must not crash."""
        assert kv.pipeline().delete().execute() == [0]
        pipe = kv.pipeline()
        pipe.set("a", b"1").delete().get("a")
        assert pipe.execute() == [None, 0, b"1"]

    def test_command_errors_captured_per_slot(self, kv):
        """Redis semantics: a failing command neither stops the batch nor
        rolls back earlier commands; execute() raises afterwards unless
        raise_on_error=False."""
        from repro.common.errors import WrongTypeError

        kv.sadd("a-set", b"member")
        pipe = kv.pipeline()
        pipe.set("before", b"1").hset("a-set", "f", b"x").set("after", b"2")
        results = pipe.execute(raise_on_error=False)
        assert results[0] is None and results[2] is None
        assert isinstance(results[1], WrongTypeError)
        # every other command still applied
        assert kv.get("before") == b"1" and kv.get("after") == b"2"
        pipe.hset("a-set", "f", b"x")
        with pytest.raises(WrongTypeError):
            pipe.execute()

    def test_pipeline_reusable_after_execute(self, kv):
        pipe = kv.pipeline()
        pipe.set("a", b"1")
        assert pipe.execute() == [None]
        assert len(pipe) == 0
        pipe.get("a")
        assert pipe.execute() == [b"1"]

    def test_ttl_commands_in_pipeline(self, kv):
        clock = VirtualClock()
        timed = MiniKV(MiniKVConfig(stripes=4), clock=clock)
        try:
            pipe = timed.pipeline()
            pipe.set("x", b"1", ttl=10.0).set("y", b"2")
            pipe.expire("y", 20.0).persist("x").ttl("y")
            results = pipe.execute()
            assert results[2] is True and results[3] is True
            assert results[4] == 20.0
            assert timed.ttl("x") == -1.0  # persisted
        finally:
            timed.close()

    def test_counts_every_command(self, kv):
        before = kv.info()["commands_processed"]
        pipe = kv.pipeline()
        for i in range(25):
            pipe.set(f"k{i}", b"v")
        pipe.execute()
        assert kv.info()["commands_processed"] - before >= 25


class TestTickAmortisation:
    def test_one_expiry_tick_per_batch(self):
        """A 100-command batch on one stripe runs the strict cycle once,
        where 100 serial commands at tick boundaries would run it often."""
        clock = VirtualClock()
        kv = MiniKV(MiniKVConfig(strict_ttl=True), clock=clock)
        try:
            for i in range(20):
                kv.set(f"seed{i}", b"v", ttl=10_000.0)
            ticks_before = kv.expiry_stats.ticks
            pipe = kv.pipeline()
            for i in range(100):
                pipe.set(f"b{i}", b"v")
            clock.advance(1.0)  # make the cycle due exactly once
            pipe.execute()
            assert kv.expiry_stats.ticks == ticks_before + 1
        finally:
            kv.close()


class TestAtomicity:
    def test_batches_serialise_on_shared_stripes(self):
        """Concurrent read-modify-write batches over one key never lose
        increments: each batch holds the key's stripe for its duration."""
        kv = MiniKV(MiniKVConfig(stripes=8))
        try:
            # Atomicity witness: a batch writing two keys on different
            # stripes is observed either fully or not at all.
            stop = threading.Event()
            mismatches = []

            def writer():
                flip = False
                while not stop.is_set():
                    pipe = kv.pipeline()
                    value = b"x" if flip else b"y"
                    pipe.set("left", value).set("right", value)
                    pipe.execute()
                    flip = not flip

            def reader():
                for _ in range(2000):
                    pipe = kv.pipeline()
                    pipe.get("left").get("right")
                    left, right = pipe.execute()
                    if left != right:
                        mismatches.append((left, right))

            kv.pipeline().set("left", b"x").set("right", b"x").execute()
            w = threading.Thread(target=writer)
            r = threading.Thread(target=reader)
            w.start(); r.start()
            r.join(); stop.set(); w.join()
            assert mismatches == []
        finally:
            kv.close()

    def test_concurrent_pipelines_no_lost_updates(self):
        kv = MiniKV(MiniKVConfig(stripes=16))
        try:
            def worker(tid):
                pipe = kv.pipeline()
                for i in range(300):
                    pipe.sadd(f"bucket{i % 7}", f"{tid}:{i}".encode())
                    if len(pipe) >= 32:
                        pipe.execute()
                pipe.execute()

            pool = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            total = sum(len(kv.smembers(f"bucket{i}")) for i in range(7))
            assert total == 8 * 300
        finally:
            kv.close()


class TestPipelineWithAOF:
    def test_pipeline_logs_and_replays(self, tmp_path):
        path = str(tmp_path / "pipe.aof")
        with MiniKV(MiniKVConfig(aof_path=path, fsync="always")) as kv:
            pipe = kv.pipeline()
            pipe.set("a", b"1").hmset("h", {"f": b"v"}).sadd("s", b"m")
            pipe.delete("missing")
            pipe.execute()
        with MiniKV(MiniKVConfig(aof_path=path, fsync="always")) as kv2:
            assert kv2.get("a") == b"1"
            assert kv2.hgetall("h") == {"f": b"v"}
            assert kv2.smembers("s") == {b"m"}

    def test_pipeline_on_encrypted_aof(self, tmp_path):
        path = str(tmp_path / "enc.aof")
        config = MiniKVConfig(
            aof_path=path, fsync="always", encryption_at_rest=True, stripes=4
        )
        with MiniKV(config) as kv:
            pipe = kv.pipeline()
            for i in range(30):
                pipe.set(f"k{i}", b"secret%d" % i)
            pipe.execute()
        # ciphertext on disk…
        raw = open(path, "rb").read()
        assert b"secret0" not in raw
        # …but replay with the cipher restores everything
        with MiniKV(config) as kv2:
            assert kv2.get("k7") == b"secret7"
            assert kv2.dbsize() == 30
