"""ShardedMiniKV over the TCP transport: parity, faults, and leaks.

The socket transport must be behaviourally invisible: the same command
surface, the same respawn-and-replay crash recovery, the same
scatter/gather batching as the default pipe transport — only the bytes
travel differently (length-prefixed pickled frames, docs/sharding.md).
These tests run the sharded contract's hot paths on ``transport="tcp"``
and add the transport-specific fault taxonomy: a worker that dies again
on the retried exchange surfaces :class:`ShardConnectionError`, and
``close()`` reaps every worker process and socket it opened.
"""

import threading

import pytest

from repro.minikv import MiniKV, MiniKVConfig, ShardedMiniKV
from repro.minikv.sharded import ShardConnectionError


def tcp_sharded(tmp_path=None, shards=3, **overrides):
    config = MiniKVConfig(
        shards=shards,
        transport="tcp",
        aof_path=(str(tmp_path / "kv.aof") if tmp_path is not None else None),
        **overrides,
    )
    return ShardedMiniKV(config)


class TestTcpParity:
    def test_commands_route_and_merge_over_tcp(self):
        with tcp_sharded() as kv:
            for i in range(60):
                kv.set(f"k{i}", b"v%d" % i)
            assert kv.get("k17") == b"v17"
            assert kv.dbsize() == 60
            assert kv.delete("k1", "k2", "nope") == 2
            kv.hmset("h", {"a": b"1", "b": b"2"})
            assert kv.hgetall("h") == {"a": b"1", "b": b"2"}
            kv.sadd("s", b"x", b"y")
            assert kv.smembers("s") == {b"x", b"y"}
            info = kv.info()
            assert info["shards"] == 3
            assert sum(info["keys_per_shard"]) == info["keys"] == 60

    def test_pipeline_matches_in_process_engine(self):
        ops = [("set", (f"k{i}", b"v%d" % i), {}) for i in range(40)]
        ops += [("get", (f"k{i}",), {}) for i in range(40)]
        with MiniKV(MiniKVConfig()) as plain:
            pipe = plain.pipeline()
            for method, args, kwargs in ops:
                getattr(pipe, method)(*args, **kwargs)
            expected = pipe.execute()
        with tcp_sharded() as kv:
            pipe = kv.pipeline()
            for method, args, kwargs in ops:
                getattr(pipe, method)(*args, **kwargs)
            assert pipe.execute() == expected

    def test_routing_agrees_with_pipe_transport(self, tmp_path):
        # same keys, same ring → same shard files regardless of transport
        keys = [f"user{i}" for i in range(50)]
        with ShardedMiniKV(MiniKVConfig(
            shards=3, aof_path=str(tmp_path / "pipe.aof"), fsync="always",
        )) as kv:
            for k in keys:
                kv.set(k, b"v")
            pipe_counts = kv.info()["keys_per_shard"]
        with tcp_sharded(tmp_path, fsync="always") as kv:
            for k in keys:
                kv.set(k, b"v")
            tcp_counts = kv.info()["keys_per_shard"]
        assert pipe_counts == tcp_counts


class TestTcpRecovery:
    def test_killed_worker_respawns_and_replays(self, tmp_path):
        with tcp_sharded(tmp_path, fsync="always") as kv:
            for i in range(40):
                kv.set(f"k{i}", b"v%d" % i)
            victim = kv._shards[1]
            victim.process.kill()
            victim.process.join()
            # every key still answers: the dead worker's shard replays
            # its own AOF through the reconnected socket
            assert sorted(kv.keys()) == sorted(f"k{i}" for i in range(40))
            assert kv.get("k7") == b"v7"
            kv.set("after", b"crash")
            assert kv.get("after") == b"crash"

    def test_kill_during_scatter_gather_batch(self, tmp_path):
        with tcp_sharded(tmp_path, fsync="always") as kv:
            for i in range(30):
                kv.set(f"k{i}", b"v%d" % i)
            kv._shards[2].process.kill()
            kv._shards[2].process.join()
            pipe = kv.pipeline()
            for i in range(30):
                pipe.get(f"k{i}")
            assert pipe.execute() == [b"v%d" % i for i in range(30)]

    def test_second_death_raises_shard_connection_error(self, tmp_path, monkeypatch):
        with tcp_sharded(tmp_path, fsync="always") as kv:
            kv.set("k", b"v")
            shard = kv._shards[kv._shard_index("k")]
            shard.process.kill()
            shard.process.join()
            # a respawn that leaves the dead connection in place models a
            # worker that dies again on the retried exchange
            monkeypatch.setattr(kv, "_respawn", lambda shard: None)
            with pytest.raises(ShardConnectionError):
                kv.get("k")

    def test_mid_batch_disconnect_raises_shard_connection_error(
            self, tmp_path, monkeypatch):
        with tcp_sharded(tmp_path, fsync="always") as kv:
            for i in range(30):
                kv.set(f"k{i}", b"v%d" % i)
            kv._shards[0].process.kill()
            kv._shards[0].process.join()
            monkeypatch.setattr(kv, "_respawn", lambda shard: None)
            pipe = kv.pipeline()
            for i in range(30):
                pipe.get(f"k{i}")
            with pytest.raises(ShardConnectionError):
                pipe.execute()


class TestTcpLifecycle:
    def test_close_reaps_worker_processes_and_sockets(self):
        kv = tcp_sharded()
        kv.set("k", b"v")
        workers = [shard.process for shard in kv._shards.values()]
        conns = [shard.conn for shard in kv._shards.values()]
        assert all(proc.is_alive() for proc in workers)
        kv.close()
        for proc in workers:
            proc.join(timeout=5)
            assert not proc.is_alive()
        for conn in conns:
            # closed sockets have fd -1: nothing left registered with the OS
            assert conn.fileno() == -1

    def test_close_is_idempotent_and_commands_fail_loudly(self):
        kv = tcp_sharded()
        kv.close()
        kv.close()
        with pytest.raises(ShardConnectionError):
            kv.get("k")

    def test_no_thread_leak_per_deployment(self):
        before = threading.active_count()
        with tcp_sharded() as kv:
            kv.set("k", b"v")
        assert threading.active_count() <= before
