"""Online resharding of ShardedMiniKV: growth, drain, crash repair.

The contract under test is docs/sharding.md's resharding section:
``add_shard``/``remove_shard`` move only the ring slots whose owner
changed (streaming each slot through the normal command surface, with a
brief per-slot cutover), the deployment's topology file makes the live
shard-id set durable — a reopen honours it over the config's ``shards``
count — and a crash mid-migration leaves a marker that the next open
repairs by re-running the interrupted plan (slot moves are idempotent:
copy before delete, delete before insert).
"""

import json
import os

import pytest

from repro.minikv import MiniKVConfig, ShardedMiniKV, shard_aof_path
from repro.minikv.sharded import ShardConnectionError


def sharded(tmp_path, shards=3, **overrides):
    overrides.setdefault("fsync", "always")
    return ShardedMiniKV(MiniKVConfig(
        shards=shards, aof_path=str(tmp_path / "kv.aof"), **overrides,
    ))


def load_keys(kv, count=120):
    expected = {}
    pipe = kv.pipeline()
    for i in range(count):
        pipe.set(f"user{i}", b"v%d" % i)
        expected[f"user{i}"] = b"v%d" % i
    pipe.execute()
    return expected


def snapshot(kv):
    return {key: kv.get(key) for key in kv.keys()}


class TestAddShard:
    def test_add_shard_keeps_every_key(self, tmp_path):
        with sharded(tmp_path) as kv:
            expected = load_keys(kv)
            stats = kv.add_shard()
            assert kv.shard_count == 4
            assert snapshot(kv) == expected
            # bounded movement: far below a modulo-style remap of ~3/4
            assert 0 < stats["keys_moved"] < len(expected) * 0.6
            assert stats["shard_id"] == 3

    def test_new_shard_serves_traffic(self, tmp_path):
        with sharded(tmp_path) as kv:
            load_keys(kv)
            kv.add_shard()
            info = kv.info()
            assert len(info["keys_per_shard"]) == 4
            assert info["keys_per_shard"][-1] > 0  # it owns real slots
            kv.set("fresh", b"x")
            assert kv.get("fresh") == b"x"

    def test_add_shard_is_durable(self, tmp_path):
        config = MiniKVConfig(shards=3, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            expected = load_keys(kv)
            kv.add_shard()
        # same stale config (shards=3): the topology file wins
        with ShardedMiniKV(config) as kv:
            assert kv.shard_count == 4
            assert kv.shard_ids == (0, 1, 2, 3)
            assert snapshot(kv) == expected

    def test_hash_and_set_values_survive_migration(self, tmp_path):
        with sharded(tmp_path) as kv:
            for i in range(40):
                kv.hmset(f"h{i}", {"f": b"%d" % i})
                kv.sadd(f"s{i}", b"a", b"%d" % i)
            kv.add_shard()
            for i in range(40):
                assert kv.hgetall(f"h{i}") == {"f": b"%d" % i}
                assert kv.smembers(f"s{i}") == {b"a", b"%d" % i}

    def test_ttls_survive_migration(self, tmp_path):
        with sharded(tmp_path) as kv:
            load_keys(kv, 40)
            for i in range(40):
                kv.expire(f"user{i}", 3600.0)
            kv.add_shard()
            for i in range(0, 40, 7):
                # the deadline migrates as an absolute timestamp; small
                # cross-worker clock skew can nudge the remaining ttl a
                # hair past the nominal interval
                assert 0 < kv.ttl(f"user{i}") <= 3601.0


class TestRemoveShard:
    def test_remove_shard_drains_onto_survivors(self, tmp_path):
        with sharded(tmp_path) as kv:
            expected = load_keys(kv)
            stats = kv.remove_shard(1)
            assert kv.shard_count == 2
            assert kv.shard_ids == (0, 2)
            assert stats["keys_moved"] > 0
            assert snapshot(kv) == expected

    def test_removed_shard_files_are_unlinked(self, tmp_path):
        base = str(tmp_path / "kv.aof")
        with sharded(tmp_path) as kv:
            load_keys(kv)
            assert os.path.exists(shard_aof_path(base, 1))
            kv.remove_shard(1)
            assert not os.path.exists(shard_aof_path(base, 1))

    def test_cannot_remove_last_or_unknown_shard(self, tmp_path):
        with sharded(tmp_path, shards=2) as kv:
            with pytest.raises(ShardConnectionError):
                kv.remove_shard(99)
            kv.remove_shard(0)
            with pytest.raises(ShardConnectionError):
                kv.remove_shard(1)

    def test_shard_ids_are_never_reused(self, tmp_path):
        with sharded(tmp_path) as kv:
            load_keys(kv)
            kv.remove_shard(2)
            stats = kv.add_shard()
            # id 2 is retired forever; the newcomer gets a fresh id, so a
            # stale persistence file can never be resurrected
            assert stats["shard_id"] == 3
            assert kv.shard_ids == (0, 1, 3)

    def test_grow_then_shrink_round_trips(self, tmp_path):
        with sharded(tmp_path) as kv:
            expected = load_keys(kv)
            added = kv.add_shard()["shard_id"]
            kv.remove_shard(added)
            assert kv.shard_ids == (0, 1, 2)
            assert snapshot(kv) == expected


class TestCrashMidMigration:
    def _crash_partway(self, kv, after_slots):
        real = kv._migrate_slot
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > after_slots:
                raise RuntimeError("injected crash mid-migration")
            return real(*args, **kwargs)

        kv._migrate_slot = flaky

    def test_reopen_repairs_interrupted_add(self, tmp_path):
        config = MiniKVConfig(shards=3, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            expected = load_keys(kv)
            self._crash_partway(kv, after_slots=5)
            with pytest.raises(RuntimeError, match="injected"):
                kv.add_shard()
            marker = json.load(open(str(tmp_path / "kv.aof") + ".topology"))
            assert marker["migration"] == {"from": [0, 1, 2],
                                           "to": [0, 1, 2, 3]}
            kv.close()
        with ShardedMiniKV(config) as kv:
            # constructor re-ran the plan: slot moves are idempotent, so
            # the slots migrated before the crash copy harmlessly again
            assert kv.shard_ids == (0, 1, 2, 3)
            assert snapshot(kv) == expected
            doc = json.load(open(str(tmp_path / "kv.aof") + ".topology"))
            assert doc["migration"] is None

    def test_reopen_repairs_interrupted_remove(self, tmp_path):
        config = MiniKVConfig(shards=3, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            expected = load_keys(kv)
            self._crash_partway(kv, after_slots=2)
            with pytest.raises(RuntimeError, match="injected"):
                kv.remove_shard(1)
            kv.close()
        with ShardedMiniKV(config) as kv:
            assert kv.shard_ids == (0, 2)
            assert snapshot(kv) == expected
            assert not os.path.exists(
                shard_aof_path(str(tmp_path / "kv.aof"), 1))

    def test_replay_identity_after_repair(self, tmp_path):
        config = MiniKVConfig(shards=3, aof_path=str(tmp_path / "kv.aof"),
                              fsync="always")
        with ShardedMiniKV(config) as kv:
            expected = load_keys(kv)
            self._crash_partway(kv, after_slots=4)
            with pytest.raises(RuntimeError):
                kv.add_shard()
            kv.close()
        with ShardedMiniKV(config) as kv:
            assert snapshot(kv) == expected
            kv.set("post-repair", b"w")
            expected["post-repair"] = b"w"
        # one more clean reopen: the repaired AOFs replay identically
        with ShardedMiniKV(config) as kv:
            assert snapshot(kv) == expected


class TestReshardingOverTcp:
    def test_add_and_remove_over_tcp_transport(self, tmp_path):
        with sharded(tmp_path, transport="tcp") as kv:
            expected = load_keys(kv)
            kv.add_shard()
            assert snapshot(kv) == expected
            kv.remove_shard(0)
            assert kv.shard_ids == (1, 2, 3)
            assert snapshot(kv) == expected
