"""Lock-striped keyspace: multi-threaded correctness and striped expiry.

The stripes must be invisible semantically: any interleaving of per-key
commands yields the same final state as some serial order (no lost
updates), cross-key commands see a consistent multi-stripe view, and the
per-stripe expiry cycles together erase exactly what one global cycle
would.
"""

import threading

import pytest

from repro.common.clock import VirtualClock
from repro.minikv import MiniKV, MiniKVConfig
from repro.minikv.expiry import StripedExpiresView


@pytest.fixture(params=[1, 4, 16])
def striped_kv(request):
    kv = MiniKV(MiniKVConfig(stripes=request.param))
    yield kv
    kv.close()


class TestSingleThreadParity:
    """stripes=N must behave exactly like stripes=1 for serial commands."""

    def test_basic_commands_agree_across_stripe_counts(self):
        engines = [
            MiniKV(MiniKVConfig(stripes=n), clock=VirtualClock())
            for n in (1, 4, 16)
        ]
        try:
            for kv in engines:
                for i in range(40):
                    kv.set(f"k{i}", b"v%d" % i)
                kv.hmset("h", {"f1": b"a", "f2": b"b"})
                kv.sadd("s", b"m1", b"m2")
                kv.delete("k0", "k7", "k39", "missing")
                kv.expire("k1", 500.0)
            first = engines[0]
            for kv in engines[1:]:
                assert kv.dbsize() == first.dbsize()
                assert sorted(kv.keys()) == sorted(first.keys())
                assert kv.hgetall("h") == first.hgetall("h")
                assert kv.smembers("s") == first.smembers("s")
                assert kv.ttl("k1") == first.ttl("k1")
                assert kv.get("k3") == first.get("k3")
        finally:
            for kv in engines:
                kv.close()

    def test_info_aggregates_stripes(self):
        kv = MiniKV(MiniKVConfig(stripes=8))
        try:
            for i in range(64):
                kv.set(f"k{i}", b"v", ttl=100.0 if i % 2 else None)
            info = kv.info()
            assert info["keys"] == 64
            assert info["keys_with_expiry"] == 32
            assert info["stripes"] == 8
            assert info["commands_processed"] >= 64
        finally:
            kv.close()


class TestMultiThreaded:
    def test_no_lost_updates_on_disjoint_keys(self, striped_kv):
        threads = 8
        per_thread = 300

        def writer(tid):
            for i in range(per_thread):
                striped_kv.set(f"t{tid}:k{i}", b"%d" % i)

        pool = [threading.Thread(target=writer, args=(t,)) for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert striped_kv.dbsize() == threads * per_thread
        for tid in range(threads):
            assert striped_kv.get(f"t{tid}:k0") == b"0"

    def test_no_lost_updates_on_shared_sets(self, striped_kv):
        threads = 8
        per_thread = 250

        def writer(tid):
            for i in range(per_thread):
                striped_kv.sadd(f"set{i % 10}", f"{tid}:{i}".encode())

        pool = [threading.Thread(target=writer, args=(t,)) for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = sum(len(striped_kv.smembers(f"set{i}")) for i in range(10))
        assert total == threads * per_thread

    def test_concurrent_hash_field_writes_all_land(self, striped_kv):
        threads = 6

        def writer(tid):
            for i in range(200):
                striped_kv.hset("shared", f"t{tid}f{i}", b"x")

        pool = [threading.Thread(target=writer, args=(t,)) for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len(striped_kv.hgetall("shared")) == threads * 200

    def test_cross_stripe_delete_under_concurrent_writes(self, striped_kv):
        """Multi-key DELETE (ordered multi-lock) never deadlocks against
        per-key writers or other multi-key deleters."""
        for i in range(200):
            striped_kv.set(f"d{i}", b"v")
        stop = threading.Event()

        def churner():
            i = 0
            while not stop.is_set():
                striped_kv.set(f"c{i % 50}", b"v")
                striped_kv.delete(f"c{(i + 25) % 50}")
                i += 1

        churn = [threading.Thread(target=churner) for _ in range(3)]
        for t in churn:
            t.start()
        deleters = [
            threading.Thread(
                target=lambda lo=lo: striped_kv.delete(*[f"d{i}" for i in range(lo, lo + 50)])
            )
            for lo in (0, 50, 100, 150)
        ]
        for t in deleters:
            t.start()
        for t in deleters:
            t.join()
        stop.set()
        for t in churn:
            t.join()
        assert striped_kv.keys("d*") == []

    def test_dbsize_consistent_during_flushall(self, striped_kv):
        """FLUSHALL holds every stripe: dbsize can never observe a
        half-cleared keyspace (it is 0 or the full pre-flush count)."""
        for i in range(400):
            striped_kv.set(f"k{i}", b"v")
        sizes = []

        def reader():
            for _ in range(50):
                sizes.append(striped_kv.dbsize())

        r = threading.Thread(target=reader)
        r.start()
        striped_kv.flushall()
        r.join()
        assert all(size in (0, 400) for size in sizes)


class TestStripedExpiry:
    @pytest.mark.parametrize("algorithm", ["lazy", "strict", "heap"])
    def test_expiry_erases_across_all_stripes(self, algorithm):
        clock = VirtualClock()
        kv = MiniKV(
            MiniKVConfig(stripes=8, ttl_algorithm=algorithm), clock=clock
        )
        try:
            for i in range(200):
                kv.set(f"k{i}", b"v", ttl=10.0)
            for i in range(50):
                kv.set(f"keep{i}", b"v")
            clock.advance(60)
            # lazy sampling may need several ticks; strict/heap need one
            for _ in range(400):
                kv.cron()
                clock.advance(0.2)
                if not kv._expires.all_expired(clock.now()):
                    break
            assert kv.dbsize() == 50
            assert sorted(kv.keys()) == sorted(f"keep{i}" for i in range(50))
        finally:
            kv.close()

    def test_purge_expired_returns_all_stripe_victims(self):
        clock = VirtualClock()
        kv = MiniKV(MiniKVConfig(stripes=8), clock=clock)
        try:
            for i in range(100):
                kv.set(f"k{i}", b"v", ttl=5.0)
            clock.advance(10)
            purged = kv.purge_expired()
            assert sorted(purged) == sorted(f"k{i}" for i in range(100))
            assert kv.dbsize() == 0
        finally:
            kv.close()

    def test_expiry_stats_aggregate(self):
        clock = VirtualClock()
        kv = MiniKV(MiniKVConfig(stripes=4, strict_ttl=True), clock=clock)
        try:
            for i in range(40):
                kv.set(f"k{i}", b"v", ttl=1.0)
            clock.advance(5)
            erased = kv.cron()
            assert erased == 40
            stats = kv.expiry_stats
            assert stats.deleted == 40
            assert stats.ticks >= 4  # one per stripe
        finally:
            kv.close()

    def test_striped_expires_view_reads_union(self):
        kv = MiniKV(MiniKVConfig(stripes=4))
        try:
            assert isinstance(kv._expires, StripedExpiresView)
            kv.set("a", b"1", ttl=50.0)
            kv.set("b", b"2", ttl=60.0)
            kv.set("c", b"3")
            assert len(kv._expires) == 2
            assert "a" in kv._expires and "c" not in kv._expires
            assert kv._expires.deadline("b") is not None
            assert kv._expires.all_expired(kv.clock.now() + 100) is not None
        finally:
            kv.close()


class TestScanSnapshotCache:
    def test_full_traversal_with_cached_snapshot(self, striped_kv):
        for i in range(95):
            striped_kv.set(f"k{i}", b"v")
        seen = []
        cursor = 0
        while True:
            cursor, batch = striped_kv.scan(cursor, count=10)
            seen.extend(batch)
            if cursor == 0:
                break
        assert sorted(seen) == sorted(f"k{i}" for i in range(95))

    def test_scan_reuses_snapshot_not_rebuilds(self):
        kv = MiniKV(MiniKVConfig(stripes=4))
        try:
            for i in range(50):
                kv.set(f"k{i}", b"v")
            cursor, _ = kv.scan(0, count=10)
            assert len(kv._scan_snapshots) == 1
            generation = cursor >> 32
            snapshot = kv._scan_snapshots[generation]
            cursor, _ = kv.scan(cursor, count=10)
            assert kv._scan_snapshots[generation] is snapshot  # no rebuild
            while cursor:
                cursor, _ = kv.scan(cursor, count=10)
            assert generation not in kv._scan_snapshots  # dropped at end
        finally:
            kv.close()

    def test_keys_deleted_mid_scan_are_skipped(self, striped_kv):
        for i in range(60):
            striped_kv.set(f"k{i}", b"v")
        cursor, first = striped_kv.scan(0, count=10)
        survivors = set(striped_kv.keys()) - set(first)
        doomed = sorted(survivors)[:20]
        striped_kv.delete(*doomed)
        seen = list(first)
        while cursor:
            cursor, batch = striped_kv.scan(cursor, count=10)
            seen.extend(batch)
        assert set(doomed).isdisjoint(seen[len(first):])
        assert set(striped_kv.keys()) <= set(seen)

    def test_concurrent_cursors_do_not_interfere(self, striped_kv):
        for i in range(40):
            striped_kv.set(f"k{i}", b"v")
        cursor_a, batch_a = striped_kv.scan(0, count=5)
        cursor_b, batch_b = striped_kv.scan(0, count=5)
        while cursor_a:
            cursor_a, batch = striped_kv.scan(cursor_a, count=5)
            batch_a.extend(batch)
        while cursor_b:
            cursor_b, batch = striped_kv.scan(cursor_b, count=5)
            batch_b.extend(batch)
        assert sorted(batch_a) == sorted(batch_b) == sorted(striped_kv.keys())

    def test_abandoned_snapshots_are_capped(self, striped_kv):
        from repro.minikv.engine import _SCAN_SNAPSHOT_CAP

        for i in range(40):
            striped_kv.set(f"k{i}", b"v")
        for _ in range(_SCAN_SNAPSHOT_CAP + 30):  # abandon in-flight cursors
            striped_kv.scan(0, count=5)
        assert len(striped_kv._scan_snapshots) <= _SCAN_SNAPSHOT_CAP

    def test_evicted_cursor_restarts_never_misses_keys(self, striped_kv):
        """A cursor whose snapshot was evicted restarts its traversal:
        stable keys may repeat but none are silently skipped."""
        from repro.minikv.engine import _SCAN_SNAPSHOT_CAP

        for i in range(30):
            striped_kv.set(f"k{i}", b"v")
        cursor, first = striped_kv.scan(0, count=5)
        for _ in range(_SCAN_SNAPSHOT_CAP + 5):  # evict the live snapshot
            striped_kv.scan(0, count=1)
        seen = list(first)
        while cursor:
            cursor, batch = striped_kv.scan(cursor, count=5)
            seen.extend(batch)
        assert set(seen) == set(striped_kv.keys())  # complete, maybe dup'd
