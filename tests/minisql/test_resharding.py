"""Online resharding of ShardedDatabase: growth, drain, anchor handover.

The SQL twin of the minikv resharding suite, plus the SQL-only
machinery: a new shard bootstraps the full catalog (tables, secondary
indices, TTL sweepers) from a template shard before any row moves, and
pk-less tables — which live wholesale on the anchor shard (the smallest
live id) — hand over to the next-smallest survivor when their anchor is
removed.
"""

import json

import pytest

from repro.minisql import MiniSQLConfig, ShardedDatabase
from repro.minisql.expr import Cmp
from repro.minisql.schema import Column
from repro.minisql.sharded import SQLShardConnectionError
from repro.minisql.types import INTEGER, TEXT

COLUMNS = [Column("key", TEXT, nullable=False), Column("val", TEXT),
           Column("n", INTEGER)]


def sharded(tmp_path, shards=3, **overrides):
    overrides.setdefault("fsync", "always")
    return ShardedDatabase(MiniSQLConfig(
        shards=shards, wal_path=str(tmp_path / "db.wal"), **overrides,
    ))


def load_rows(db, count=120):
    db.create_table("t", COLUMNS, primary_key="key")
    pipe = db.pipeline()
    for i in range(count):
        pipe.insert("t", {"key": f"user{i}", "val": f"v{i}", "n": i})
    pipe.execute()
    return sorted((f"user{i}", f"v{i}", i) for i in range(count))


def snapshot(db):
    return sorted((r["key"], r["val"], r["n"]) for r in db.select("t"))


class TestAddShard:
    def test_add_shard_keeps_every_row(self, tmp_path):
        with sharded(tmp_path) as db:
            expected = load_rows(db)
            stats = db.add_shard()
            assert db.shard_count == 4
            assert snapshot(db) == expected
            assert 0 < stats["keys_moved"] < len(expected) * 0.6

    def test_new_shard_bootstraps_catalog(self, tmp_path):
        with sharded(tmp_path) as db:
            load_rows(db)
            db.create_index("t_n", "t", "n")
            db.add_shard()
            # secondary-index queries and keyed lookups span the grown
            # deployment, including rows that migrated to the new shard
            assert len(db.select("t", Cmp("n", ">=", 0))) == 120
            for i in (0, 17, 63, 119):
                rows = db.select("t", Cmp("key", "=", f"user{i}"))
                assert [r["n"] for r in rows] == [i]
            db.insert("t", {"key": "fresh", "val": "x", "n": 999})
            assert db.select("t", Cmp("key", "=", "fresh"))[0]["n"] == 999

    def test_aggregates_after_growth(self, tmp_path):
        with sharded(tmp_path) as db:
            load_rows(db)
            db.add_shard()
            assert db.count("t") == 120
            assert db.aggregate("t", "sum", column="n") == sum(range(120))

    def test_add_shard_is_durable(self, tmp_path):
        config = MiniSQLConfig(shards=3, wal_path=str(tmp_path / "db.wal"),
                               fsync="always")
        with ShardedDatabase(config) as db:
            expected = load_rows(db)
            db.add_shard()
        with ShardedDatabase(config) as db:  # stale shards=3 in the config
            assert db.shard_ids == (0, 1, 2, 3)
            assert snapshot(db) == expected


class TestRemoveShard:
    def test_remove_shard_drains_rows(self, tmp_path):
        with sharded(tmp_path) as db:
            expected = load_rows(db)
            db.remove_shard(1)
            assert db.shard_ids == (0, 2)
            assert snapshot(db) == expected
            assert db.count("t") == 120

    def test_removing_the_anchor_hands_over_pkless_tables(self, tmp_path):
        with sharded(tmp_path) as db:
            expected = load_rows(db)
            db.create_table("log", [Column("line", TEXT)])  # no primary key
            for i in range(10):
                db.insert("log", {"line": f"event{i}"})
            db.remove_shard(0)  # the anchor: pk-less rows live there
            assert db.shard_ids == (1, 2)
            assert snapshot(db) == expected
            assert sorted(r["line"] for r in db.select("log")) == \
                sorted(f"event{i}" for i in range(10))
            db.insert("log", {"line": "after"})
            assert len(db.select("log")) == 11

    def test_cannot_remove_last_or_unknown_shard(self, tmp_path):
        with sharded(tmp_path, shards=2) as db:
            with pytest.raises(SQLShardConnectionError):
                db.remove_shard(7)
            db.remove_shard(1)
            with pytest.raises(SQLShardConnectionError):
                db.remove_shard(0)


class TestCrashMidMigration:
    def test_reopen_repairs_interrupted_add(self, tmp_path):
        config = MiniSQLConfig(shards=3, wal_path=str(tmp_path / "db.wal"),
                               fsync="always")
        with ShardedDatabase(config) as db:
            expected = load_rows(db)
            real = db._migrate_slot
            calls = {"n": 0}

            def flaky(*args, **kwargs):
                calls["n"] += 1
                if calls["n"] > 4:
                    raise RuntimeError("injected crash mid-migration")
                return real(*args, **kwargs)

            db._migrate_slot = flaky
            with pytest.raises(RuntimeError, match="injected"):
                db.add_shard()
            marker = json.load(open(str(tmp_path / "db.wal") + ".topology"))
            assert marker["migration"] == {"from": [0, 1, 2],
                                           "to": [0, 1, 2, 3]}
            db.close()
        with ShardedDatabase(config) as db:
            assert db.shard_ids == (0, 1, 2, 3)
            assert snapshot(db) == expected
            db.insert("t", {"key": "post", "val": "repair", "n": -1})
            expected.append(("post", "repair", -1))
        with ShardedDatabase(config) as db:  # repaired WALs replay cleanly
            assert snapshot(db) == sorted(expected)


class TestReshardingOverTcp:
    def test_add_and_remove_over_tcp_transport(self, tmp_path):
        with sharded(tmp_path, transport="tcp") as db:
            expected = load_rows(db, 60)
            db.add_shard()
            assert snapshot(db) == expected
            db.remove_shard(1)
            assert db.shard_ids == (0, 2, 3)
            assert snapshot(db) == expected
