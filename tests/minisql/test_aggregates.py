"""Aggregate queries (COUNT/SUM/MIN/MAX/AVG, GROUP BY)."""

import pytest

from repro.common.errors import ParseError, SQLError
from repro.minisql import Cmp, Column, Database, FLOAT, INTEGER, TEXT
from repro.minisql.sql import execute


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "sales",
        [
            Column("id", INTEGER, nullable=False),
            Column("region", TEXT),
            Column("amount", FLOAT),
        ],
        primary_key="id",
    )
    rows = [
        (0, "eu", 10.0), (1, "eu", 20.0), (2, "us", 5.0),
        (3, "us", 15.0), (4, "eu", 30.0), (5, "apac", None),
    ]
    for row_id, region, amount in rows:
        database.insert("sales", {"id": row_id, "region": region, "amount": amount})
    yield database
    database.close()


class TestProgrammaticAggregates:
    def test_count_star_counts_rows(self, db):
        assert db.aggregate("sales", "count") == 6

    def test_count_column_skips_nulls(self, db):
        assert db.aggregate("sales", "count", column="amount") == 5

    def test_sum_min_max_avg(self, db):
        assert db.aggregate("sales", "sum", column="amount") == 80.0
        assert db.aggregate("sales", "min", column="amount") == 5.0
        assert db.aggregate("sales", "max", column="amount") == 30.0
        assert db.aggregate("sales", "avg", column="amount") == 16.0

    def test_where_filter(self, db):
        assert db.aggregate("sales", "sum", column="amount",
                            where=Cmp("region", "=", "eu")) == 60.0

    def test_group_by(self, db):
        grouped = db.aggregate("sales", "count", group_by="region")
        assert grouped == {"eu": 3, "us": 2, "apac": 1}
        sums = db.aggregate("sales", "sum", column="amount", group_by="region")
        assert sums == {"eu": 60.0, "us": 20.0, "apac": None}

    def test_empty_aggregates(self, db):
        assert db.aggregate("sales", "count", where=Cmp("id", "=", 999)) == 0
        assert db.aggregate("sales", "sum", column="amount",
                            where=Cmp("id", "=", 999)) is None

    def test_sum_requires_column(self, db):
        with pytest.raises(SQLError):
            db.aggregate("sales", "sum")

    def test_unknown_aggregate(self, db):
        with pytest.raises(SQLError):
            db.aggregate("sales", "median", column="amount")


class TestSQLAggregates:
    def test_count_star(self, db):
        assert execute(db, "SELECT COUNT(*) FROM sales") == 6

    def test_count_column(self, db):
        assert execute(db, "SELECT COUNT(amount) FROM sales") == 5

    def test_sum_with_where(self, db):
        assert execute(db, "SELECT SUM(amount) FROM sales WHERE region = 'eu'") == 60.0

    def test_group_by(self, db):
        got = execute(db, "SELECT COUNT(*) FROM sales GROUP BY region")
        assert got == {"eu": 3, "us": 2, "apac": 1}

    def test_avg(self, db):
        assert execute(db, "SELECT AVG(amount) FROM sales") == 16.0

    def test_sum_star_rejected(self, db):
        with pytest.raises(ParseError):
            execute(db, "SELECT SUM(*) FROM sales")

    def test_group_by_without_aggregate_rejected(self, db):
        with pytest.raises(ParseError):
            execute(db, "SELECT region FROM sales GROUP BY region")


class TestRegulatorCensus:
    """The GDPR use case: records-per-customer without reading data."""

    def test_records_held_per_user(self):
        from repro.bench.records import RecordCorpusConfig, generate_corpus
        from repro.clients import FeatureSet, SQLGDPRClient

        client = SQLGDPRClient(FeatureSet.none())
        try:
            client.load_records(
                generate_corpus(RecordCorpusConfig(record_count=60, user_count=6))
            )
            census = client.db.aggregate("personal_records", "count", group_by="usr")
            assert len(census) == 6
            assert all(count == 10 for count in census.values())
        finally:
            client.close()
