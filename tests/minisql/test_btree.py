"""B+tree and inverted index tests, including a model-based property test."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConstraintError
from repro.minisql.btree import BTreeIndex, InvertedIndex, ORDER


class TestBTreeBasics:
    def test_search_empty(self):
        assert BTreeIndex().search("x") == []

    def test_insert_search(self):
        tree = BTreeIndex()
        tree.insert("b", 1)
        tree.insert("a", 2)
        tree.insert("b", 3)
        assert tree.search("a") == [2]
        assert sorted(tree.search("b")) == [1, 3]
        assert len(tree) == 3
        assert tree.distinct_keys == 2

    def test_none_keys_not_indexed(self):
        tree = BTreeIndex()
        tree.insert(None, 1)
        assert len(tree) == 0
        assert tree.remove(None, 1) is False

    def test_remove(self):
        tree = BTreeIndex()
        tree.insert("a", 1)
        tree.insert("a", 2)
        assert tree.remove("a", 1) is True
        assert tree.search("a") == [2]
        assert tree.remove("a", 99) is False
        assert tree.remove("ghost", 1) is False
        assert tree.remove("a", 2) is True
        assert tree.distinct_keys == 0

    def test_unique_rejects_duplicates(self):
        tree = BTreeIndex(unique=True)
        tree.insert("k", 1)
        with pytest.raises(ConstraintError):
            tree.insert("k", 2)

    def test_splits_grow_height(self):
        tree = BTreeIndex()
        for i in range(ORDER * ORDER):
            tree.insert(i, i)
        assert tree.height >= 2
        for i in range(0, ORDER * ORDER, 97):
            assert tree.search(i) == [i]

    def test_size_bytes_grows(self):
        tree = BTreeIndex()
        empty = tree.size_bytes()
        for i in range(1000):
            tree.insert(i, i)
        assert tree.size_bytes() > empty + 1000 * 16


class TestBTreeRangeScan:
    def _tree(self, n=500):
        tree = BTreeIndex()
        order = list(range(n))
        random.Random(1).shuffle(order)
        for i in order:
            tree.insert(i, i * 10)
        return tree

    def test_full_scan_sorted(self):
        tree = self._tree(300)
        keys = [k for k, _ in tree.range_scan()]
        assert keys == sorted(keys) == list(range(300))

    def test_bounded_scan_inclusive(self):
        tree = self._tree()
        got = [k for k, _ in tree.range_scan(10, 20)]
        assert got == list(range(10, 21))

    def test_bounded_scan_exclusive(self):
        tree = self._tree()
        got = [k for k, _ in tree.range_scan(10, 20, inclusive=(False, False))]
        assert got == list(range(11, 20))

    def test_open_ended_scans(self):
        tree = self._tree(100)
        assert [k for k, _ in tree.range_scan(lo=95)] == [95, 96, 97, 98, 99]
        assert [k for k, _ in tree.range_scan(hi=4)] == [0, 1, 2, 3, 4]

    def test_scan_with_duplicates(self):
        tree = BTreeIndex()
        for rid in range(5):
            tree.insert("dup", rid)
        got = [(k, r) for k, r in tree.range_scan()]
        assert len(got) == 5
        assert all(k == "dup" for k, _ in got)

    def test_items_iterates_all(self):
        tree = self._tree(50)
        assert len(list(tree.items())) == 50


@st.composite
def _operations(draw):
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove"]),
            st.integers(0, 30),   # key
            st.integers(0, 5),    # rid
        ),
        max_size=200,
    ))
    return ops


class TestBTreeModelBased:
    @given(_operations())
    @settings(max_examples=100)
    def test_matches_dict_of_lists_model(self, ops):
        tree = BTreeIndex()
        model: dict = {}
        for op, key, rid in ops:
            if op == "insert":
                tree.insert(key, rid)
                model.setdefault(key, []).append(rid)
            else:
                removed = tree.remove(key, rid)
                expect = key in model and rid in model[key]
                assert removed == expect
                if expect:
                    model[key].remove(rid)
                    if not model[key]:
                        del model[key]
        for key, rids in model.items():
            assert sorted(tree.search(key)) == sorted(rids)
        assert len(tree) == sum(len(v) for v in model.values())
        assert tree.distinct_keys == len(model)
        scanned = [k for k, _ in tree.range_scan()]
        assert scanned == sorted(scanned)

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300, unique=True))
    @settings(max_examples=50)
    def test_sorted_iteration_after_bulk_insert(self, keys):
        tree = BTreeIndex()
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _ in tree.range_scan()] == sorted(keys)


class TestInvertedIndex:
    def test_insert_search(self):
        index = InvertedIndex()
        index.insert(("ads", "2fa"), 1)
        index.insert(("ads",), 2)
        assert index.search("ads") == [1, 2]
        assert index.search("2fa") == [1]
        assert index.search("ghost") == []
        assert len(index) == 3
        assert index.distinct_keys == 2

    def test_none_and_duplicate_tolerant(self):
        index = InvertedIndex()
        index.insert(None, 1)
        assert len(index) == 0
        index.insert(("a",), 1)
        index.insert(("a",), 1)  # same (token, rid) counted once
        assert len(index) == 1

    def test_remove(self):
        index = InvertedIndex()
        index.insert(("a", "b"), 1)
        assert index.remove(("a",), 1) is True
        assert index.search("a") == []
        assert index.search("b") == [1]
        assert index.remove(("ghost",), 1) is False
        assert index.remove(None, 1) is False

    def test_size_bytes_scales_with_postings(self):
        index = InvertedIndex()
        empty = index.size_bytes()
        for rid in range(100):
            index.insert(("token",), rid)
        assert index.size_bytes() > empty + 100 * 16
