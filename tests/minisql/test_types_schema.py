"""Tests for minisql column types, schemas and the catalog."""

import pytest

from repro.common.errors import CatalogError, TypeMismatchError
from repro.minisql.schema import Catalog, Column, IndexInfo, TableSchema
from repro.minisql.types import (
    BYTES,
    FLOAT,
    INTEGER,
    TEXT,
    TEXT_LIST,
    TIMESTAMP,
    type_by_name,
)


class TestTypes:
    def test_integer_accepts_ints_only(self):
        assert INTEGER.validate(5) == 5
        for bad in (5.0, "5", True, None):
            with pytest.raises(TypeMismatchError):
                INTEGER.validate(bad)

    def test_float_coerces_ints(self):
        assert FLOAT.validate(5) == 5.0
        assert FLOAT.validate(2.5) == 2.5
        with pytest.raises(TypeMismatchError):
            FLOAT.validate("2.5")
        with pytest.raises(TypeMismatchError):
            FLOAT.validate(True)

    def test_text(self):
        assert TEXT.validate("hello") == "hello"
        with pytest.raises(TypeMismatchError):
            TEXT.validate(b"hello")

    def test_bytes(self):
        assert BYTES.validate(b"x") == b"x"
        assert BYTES.validate(bytearray(b"x")) == b"x"
        with pytest.raises(TypeMismatchError):
            BYTES.validate("x")

    def test_timestamp(self):
        assert TIMESTAMP.validate(5) == 5.0
        with pytest.raises(TypeMismatchError):
            TIMESTAMP.validate("5")

    def test_text_list_from_string_and_sequence(self):
        assert TEXT_LIST.validate("a,b") == ("a", "b")
        assert TEXT_LIST.validate(["a", "b"]) == ("a", "b")
        assert TEXT_LIST.validate("") == ()
        assert TEXT_LIST.validate(()) == ()

    def test_text_list_rejects_commas_in_tokens(self):
        with pytest.raises(TypeMismatchError):
            TEXT_LIST.validate(["a,b"])
        with pytest.raises(TypeMismatchError):
            TEXT_LIST.validate([1, 2])

    def test_storage_bytes_scale_with_content(self):
        assert TEXT.storage_bytes("abcd") > TEXT.storage_bytes("a")
        assert TEXT_LIST.storage_bytes(("abc", "de")) > TEXT_LIST.storage_bytes(("a",))
        assert INTEGER.storage_bytes(1) == 8

    def test_type_by_name(self):
        assert type_by_name("integer") is INTEGER
        assert type_by_name("TEXT_LIST") is TEXT_LIST
        with pytest.raises(TypeMismatchError):
            type_by_name("VARCHAR")


class TestColumn:
    def test_nullable_accepts_none(self):
        assert Column("c", TEXT).validate(None) is None

    def test_not_null_rejects_none(self):
        with pytest.raises(TypeMismatchError):
            Column("c", TEXT, nullable=False).validate(None)


class TestTableSchema:
    def _schema(self):
        return TableSchema(
            "t",
            [Column("id", INTEGER, nullable=False), Column("name", TEXT)],
            primary_key="id",
        )

    def test_column_lookup(self):
        schema = self._schema()
        assert schema.column_index("id") == 0
        assert schema.column("name").type is TEXT
        with pytest.raises(CatalogError):
            schema.column_index("missing")

    def test_validate_row_fills_missing_with_null(self):
        schema = self._schema()
        assert schema.validate_row({"id": 1}) == (1, None)

    def test_validate_row_rejects_unknown_columns(self):
        with pytest.raises(CatalogError):
            self._schema().validate_row({"id": 1, "ghost": 2})

    def test_validate_row_enforces_not_null(self):
        with pytest.raises(TypeMismatchError):
            self._schema().validate_row({"name": "x"})  # id missing

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", TEXT), Column("a", TEXT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [])

    def test_pk_must_be_a_column(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", TEXT)], primary_key="b")

    def test_row_bytes_counts_header_and_values(self):
        schema = self._schema()
        small = schema.row_bytes((1, "a"))
        big = schema.row_bytes((1, "a" * 100))
        assert big - small == 99
        assert small >= 24  # header


class TestCatalog:
    def test_table_lifecycle(self):
        catalog = Catalog()
        schema = TableSchema("t", [Column("a", TEXT)])
        catalog.add_table(schema)
        assert catalog.table("t") is schema
        assert catalog.tables() == ["t"]
        with pytest.raises(CatalogError):
            catalog.add_table(schema)
        catalog.drop_table("t")
        with pytest.raises(CatalogError):
            catalog.table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_index_lifecycle(self):
        catalog = Catalog()
        catalog.add_table(TableSchema("t", [Column("a", TEXT)]))
        info = IndexInfo("idx_a", "t", "a", "btree")
        catalog.add_index(info)
        assert catalog.index("idx_a") is info
        assert catalog.indices_for("t") == [info]
        with pytest.raises(CatalogError):
            catalog.add_index(info)
        catalog.drop_index("idx_a")
        assert catalog.indices_for("t") == []
        with pytest.raises(CatalogError):
            catalog.drop_index("idx_a")

    def test_index_validates_table_and_column(self):
        catalog = Catalog()
        catalog.add_table(TableSchema("t", [Column("a", TEXT)]))
        with pytest.raises(CatalogError):
            catalog.add_index(IndexInfo("i", "ghost", "a", "btree"))
        with pytest.raises(CatalogError):
            catalog.add_index(IndexInfo("i", "t", "ghost", "btree"))

    def test_drop_table_drops_its_indices(self):
        catalog = Catalog()
        catalog.add_table(TableSchema("t", [Column("a", TEXT)]))
        catalog.add_index(IndexInfo("idx_a", "t", "a", "btree"))
        catalog.drop_table("t")
        with pytest.raises(CatalogError):
            catalog.index("idx_a")
