"""ShardedDatabase: routing, gather merges, per-shard WAL recovery.

The contract under test is docs/sharding.md's minisql half: the sharded
front exposes the ``Database`` statement surface, DDL fans out, rows
route by primary key, point statements stay on one worker, cross-shard
statements merge per-shard results, and a worker that dies is respawned
with its shard rebuilt from its own WAL while the other shards keep
serving.
"""

import pytest

from repro.common.errors import ConfigurationError, ConstraintError, SQLError
from repro.minisql import (
    Database,
    MiniSQLConfig,
    ShardedDatabase,
    SQLShardConnectionError,
    open_database,
    shard_store_path,
)
from repro.minisql.expr import And, Cmp, Not, Or
from repro.minisql.schema import Column
from repro.minisql.types import FLOAT, TEXT


def sharded(tmp_path=None, shards=3, **overrides):
    config = MiniSQLConfig(
        shards=shards,
        wal_path=(str(tmp_path / "db.wal") if tmp_path is not None else None),
        **overrides,
    )
    return ShardedDatabase(config)


COLUMNS = [
    Column("key", TEXT, nullable=False),
    Column("val", TEXT),
    Column("n", FLOAT),
]


def load(db, count=30):
    db.create_table("t", COLUMNS, primary_key="key")
    for i in range(count):
        db.insert("t", {"key": f"k{i}", "val": f"v{i % 3}", "n": float(i)})


class TestFactoryAndConfig:
    def test_open_database_default_is_in_process(self):
        with open_database(MiniSQLConfig()) as db:
            assert isinstance(db, Database)

    def test_open_database_sharded(self):
        with open_database(MiniSQLConfig(shards=2)) as db:
            assert isinstance(db, ShardedDatabase)
            assert db.shard_count == 2

    def test_facade_rejects_sharded_config(self):
        with pytest.raises(ConfigurationError):
            Database(MiniSQLConfig(shards=2))

    def test_custom_clock_requires_one_shard(self):
        from repro.common.clock import VirtualClock

        with pytest.raises(ConfigurationError):
            open_database(MiniSQLConfig(shards=2), clock=VirtualClock())

    def test_invalid_shard_counts_rejected_everywhere(self):
        for shards in (0, -1):
            with pytest.raises(ConfigurationError):
                open_database(MiniSQLConfig(shards=shards))
            with pytest.raises(ConfigurationError):
                Database(MiniSQLConfig(shards=shards))
            with pytest.raises(ConfigurationError):
                ShardedDatabase(MiniSQLConfig(shards=shards))


class TestRoutingAndMerges:
    def test_rows_spread_and_point_statements_route(self):
        with sharded() as db:
            load(db, 60)
            # rows actually spread across workers (crc32 is uniform
            # enough that 60 keys cannot all land on one of 3 shards)
            per_shard = [
                db._call(index, "count", "t") for index in range(db.shard_count)
            ]
            assert sum(per_shard) == 60
            assert all(count > 0 for count in per_shard)
            # a point SELECT touches exactly its key's shard
            rows = db.select("t", Cmp("key", "=", "k17"))
            assert [row["val"] for row in rows] == ["v2"]
            owner = db._shard_for_value("t", "k17")
            assert db._call(owner, "count", "t", Cmp("key", "=", "k17")) == 1

    def test_fanout_select_merges_and_orders(self):
        with sharded() as db:
            load(db)
            rows = db.select("t", Cmp("val", "=", "v1"))
            assert sorted(row["key"] for row in rows) == sorted(
                f"k{i}" for i in range(30) if i % 3 == 1
            )
            ordered = db.select("t", order_by="n", descending=True, limit=4)
            assert [row["key"] for row in ordered] == ["k29", "k28", "k27", "k26"]
            # the order column is fetched for the merge, then stripped
            projected = db.select("t", columns=["key"], order_by="n", limit=3)
            assert projected == [{"key": "k0"}, {"key": "k1"}, {"key": "k2"}]

    def test_select_point_routes_on_pk_and_fans_out_otherwise(self):
        with sharded() as db:
            load(db)
            assert db.select_point("t", "key", "k5")[0]["n"] == 5.0
            by_val = db.select_point("t", "val", "v0")
            assert len(by_val) == 10

    def test_count_and_aggregates_merge(self):
        with sharded() as db:
            load(db)
            assert db.count("t") == 30
            assert db.count("t", Cmp("key", "=", "k3")) == 1
            assert db.aggregate("t", "count") == 30
            assert db.aggregate("t", "sum", "n") == sum(range(30))
            assert db.aggregate("t", "min", "n") == 0.0
            assert db.aggregate("t", "max", "n") == 29.0
            assert db.aggregate("t", "avg", "n") == pytest.approx(14.5)
            groups = db.aggregate("t", "count", group_by="val")
            assert groups == {"v0": 10, "v1": 10, "v2": 10}
            sums = db.aggregate("t", "sum", "n", group_by="val")
            assert sums["v0"] == sum(i for i in range(30) if i % 3 == 0)
            avgs = db.aggregate("t", "avg", "n", group_by="val")
            assert avgs["v1"] == pytest.approx(
                sum(i for i in range(30) if i % 3 == 1) / 10
            )

    def test_aggregate_empty_set_semantics_match_facade(self):
        with sharded() as db, Database() as plain:
            for target in (db, plain):
                target.create_table("t", COLUMNS, primary_key="key")
            for target in (db, plain):
                assert target.aggregate("t", "count") == 0
                assert target.aggregate("t", "sum", "n") is None
                assert target.aggregate("t", "min", "n") is None
                assert target.aggregate("t", "avg", "n") is None

    def test_update_and_delete_route_and_fan_out(self):
        with sharded() as db:
            load(db)
            assert db.update("t", {"val": "patched"}, Cmp("key", "=", "k4")) == 1
            assert db.select_point("t", "key", "k4")[0]["val"] == "patched"
            assert db.update("t", {"val": "bulk"}, Cmp("n", ">=", 20.0)) == 10
            assert db.delete("t", Cmp("key", "=", "k0")) == 1
            assert db.delete("t", Cmp("val", "=", "bulk")) == 10
            assert db.count("t") == 19

    def test_primary_key_reassignment_refused(self):
        with sharded() as db:
            load(db, 5)
            with pytest.raises(SQLError):
                db.update("t", {"key": "moved"}, Cmp("key", "=", "k1"))
            with pytest.raises(SQLError):
                db.pipeline().update("t", {"key": "moved"})

    def test_unique_constraint_survives_routing(self):
        """The same primary key always routes to the same shard, so the
        per-shard unique index still enforces global uniqueness."""
        with sharded() as db:
            load(db, 5)
            with pytest.raises(ConstraintError):
                db.insert("t", {"key": "k2", "val": "dup"})

    def test_numeric_primary_keys_route_canonically(self):
        """Routing hashes the type-canonicalized pk value: the int an
        INSERT carries and the coerced float a later point statement
        carries must land on the same shard."""
        with sharded() as db:
            db.create_table(
                "m", [Column("id", FLOAT, nullable=False), Column("val", TEXT)],
                primary_key="id",
            )
            for i in range(20):
                db.insert("m", {"id": i, "val": f"v{i}"})  # ints coerce to floats
            for i in range(20):
                # the stored (canonical) value finds its row...
                assert db.select("m", Cmp("id", "=", float(i)))[0]["val"] == f"v{i}"
                # ...and so does the raw int form a caller might re-use
                assert db.select_point("m", "id", i)[0]["val"] == f"v{i}"
            assert db.update("m", {"val": "patched"}, Cmp("id", "=", 3.0)) == 1
            assert db.delete("m", Cmp("id", "=", 3)) == 1
            # re-inserting an equal key in the *other* numeric form must
            # violate uniqueness, not fork the key onto a second shard
            with pytest.raises(ConstraintError):
                db.insert("m", {"id": 4, "val": "dup"})
            assert db.count("m") == 19

    def test_table_without_primary_key_lives_on_shard_zero(self):
        with sharded() as db:
            db.create_table("logs", [Column("line", TEXT)])
            for i in range(10):
                db.insert("logs", {"line": f"l{i}"})
            assert db._call(0, "count", "logs") == 10
            assert db.count("logs") == 10

    def test_statement_errors_cross_the_process_boundary(self):
        with sharded() as db:
            load(db, 5)
            with pytest.raises(SQLError):
                db.select("nope")
            with pytest.raises(SQLError):
                db.aggregate("t", "median", "n")

    def test_ddl_fans_out_and_catalog_merges(self):
        with sharded() as db:
            load(db)
            db.create_index("idx_val", "t", "val")
            assert "idx_val" in {
                info.name for info in db.catalog.indices_for("t")
            }
            # the index exists on every shard (EXPLAIN is answered per
            # shard with identical plans)
            assert "idx_val" in db.explain("t", Cmp("val", "=", "v0"))
            db.drop_index("idx_val")
            assert "idx_val" not in {
                info.name for info in db.catalog.indices_for("t")
            }
            db.drop_table("t")
            assert db.catalog.tables() == []

    def test_interactive_transactions_refused(self):
        with sharded() as db:
            load(db, 5)
            with pytest.raises(SQLError):
                db.begin()
            with pytest.raises(SQLError):
                db.transaction(write=("t",))
            with pytest.raises(SQLError):
                db.snapshot_reader()

    def test_introspection_merges(self):
        with sharded() as db:
            load(db)
            stats = db.table_stats("t")
            assert stats["live_rows"] == 30
            assert stats["total_bytes"] > 0
            info = db.info()
            assert info["shards"] == 3
            assert info["tables"] == ["t"]
            assert info["statements"] == sum(info["statements_per_shard"])
            usage = db.disk_usage()
            assert usage["heap_bytes"] > 0
            assert db.vacuum() >= 0


class TestShardedSQLPipeline:
    def test_batch_matches_unsharded_results(self):
        with sharded() as db, Database() as plain:
            for target in (db, plain):
                target.create_table("t", COLUMNS, primary_key="key")
                pipe = target.pipeline() if target is db else None
                for i in range(40):
                    row = {"key": f"k{i}", "val": f"v{i % 3}", "n": float(i)}
                    if pipe is not None:
                        pipe.insert("t", row)
                    else:
                        target.insert("t", row)
                if pipe is not None:
                    pipe.execute()
            pipe = db.pipeline()
            pipe.select_point("t", "key", "k5")
            pipe.count("t")
            pipe.update("t", {"val": "zz"}, Cmp("key", "=", "k6"))
            pipe.select("t", Cmp("val", "=", "v0"), columns=["key"])
            pipe.delete("t", Cmp("key", "=", "k7"))
            results = pipe.execute()
            assert results[0][0]["n"] == 5.0
            assert results[1] == 40
            assert results[2] == 1
            # k6's update queued *before* the select on k6's shard, so
            # the per-shard transaction order makes the select see it
            assert sorted(r["key"] for r in results[3]) == sorted(
                f"k{i}" for i in range(40) if i % 3 == 0 and i != 6
            )
            assert results[4] == 1
            assert plain.count("t") == 40  # the unsharded twin untouched

    def test_error_captured_per_slot(self):
        with sharded() as db:
            load(db, 10)
            pipe = db.pipeline()
            pipe.select_point("t", "key", "k1")
            pipe.insert("t", {"key": "k1", "val": "dup"})  # unique violation
            pipe.insert("t", {"key": "fresh", "val": "new"})
            results = pipe.execute(raise_on_error=False)
            assert results[0][0]["key"] == "k1"
            assert isinstance(results[1], ConstraintError)
            assert results[2] >= 0  # the rid: the batch did not stop
            assert db.count("t", Cmp("key", "=", "fresh")) == 1
            with pytest.raises(ConstraintError):
                db.pipeline().insert("t", {"key": "k1", "val": "dup"}).execute()

    def test_fanout_statements_occupy_one_slot(self):
        with sharded() as db:
            load(db)
            pipe = db.pipeline()
            assert len(pipe) == 0
            pipe.count("t")                      # fans out, one slot
            pipe.update("t", {"val": "all"})     # fans out, one slot
            pipe.select("t", limit=None)         # fans out, one slot
            assert len(pipe) == 3
            results = pipe.execute()
            assert results[0] == 30
            assert results[1] == 30
            assert len(results[2]) == 30
            assert pipe.execute() == []  # queue drained, object reusable

    def test_fanout_select_limit_recut_at_gather(self):
        """A fan-out select's limit bounds the merged result, not each
        shard's contribution (shards * limit rows would leak out)."""
        with sharded() as db:
            load(db)
            results = db.pipeline().select("t", limit=5).execute()
            assert len(results[0]) == 5
            # matches the front's single-statement semantics
            assert len(db.select("t", limit=5)) == 5


class TestRecovery:
    def test_cold_restart_replays_every_shard(self, tmp_path):
        import os

        config = MiniSQLConfig(shards=3, wal_path=str(tmp_path / "db.wal"),
                               fsync="always", wal_batch_size=16)
        with ShardedDatabase(config) as db:
            load(db, 45)
            for index in range(3):
                assert os.path.exists(shard_store_path(config.wal_path, index))
            assert db.wal_paths == [
                shard_store_path(config.wal_path, i) for i in range(3)
            ]
        with ShardedDatabase(config) as db:
            assert db.count("t") == 45
            assert db.select_point("t", "key", "k42")[0]["n"] == 42.0
            # routing still works after recovery: describe() bootstrapped
            # the primary-key map from the replayed catalog
            assert db._pks == {"t": "key"}
            db.insert("t", {"key": "post", "val": "recovery"})
            assert db.count("t") == 46

    def test_killed_worker_respawns_and_replays_mid_run(self, tmp_path):
        config = MiniSQLConfig(shards=3, wal_path=str(tmp_path / "db.wal"),
                               fsync="always")
        with ShardedDatabase(config) as db:
            load(db, 30)
            victim = db._shards[1]
            victim_pid = victim.process.pid
            victim.process.kill()
            victim.process.join()
            # every durable row is still readable — including the dead
            # worker's shard, transparently rebuilt from its WAL
            for i in range(30):
                assert db.select_point("t", "key", f"k{i}")[0]["n"] == float(i)
            assert db._shards[1].process.pid != victim_pid
            # scatter/gather across all shards works on the new worker
            pipe = db.pipeline()
            for i in range(30, 60):
                pipe.insert("t", {"key": f"k{i}", "val": "late", "n": float(i)})
            pipe.execute()
            assert db.count("t") == 60

    def test_kill_during_scatter_gather_batch(self, tmp_path):
        config = MiniSQLConfig(shards=3, wal_path=str(tmp_path / "db.wal"),
                               fsync="always")
        with ShardedDatabase(config) as db:
            load(db, 30)
            db._shards[2].process.kill()
            db._shards[2].process.join()
            # this batch's scatter hits the dead pipe mid-flight
            pipe = db.pipeline()
            for i in range(30):
                pipe.select_point("t", "key", f"k{i}")
            results = pipe.execute()
            assert [rows[0]["n"] for rows in results] == [float(i) for i in range(30)]

    def test_deliberate_restart_shard(self, tmp_path):
        config = MiniSQLConfig(shards=2, wal_path=str(tmp_path / "db.wal"),
                               fsync="everysec")
        with ShardedDatabase(config) as db:
            load(db, 20)
            # graceful bounce: the everysec WAL buffer must flush first
            for index in range(db.shard_count):
                db.restart_shard(index)
            assert db.count("t") == 20

    def test_statements_after_close_fail_loudly(self):
        import multiprocessing

        db = sharded(shards=2)
        load(db, 5)
        db.close()
        with pytest.raises(SQLShardConnectionError):
            db.select("t")
        with pytest.raises(SQLShardConnectionError):
            db.insert("t", {"key": "x", "val": "y"})
        with pytest.raises(SQLShardConnectionError):
            db.pipeline().count("t").execute()
        assert not [
            p for p in multiprocessing.active_children()
            if p.name.startswith("minisql-shard-")
        ]

    def test_encrypted_shard_wals_replay(self, tmp_path):
        config = MiniSQLConfig(shards=2, wal_path=str(tmp_path / "db.wal"),
                               fsync="always", encryption_at_rest=True)
        with ShardedDatabase(config) as db:
            load(db, 10)
            db._shards[db._shard_for_value("t", "k3")].process.kill()
            # respawn decrypts + replays
            assert db.select_point("t", "key", "k3")[0]["val"] == "v0"
        with ShardedDatabase(config) as db:
            assert db.count("t") == 10

    def test_worker_ttl_sweepers_purge_their_shards(self):
        import time

        with sharded() as db:
            db.create_table(
                "t",
                COLUMNS + [Column("expiry", FLOAT)],
                primary_key="key",
            )
            db.enable_ttl("t", "expiry", interval=0.05)
            # worker SystemClocks start near zero at spawn, so a negative
            # expiry is already past and a huge one is far future
            for i in range(12):
                db.insert("t", {"key": f"k{i}", "val": "x", "n": 0.0,
                                "expiry": -1.0})
            db.insert("t", {"key": "keeper", "val": "x", "n": 0.0,
                            "expiry": 1e9})
            time.sleep(0.1)
            # any statement ticks each worker's maintenance hook
            deadline = time.time() + 5.0
            while db.count("t") > 1 and time.time() < deadline:
                time.sleep(0.05)
            assert db.count("t") == 1
            assert db.select("t")[0]["key"] == "keeper"


class TestConjunctivePointRouting:
    """``_route_where``: which WHERE shapes pin a single shard.

    docs/sharding.md's routing table: a WHERE routes when a top-level
    conjunct is ``Cmp(pk, '=', value)`` — AND only narrows the match, so
    rows satisfying it can live on no other shard.  Ranges, other
    columns, and disjunctions fan out.
    """

    def test_conjunction_on_pk_routes_to_the_key_shard(self):
        with sharded() as db:
            load(db)
            where = And(Cmp("key", "=", "k3"), Cmp("val", "=", "v0"))
            assert db._route_where("t", where) == db._shard_for_value("t", "k3")
            rows = db.select("t", where)
            assert [row["key"] for row in rows] == ["k3"]
            # the conjunction narrows: a non-matching arm empties the set
            assert db.select("t", And(Cmp("key", "=", "k3"),
                                      Cmp("val", "=", "v1"))) == []

    def test_routed_shapes(self):
        with sharded() as db:
            load(db)
            owner = db._shard_for_value("t", "k3")
            # the bare point predicate, and any top-level And arm --
            # including one buried in a nested And (conjuncts flatten)
            assert db._route_where("t", Cmp("key", "=", "k3")) == owner
            assert db._route_where(
                "t", And(Cmp("val", "=", "v0"), Cmp("key", "=", "k3"))
            ) == owner
            assert db._route_where(
                "t", And(Cmp("n", ">", 1.0),
                         And(Cmp("key", "=", "k3"), Cmp("val", "=", "v0")))
            ) == owner

    def test_fanout_shapes(self):
        with sharded() as db:
            load(db)
            fanout = (
                None,                                  # no WHERE at all
                Cmp("key", ">", "k3"),                 # range on the pk
                Cmp("val", "=", "v0"),                 # point on a non-pk
                Or(Cmp("key", "=", "k3"),              # an OR arm does not
                   Cmp("key", "=", "k5")),             # constrain the match
                And(Cmp("n", ">", 1.0), Cmp("val", "=", "v0")),
                Not(Cmp("key", "=", "k3")),
            )
            for where in fanout:
                assert db._route_where("t", where) is None, where

    def test_contradictory_pk_conjuncts_route_anywhere_correctly(self):
        with sharded() as db:
            load(db)
            where = And(Cmp("key", "=", "k1"), Cmp("key", "=", "k2"))
            # the match is empty on every shard, so either key's shard
            # answers correctly; the route just has to pick one
            index = db._route_where("t", where)
            assert index in (db._shard_for_value("t", "k1"),
                             db._shard_for_value("t", "k2"))
            assert db.select("t", where) == []
            assert db.count("t", where) == 0

    def test_routed_statements_touch_one_shard(self):
        with sharded() as db:
            load(db)
            where = And(Cmp("key", "=", "k7"), Cmp("val", "=", "v1"))
            before = db.info()["statements_per_shard"]
            assert db.count("t", where) == 1
            assert db.update("t", {"val": "patched"}, where) == 1
            assert db.delete("t", And(Cmp("key", "=", "k7"),
                                      Cmp("val", "=", "patched"))) == 1
            after = db.info()["statements_per_shard"]
            # all three statements landed on the key's shard alone
            grew = [b - a for a, b in zip(before, after)]
            owner = db._shard_for_value("t", "k7")
            assert grew[owner] == 3
            assert all(g == 0 for i, g in enumerate(grew) if i != owner)
