"""MVCC snapshot anomalies, WAL-backed rollback, and vacuum safety.

The ``locking="mvcc"`` mode's contract, stated as the classic anomaly
checks:

* repeatable reads — a transaction's snapshot is immune to concurrent
  committed writers;
* read-your-own-writes — a transaction sees its own uncommitted changes
  on the tables it writes;
* no dirty reads — uncommitted changes are invisible to every other
  reader until commit, and the whole transaction becomes visible
  atomically;
* rollback — restores pre-images, releases locks, and survives crash
  recovery (the WAL's compensation records replay to the same state);
* vacuum — never reclaims a version a live snapshot can still see.
"""

import threading

import pytest

from repro.minisql import Cmp, Column, Database, MiniSQLConfig, load_wal
from repro.minisql.types import INTEGER, TEXT

ALL_MODES = ["table-rw", "global", "mvcc"]


def make_db(**config) -> Database:
    db = Database(MiniSQLConfig(**config))
    db.create_table(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
        primary_key="id",
    )
    for i in range(10):
        db.insert("t", {"id": i, "v": f"row{i}"})
    return db


class TestSnapshotReads:
    def test_repeatable_reads_under_concurrent_committed_writer(self):
        db = make_db(locking="mvcc")
        txn = db.begin(read=("t",))
        first = txn.select("t", Cmp("id", "=", 1))
        assert first == [{"id": 1, "v": "row1"}]
        # a concurrent writer commits an update, a delete, and an insert
        db.update("t", {"v": "CHANGED"}, Cmp("id", "=", 1))
        db.delete("t", Cmp("id", "=", 2))
        db.insert("t", {"id": 100, "v": "new"})
        # the snapshot still sees the world as of begin()
        assert txn.select("t", Cmp("id", "=", 1)) == first
        assert txn.select("t", Cmp("id", "=", 2)) == [{"id": 2, "v": "row2"}]
        assert txn.select("t", Cmp("id", "=", 100)) == []
        assert txn.count("t") == 10
        txn.commit()
        # a fresh statement sees the committed state
        assert db.select("t", Cmp("id", "=", 1))[0]["v"] == "CHANGED"
        assert db.count("t") == 10  # -1 delete, +1 insert

    def test_read_your_own_writes_inside_transaction(self):
        db = make_db(locking="mvcc")
        with db.transaction(write=("t",)) as txn:
            txn.insert("t", {"id": 50, "v": "mine"})
            assert txn.select("t", Cmp("id", "=", 50)) == [{"id": 50, "v": "mine"}]
            txn.update("t", {"v": "patched"}, Cmp("id", "=", 3))
            assert txn.select("t", Cmp("id", "=", 3))[0]["v"] == "patched"
            txn.delete("t", Cmp("id", "=", 4))
            assert txn.select("t", Cmp("id", "=", 4)) == []
            assert txn.count("t") == 10  # +1 insert, -1 delete
        assert db.count("t") == 10

    def test_no_dirty_reads_and_atomic_visibility(self):
        db = make_db(locking="mvcc")
        txn = db.begin(write=("t",))
        txn.insert("t", {"id": 60, "v": "pending"})
        txn.update("t", {"v": "pending"}, Cmp("id", "=", 5))
        txn.delete("t", Cmp("id", "=", 6))
        # an autocommit reader (own snapshot) sees none of it
        assert db.select("t", Cmp("id", "=", 60)) == []
        assert db.select("t", Cmp("id", "=", 5))[0]["v"] == "row5"
        assert db.select("t", Cmp("id", "=", 6)) == [{"id": 6, "v": "row6"}]
        txn.commit()
        # ...and all of it after commit
        assert db.select("t", Cmp("id", "=", 60)) == [{"id": 60, "v": "pending"}]
        assert db.select("t", Cmp("id", "=", 5))[0]["v"] == "pending"
        assert db.select("t", Cmp("id", "=", 6)) == []

    def test_readers_do_not_block_on_a_held_write_lock(self):
        """The point of MVCC: a snapshot read proceeds while a writer
        transaction holds the table's write lock."""
        db = make_db(locking="mvcc")
        txn = db.begin(write=("t",))  # write lock held until commit
        txn.insert("t", {"id": 70, "v": "held"})
        result = {}

        def reader():
            result["rows"] = db.count("t")

        worker = threading.Thread(target=reader)
        worker.start()
        worker.join(timeout=5.0)
        assert not worker.is_alive(), "snapshot reader blocked on a write lock"
        assert result["rows"] == 10  # the pending insert is invisible
        txn.commit()
        assert db.count("t") == 11

    def test_snapshot_reader_surface_is_lock_free_and_consistent(self):
        db = make_db(locking="mvcc")
        with db.snapshot_reader() as reader:
            before = reader.count("t")
            db.delete("t", Cmp("id", "<", 5))
            # every query in the batch observes the same snapshot
            assert reader.count("t") == before
            assert reader.select_point("t", "id", 0) == [{"id": 0, "v": "row0"}]
            assert reader.aggregate("t", "count") == before
        assert db.count("t") == 5

    @pytest.mark.parametrize("locking", ALL_MODES)
    def test_observable_results_identical_across_modes(self, locking):
        db = make_db(locking=locking)
        db.update("t", {"v": "x"}, Cmp("id", "<", 3))
        db.delete("t", Cmp("id", ">=", 8))
        assert db.count("t") == 8
        assert sorted(r["id"] for r in db.select("t", Cmp("v", "=", "x"))) == [0, 1, 2]

    @pytest.mark.parametrize("locking", ALL_MODES)
    def test_duplicate_create_index_leaves_existing_index_intact(self, locking):
        """A failed duplicate CREATE INDEX must not touch the live index
        (regression: publish-before-validate once bricked the table)."""
        from repro.common.errors import CatalogError
        db = make_db(locking=locking)
        db.create_index("t_v", "t", "v")
        with pytest.raises(CatalogError):
            db.create_index("t_v", "t", "v")
        # the original index still serves queries and accepts writes
        assert db.select("t", Cmp("v", "=", "row4")) == [{"id": 4, "v": "row4"}]
        db.insert("t", {"id": 40, "v": "row40"})
        assert db.select("t", Cmp("v", "=", "row40")) == [{"id": 40, "v": "row40"}]

    def test_unique_key_reusable_after_delete_before_vacuum(self):
        """Dead unique-index entries (version retention) must not block a
        live re-insert of the same key."""
        db = make_db(locking="mvcc")
        db.delete("t", Cmp("id", "=", 7))
        db.insert("t", {"id": 7, "v": "reborn"})
        assert db.select("t", Cmp("id", "=", 7)) == [{"id": 7, "v": "reborn"}]
        from repro.common.errors import ConstraintError
        with pytest.raises(ConstraintError):
            db.insert("t", {"id": 7, "v": "dup"})


class TestVersionStampInvariants:
    def test_deleted_pending_insert_keeps_its_xmin(self):
        """delete() must not drop the xmin entry: a lock-free reader that
        sampled the live slot just before the delete still needs the
        pending-insert ``inf`` stamp, or the 0.0 default would turn the
        race into a dirty read of an uncommitted row."""
        db = make_db(locking="mvcc")
        heap = db._storage.heaps["t"]
        txn = db.begin(write=("t",))
        txn.insert("t", {"id": 50, "v": "pending"})
        rid = next(r for r, row in heap.scan() if row[0] == 50)
        assert heap.xmin_of(rid) == float("inf")
        txn.delete("t", Cmp("id", "=", 50))
        # the stamp survives the tombstoning until vacuum reclaims it
        assert heap.xmin_of(rid) == float("inf")
        assert heap.fetch_at(rid, ts=10**9) is None  # never visible
        txn.commit()
        db.vacuum("t")
        assert rid not in heap._xmin  # vacuum consumed the entry

    def test_transaction_is_bound_to_its_creating_thread(self):
        """Statements from another thread would escape the write session
        (never stamped, never undoable) and are refused."""
        db = make_db(locking="mvcc")
        txn = db.begin(write=("t",))
        errors: list[Exception] = []

        def other_thread():
            try:
                txn.insert("t", {"id": 60, "v": "foreign"})
            except Exception as exc:
                errors.append(exc)

        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        txn.commit()
        assert len(errors) == 1
        assert db.select("t", Cmp("id", "=", 60)) == []


class TestRollback:
    @pytest.mark.parametrize("locking", ALL_MODES)
    def test_rollback_restores_preimage_and_releases_locks(self, locking):
        db = make_db(locking=locking)
        txn = db.begin(write=("t",))
        txn.insert("t", {"id": 80, "v": "doomed"})
        txn.update("t", {"v": "doomed"}, Cmp("id", "=", 1))
        txn.delete("t", Cmp("id", "=", 2))
        txn.rollback()
        # pre-images restored
        assert db.select("t", Cmp("id", "=", 80)) == []
        assert db.select("t", Cmp("id", "=", 1))[0]["v"] == "row1"
        assert db.select("t", Cmp("id", "=", 2)) == [{"id": 2, "v": "row2"}]
        assert db.count("t") == 10
        # locks released: a fresh write proceeds
        assert db.update("t", {"v": "after"}, Cmp("id", "=", 1)) == 1

    def test_rollback_restores_index_entries(self):
        db = make_db(locking="table-rw")
        db.create_index("t_v", "t", "v")
        txn = db.begin(write=("t",))
        txn.delete("t", Cmp("id", "=", 3))
        txn.rollback()
        # the secondary index finds the resurrected row again
        assert db.select("t", Cmp("v", "=", "row3")) == [{"id": 3, "v": "row3"}]
        assert "IndexScan" in db.explain("t", Cmp("v", "=", "row3"))

    def test_mvcc_error_exit_rolls_back(self):
        """Under MVCC the context manager's error path must undo the
        batch — pending version stamps cannot be left behind."""
        db = make_db(locking="mvcc")
        with pytest.raises(RuntimeError):
            with db.transaction(write=("t",)) as txn:
                txn.insert("t", {"id": 90, "v": "gone"})
                txn.delete("t", Cmp("id", "=", 0))
                raise RuntimeError("client crashed mid-batch")
        assert db.select("t", Cmp("id", "=", 90)) == []
        assert db.select("t", Cmp("id", "=", 0)) == [{"id": 0, "v": "row0"}]
        assert db.count("t") == 10

    def test_lock_based_error_exit_keeps_seed_semantics(self):
        """Lock-based modes keep the historical abort contract: applied
        statements stand, only the locks are released."""
        db = make_db(locking="table-rw")
        with pytest.raises(RuntimeError):
            with db.transaction(write=("t",)) as txn:
                txn.insert("t", {"id": 91, "v": "stays"})
                raise RuntimeError("boom")
        assert db.select("t", Cmp("id", "=", 91)) == [{"id": 91, "v": "stays"}]

    @pytest.mark.parametrize("locking", ALL_MODES)
    def test_rollback_replays_identically_from_wal(self, tmp_path, locking):
        """WAL-backed undo: compensation records make crash recovery land
        on the rolled-back state, rid allocation included."""
        wal = str(tmp_path / "wal.bin")
        db = Database(MiniSQLConfig(locking=locking, wal_path=wal))
        db.create_table(
            "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
            primary_key="id",
        )
        db.insert("t", {"id": 1, "v": "a"})
        db.insert("t", {"id": 2, "v": "b"})
        txn = db.begin(write=("t",))
        txn.insert("t", {"id": 3, "v": "c"})
        txn.update("t", {"v": "patched"}, Cmp("id", "=", 1))
        txn.delete("t", Cmp("id", "=", 2))
        txn.rollback()
        # post-rollback writes exercise rid reuse determinism
        db.insert("t", {"id": 4, "v": "d"})
        db.vacuum("t")
        db.insert("t", {"id": 5, "v": "e"})
        state = sorted((r["id"], r["v"]) for r in db.select("t"))
        db.close()
        recovered = Database(MiniSQLConfig(locking=locking, wal_path=wal))
        assert sorted((r["id"], r["v"]) for r in recovered.select("t")) == state
        # the recovered engine keeps accepting writes on the same rids
        recovered.insert("t", {"id": 6, "v": "f"})
        assert recovered.count("t") == len(state) + 1
        recovered.close()
        records = load_wal(wal)
        assert ("undelete", "t", 1) in records  # the compensation trail

    def test_rollback_of_failed_statement_inside_transaction(self):
        db = make_db(locking="mvcc")
        from repro.common.errors import ConstraintError
        with pytest.raises(ConstraintError):
            with db.transaction(write=("t",)) as txn:
                txn.insert("t", {"id": 95, "v": "ok"})
                txn.insert("t", {"id": 1, "v": "dup"})  # unique violation
        # abort under MVCC rolled the whole batch back
        assert db.select("t", Cmp("id", "=", 95)) == []
        assert db.count("t") == 10


class TestVacuumSafety:
    def test_vacuum_never_reclaims_a_version_a_snapshot_can_see(self):
        db = make_db(locking="mvcc")
        snap = db.begin(read=("t",))
        assert snap.count("t") == 10
        db.delete("t", Cmp("id", "<", 4))
        # the snapshot still needs those four versions: nothing reclaimed
        assert db.vacuum("t") == 0
        assert snap.count("t") == 10
        assert snap.select("t", Cmp("id", "=", 0)) == [{"id": 0, "v": "row0"}]
        snap.commit()
        # snapshot released: the versions are reclaimable now
        assert db.vacuum("t") == 4
        assert db.count("t") == 6

    def test_vacuum_respects_oldest_of_several_snapshots(self):
        db = make_db(locking="mvcc")
        old = db.begin(read=("t",))
        db.delete("t", Cmp("id", "=", 0))
        young = db.begin(read=("t",))  # taken after the delete committed
        assert old.count("t") == 10
        assert young.count("t") == 9
        assert db.vacuum("t") == 0  # fenced by the old snapshot
        old.commit()
        assert db.vacuum("t") == 1  # young never saw the dead version
        assert young.count("t") == 9
        young.commit()

    def test_ttl_sweeper_runs_version_vacuum(self):
        from repro.common.clock import VirtualClock
        clock = VirtualClock()
        db = Database(MiniSQLConfig(locking="mvcc"), clock=clock)
        db.create_table(
            "p", [Column("id", INTEGER, nullable=False), Column("expiry", INTEGER)],
            primary_key="id",
        )
        sweeper = db.enable_ttl("p", "expiry", interval=1.0)
        for i in range(20):
            db.insert("p", {"id": i, "expiry": 5})
        clock.advance(10)
        deleted = sweeper.run(clock.now())
        assert deleted == 20
        # the sweep's own vacuum reclaimed the purge's dead versions
        assert sweeper.stats.versions_reclaimed >= 20
        assert db._storage.heaps["p"].dead_count == 0

    def test_concurrent_snapshot_scans_during_rollback(self):
        """Lock-free scans racing a rollback's undeletes must never see a
        torn row count (regression: undelete once popped the dead entry
        before republishing the slot, leaving a window with neither)."""
        db = Database(MiniSQLConfig(locking="mvcc"))
        db.create_table(
            "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
            primary_key="id",
        )
        total = 200
        for i in range(total):
            db.insert("t", {"id": i, "v": f"r{i}"})
        stop = threading.Event()
        torn: list[int] = []

        def reader():
            while not stop.is_set():
                n = db.count("t")
                if n != total:
                    torn.append(n)
                    return

        workers = [threading.Thread(target=reader) for _ in range(3)]
        for w in workers:
            w.start()
        try:
            for _ in range(200):
                txn = db.begin(write=("t",))
                txn.delete("t", Cmp("id", "<", 50))
                txn.rollback()  # the undeletes race the lock-free scans
        finally:
            stop.set()
            for w in workers:
                w.join()
        assert not torn
        assert db.count("t") == total

    def test_concurrent_snapshot_scans_during_purge(self):
        """Stress: lock-free readers sweep the table while a writer purges
        and vacuums; every scan must observe a consistent count (a
        snapshot boundary), never a torn intermediate."""
        db = Database(MiniSQLConfig(locking="mvcc"))
        db.create_table(
            "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
            primary_key="id",
        )
        total = 400
        with db.transaction(write=("t",)) as txn:
            for i in range(total):
                txn.insert("t", {"id": i, "v": f"r{i}"})
        chunk = 40
        seen: list[int] = []
        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                n = db.count("t")
                if n % chunk != 0 or not (0 <= n <= total):
                    failures.append(f"torn count {n}")
                    return
                seen.append(n)

        workers = [threading.Thread(target=reader) for _ in range(3)]
        for w in workers:
            w.start()
        try:
            for lo in range(0, total, chunk):
                with db.transaction(write=("t",)) as txn:
                    txn.delete("t", Cmp("id", "<", lo + chunk))
                db.vacuum("t")
        finally:
            stop.set()
            for w in workers:
                w.join()
        assert not failures
        assert db.count("t") == 0
