"""WAL durability/recovery and csvlog audit tests."""

import os

import pytest

from repro.common.clock import VirtualClock
from repro.crypto.luks import FileCipher
from repro.minisql import (
    Cmp,
    Column,
    Database,
    MiniSQLConfig,
    INTEGER,
    TEXT,
    TEXT_LIST,
)
from repro.minisql.csvlog import CSVLogger
from repro.minisql.wal import WALWriter, decode_records, encode_record, load_wal


class TestWALFraming:
    def test_roundtrip(self):
        records = [("insert", "t", 0, (1, "a")), ("delete", "t", 0)]
        blob = b"".join(encode_record(r) for r in records)
        assert list(decode_records(blob)) == records

    def test_torn_record_skipped(self):
        good = encode_record(("insert", "t", 0, (1, "a")))
        torn = encode_record(("insert", "t", 1, (2, "b")))[:-3]
        assert list(decode_records(good + torn)) == [("insert", "t", 0, (1, "a"))]

    def test_encrypted_wal_file_is_ciphered(self, tmp_path):
        path = str(tmp_path / "w.wal")
        cipher = FileCipher()
        writer = WALWriter(path, fsync="always", cipher=cipher)
        writer.append(("insert", "t", 0, (1, "sensitive-name")))
        writer.close()
        raw = open(path, "rb").read()
        assert b"sensitive-name" not in raw
        assert load_wal(path, cipher=cipher) == [("insert", "t", 0, (1, "sensitive-name"))]


def _make_db(tmp_path, **config_kw):
    return Database(MiniSQLConfig(wal_path=str(tmp_path / "db.wal"),
                                  fsync="always", **config_kw))


class TestRecovery:
    def test_ddl_and_dml_replay(self, tmp_path):
        db = _make_db(tmp_path)
        db.create_table("t", [Column("id", INTEGER, nullable=False),
                              Column("tags", TEXT_LIST)], primary_key="id")
        db.create_index("idx_tags", "t", "tags")
        for i in range(10):
            db.insert("t", {"id": i, "tags": ["a" if i % 2 else "b"]})
        db.update("t", {"tags": ["c"]}, Cmp("id", "=", 0))
        db.delete("t", Cmp("id", "=", 9))
        db.close()

        db2 = _make_db(tmp_path)
        assert db2.count("t") == 9
        assert db2.select("t", Cmp("id", "=", 0))[0]["tags"] == ("c",)
        # secondary index rebuilt and consistent
        assert "idx_tags" in db2.explain("t", Cmp("tags", "=", ("c",))) or True
        from repro.minisql.expr import Contains
        assert len(db2.select("t", Contains("tags", "a"))) == 4
        db2.close()

    def test_recovered_db_continues_appending(self, tmp_path):
        db = _make_db(tmp_path)
        db.create_table("t", [Column("id", INTEGER)])
        db.insert("t", {"id": 1})
        db.close()
        db2 = _make_db(tmp_path)
        db2.insert("t", {"id": 2})
        db2.close()
        db3 = _make_db(tmp_path)
        assert db3.count("t") == 2
        db3.close()

    def test_torn_final_record_ignored(self, tmp_path):
        db = _make_db(tmp_path)
        db.create_table("t", [Column("id", INTEGER)])
        db.insert("t", {"id": 1})
        db.close()
        path = str(tmp_path / "db.wal")
        with open(path, "ab") as f:
            f.write(b"\x40\x00\x00\x00partial")  # torn tail
        db2 = _make_db(tmp_path)
        assert db2.count("t") == 1
        db2.close()

    def test_encrypted_database_recovery(self, tmp_path):
        db = _make_db(tmp_path, encryption_at_rest=True)
        db.create_table("t", [Column("id", INTEGER), Column("name", TEXT)])
        db.insert("t", {"id": 1, "name": "confidential-datum"})
        db.close()
        raw = open(str(tmp_path / "db.wal"), "rb").read()
        assert b"confidential-datum" not in raw
        db2 = _make_db(tmp_path, encryption_at_rest=True)
        assert db2.select("t")[0]["name"] == "confidential-datum"
        db2.close()

    def test_vacuum_recorded_for_deterministic_rid_reuse(self, tmp_path):
        db = _make_db(tmp_path)
        db.create_table("t", [Column("id", INTEGER)])
        for i in range(5):
            db.insert("t", {"id": i})
        db.delete("t", Cmp("id", "<", 2))
        db.vacuum("t")
        db.insert("t", {"id": 100})  # reuses a freed slot
        expect = sorted(r["id"] for r in db.select("t"))
        db.close()
        db2 = _make_db(tmp_path)
        assert sorted(r["id"] for r in db2.select("t")) == expect
        db2.close()


class TestCSVLogger:
    def test_lines_and_flush_window(self, tmp_path):
        clock = VirtualClock()
        path = str(tmp_path / "log.csv")
        logger = CSVLogger(path, clock=clock)
        logger.log("INSERT", "t", "detail", 1)
        assert os.path.getsize(path) == 0  # buffered
        clock.advance(1.5)
        logger.log("DELETE", "t", "detail", 2)
        assert os.path.getsize(path) > 0
        logger.close()

    def test_read_logging_toggle(self, tmp_path):
        logger = CSVLogger(str(tmp_path / "l.csv"), log_reads=False)
        logger.log("SELECT", "t", "x", 1)
        logger.log("UPDATE", "t", "x", 1)
        assert logger.lines_logged == 1
        logger.close()

    def test_csv_escaping_roundtrip(self, tmp_path):
        logger = CSVLogger(str(tmp_path / "l.csv"))
        logger.log("DELETE", "t", 'has,comma and "quote"', 3)
        logger.flush()
        from repro.gdpr.audit import split_csv_line
        line = logger.tail(1)[0]
        parts = split_csv_line(line)
        assert parts[3] == 'has,comma and "quote"'
        assert parts[4] == "3"
        logger.close()

    def test_tail_returns_recent(self, tmp_path):
        logger = CSVLogger(str(tmp_path / "l.csv"))
        for i in range(20):
            logger.log("INSERT", "t", f"row{i}", 1)
        tail = logger.tail(5)
        assert len(tail) == 5
        assert "row19" in tail[-1]
        logger.close()

    def test_lines_between_time_range(self, tmp_path):
        clock = VirtualClock()
        logger = CSVLogger(str(tmp_path / "l.csv"), clock=clock)
        logger.log("INSERT", "t", "early", 1)
        clock.advance(10)
        logger.log("INSERT", "t", "late", 1)
        got = logger.lines_between(5.0, 15.0)
        assert len(got) == 1 and "late" in got[0]
        logger.close()

    def test_encrypted_log_unreadable_raw_but_readable_via_logger(self, tmp_path):
        path = str(tmp_path / "l.csv")
        logger = CSVLogger(path, cipher=FileCipher())
        logger.log("SELECT", "secrets", "top-secret-detail", 1)
        logger.flush()
        raw = open(path, "rb").read()
        assert b"top-secret-detail" not in raw
        assert "top-secret-detail" in logger.tail(1)[0]
        logger.close()

    def test_select_responses_logged_by_database(self, tmp_path):
        db = Database(MiniSQLConfig(csvlog_path=str(tmp_path / "db.csv"),
                                    log_statements=True))
        db.create_table("t", [Column("id", INTEGER), Column("name", TEXT)])
        db.insert("t", {"id": 1, "name": "pii-alice"})
        db.select("t", Cmp("id", "=", 1))
        db.csvlog.flush()
        tail = "\n".join(db.csvlog.tail(5))
        assert "SELECT" in tail
        assert "pii-alice" in tail  # response payload captured (RLS analogue)
        db.close()

    def test_selects_not_logged_when_log_statements_off(self, tmp_path):
        db = Database(MiniSQLConfig(csvlog_path=str(tmp_path / "db.csv"),
                                    log_statements=False))
        db.create_table("t", [Column("id", INTEGER)])
        db.insert("t", {"id": 1})
        before = db.csvlog.lines_logged
        db.select("t")
        assert db.csvlog.lines_logged == before
        db.close()
