"""The transaction layer: begin/commit, lock declarations, execute_batch,
and the sweeper's transaction-batched deletes."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError, SQLError
from repro.minisql import (
    Cmp,
    Column,
    Database,
    MiniSQLConfig,
    INTEGER,
    TEXT,
    execute_batch,
    statement_intent,
)


def _db(**config) -> Database:
    db = Database(MiniSQLConfig(**config))
    db.create_table(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
        primary_key="id",
    )
    return db


class TestTransactionAPI:
    def test_statements_share_one_transaction(self):
        db = _db()
        with db.transaction(write=("t",)) as txn:
            for i in range(5):
                txn.insert("t", {"id": i, "v": f"row{i}"})
            assert txn.count("t") == 5
            assert txn.select("t", Cmp("id", "=", 3))[0]["v"] == "row3"
            assert txn.update("t", {"v": "patched"}, Cmp("id", "=", 3)) == 1
            assert txn.delete("t", Cmp("id", "=", 0)) == 1
        assert db.count("t") == 4
        assert db.select("t", Cmp("id", "=", 3))[0]["v"] == "patched"

    def test_begin_commit_explicit(self):
        db = _db()
        txn = db.begin(write=("t",))
        txn.insert("t", {"id": 1, "v": "a"})
        txn.commit()
        assert db.count("t") == 1
        with pytest.raises(SQLError):
            txn.insert("t", {"id": 2, "v": "b"})  # not active any more

    def test_undeclared_table_locked_on_first_touch(self):
        db = _db()
        db.create_table("u", [Column("id", INTEGER)])
        with db.transaction(write=("t",)) as txn:
            txn.insert("t", {"id": 1, "v": "a"})
            txn.insert("u", {"id": 7})  # lazily write-locked
        assert db.count("u") == 1

    def test_out_of_order_first_touch_is_refused(self):
        """Lazy acquisition must extend ascending-name lock order; an
        out-of-order touch would break global deadlock freedom."""
        db = _db()  # owns table "t"
        db.create_table("a", [Column("id", INTEGER)])
        with db.transaction(write=("t",)) as txn:
            txn.insert("t", {"id": 1, "v": "x"})
            with pytest.raises(SQLError):
                txn.insert("a", {"id": 1})  # "a" sorts before held "t"
        # declaring both up front is the supported shape
        with db.transaction(write=("a", "t")) as txn:
            txn.insert("a", {"id": 1})
            txn.insert("t", {"id": 2, "v": "y"})
        assert db.count("a") == 1

    def test_read_to_write_upgrade_is_refused(self):
        db = _db()
        with db.transaction(read=("t",)) as txn:
            txn.select("t")
            with pytest.raises(SQLError):
                txn.insert("t", {"id": 1, "v": "a"})

    def test_ddl_inside_transaction_is_refused(self):
        db = _db()
        with db.transaction(write=("t",)) as txn:
            with pytest.raises(SQLError):
                txn.create_table("x", [Column("id", INTEGER)])

    def test_select_point_matches_select(self):
        db = _db()
        for i in range(10):
            db.insert("t", {"id": i, "v": f"row{i}"})
        with db.transaction(read=("t",)) as txn:
            assert txn.select_point("t", "id", 4) == db.select("t", Cmp("id", "=", 4))
            assert txn.select_point("t", "id", 99) == []
            assert txn.select_point("t", "v", "row2") == \
                db.select("t", Cmp("v", "=", "row2"))  # unindexed column
            assert txn.select_point("t", "id", None) == []  # NULL matches nothing

    def test_transaction_survives_statement_error(self):
        """A failing statement doesn't wedge the lock state."""
        db = _db()
        with pytest.raises(Exception):
            with db.transaction(write=("t",)) as txn:
                txn.insert("t", {"id": 1, "v": "a"})
                txn.insert("t", {"id": 1, "v": "dup"})  # unique violation
        # locks were released by abort: new statements proceed
        assert db.count("t") == 1


class TestLockingModes:
    @pytest.mark.parametrize("locking", ["table-rw", "global"])
    def test_observable_results_identical(self, locking):
        db = _db(locking=locking)
        for i in range(20):
            db.insert("t", {"id": i, "v": f"row{i}"})
        db.update("t", {"v": "x"}, Cmp("id", "<", 5))
        db.delete("t", Cmp("id", ">=", 15))
        assert db.count("t") == 15
        assert sorted(r["id"] for r in db.select("t", Cmp("v", "=", "x"))) == [0, 1, 2, 3, 4]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Database(MiniSQLConfig(locking="optimistic"))


class TestExecuteBatch:
    def test_batch_matches_sequential_results(self):
        db = _db()
        statements = [
            "INSERT INTO t (id, v) VALUES (1, 'a')",
            "INSERT INTO t (id, v) VALUES (2, 'b')",
            "SELECT v FROM t WHERE id = 1",
            "UPDATE t SET v = 'c' WHERE id = 2",
            "SELECT COUNT(*) FROM t",
            "DELETE FROM t WHERE id = 1",
        ]
        results = execute_batch(db, statements)
        assert results[2] == [{"v": "a"}]
        assert results[3] == 1
        assert results[4] == 2
        assert results[5] == 1
        assert db.count("t") == 1

    def test_ddl_runs_standalone_between_stretches(self):
        db = _db()
        results = execute_batch(db, [
            "INSERT INTO t (id, v) VALUES (1, 'a')",
            "CREATE TABLE u (id INTEGER NOT NULL, PRIMARY KEY (id))",
            "INSERT INTO u (id) VALUES (5)",
            "SELECT id FROM u",
        ])
        assert results[1] is None
        assert results[3] == [{"id": 5}]

    def test_statement_intent(self):
        assert statement_intent("SELECT * FROM t WHERE id = 1") == ("select", "t", False)
        assert statement_intent("INSERT INTO t (id) VALUES (1)") == ("insert", "t", True)
        assert statement_intent("UPDATE t SET v = 'x'") == ("update", "t", True)
        assert statement_intent("DELETE FROM t") == ("delete", "t", True)
        assert statement_intent("VACUUM") == ("vacuum", None, True)
        assert statement_intent("VACUUM t") == ("vacuum", "t", True)
        assert statement_intent("CREATE TABLE u (id INTEGER)") == ("create", None, True)
        assert statement_intent("EXPLAIN SELECT * FROM t") == ("explain", "t", False)

    def test_string_literal_from_does_not_confuse_intent(self):
        head, table, writes = statement_intent(
            "SELECT v FROM t WHERE v = 'from'"
        )
        assert (head, table, writes) == ("select", "t", False)


class TestSweeperBatching:
    def test_sweeper_deletes_in_write_locked_chunks(self):
        clock = VirtualClock()
        db = Database(MiniSQLConfig(), clock=clock)
        db.create_table(
            "p", [Column("id", INTEGER, nullable=False), Column("expiry", INTEGER)],
            primary_key="id",
        )
        sweeper = db.enable_ttl("p", "expiry", interval=1.0)
        sweeper.batch_rows = 10  # force several chunks per sweep
        for i in range(35):
            db.insert("p", {"id": i, "expiry": 5})
        for i in range(5):
            db.insert("p", {"id": 100 + i, "expiry": 50})
        clock.advance(10)
        deleted = sweeper.run(clock.now())
        assert deleted == 35
        assert db.count("p") == 5
        assert sweeper.stats.rows_deleted == 35

    def test_sweeper_runs_from_statement_hook(self):
        clock = VirtualClock()
        db = Database(MiniSQLConfig(), clock=clock)
        db.create_table(
            "p", [Column("id", INTEGER, nullable=False), Column("expiry", INTEGER)],
            primary_key="id",
        )
        db.enable_ttl("p", "expiry", interval=1.0)
        db.insert("p", {"id": 1, "expiry": 2})
        db.insert("p", {"id": 2, "expiry": 1000})
        clock.advance(5)
        # any ordinary statement pokes the due sweeper first
        assert db.count("p") == 1
        assert [r["id"] for r in db.select("p")] == [2]
