"""End-to-end tests for the minisql Database facade."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import CatalogError, ConstraintError, TypeMismatchError
from repro.minisql import (
    Cmp,
    Column,
    Contains,
    Database,
    MiniSQLConfig,
    INTEGER,
    TEXT,
    TEXT_LIST,
    TIMESTAMP,
)


@pytest.fixture
def db():
    database = Database(clock=VirtualClock())
    database.create_table(
        "users",
        [
            Column("id", INTEGER, nullable=False),
            Column("name", TEXT),
            Column("tags", TEXT_LIST),
            Column("expiry", TIMESTAMP),
        ],
        primary_key="id",
    )
    yield database
    database.close()


def _fill(db, n=20):
    for i in range(n):
        db.insert("users", {
            "id": i,
            "name": f"user{i % 4}",
            "tags": ["even" if i % 2 == 0 else "odd"],
            "expiry": 100.0 + i,
        })


class TestDDL:
    def test_pkey_index_created_automatically(self, db):
        assert any(i.name == "users_pkey" for i in db.catalog.indices_for("users"))

    def test_create_index_kind_inference(self, db):
        db.create_index("idx_tags", "users", "tags")
        db.create_index("idx_name", "users", "name")
        assert db.catalog.index("idx_tags").kind == "inverted"
        assert db.catalog.index("idx_name").kind == "btree"

    def test_index_built_from_existing_rows(self, db):
        _fill(db)
        db.create_index("idx_name", "users", "name")
        rows = db.select("users", Cmp("name", "=", "user1"))
        assert len(rows) == 5
        assert "idx_name" in db.explain("users", Cmp("name", "=", "user1"))

    def test_unique_inverted_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_index("u", "users", "tags", unique=True)

    def test_drop_table_and_index(self, db):
        db.create_index("idx_name", "users", "name")
        db.drop_index("idx_name")
        assert db.explain("users", Cmp("name", "=", "x")).startswith("SeqScan")
        db.drop_table("users")
        with pytest.raises(CatalogError):
            db.select("users")


class TestDML:
    def test_insert_select_roundtrip(self, db):
        _fill(db, 5)
        rows = db.select("users", Cmp("id", "=", 3))
        assert rows == [{"id": 3, "name": "user3", "tags": ("odd",), "expiry": 103.0}]

    def test_insert_validates_types(self, db):
        with pytest.raises(TypeMismatchError):
            db.insert("users", {"id": "not-an-int"})

    def test_pk_uniqueness_enforced(self, db):
        db.insert("users", {"id": 1, "name": "a"})
        with pytest.raises(ConstraintError):
            db.insert("users", {"id": 1, "name": "b"})
        # failed insert leaves no trace
        assert db.count("users", Cmp("id", "=", 1)) == 1
        assert db.count("users") == 1

    def test_projection_and_limit(self, db):
        _fill(db)
        rows = db.select("users", columns=["id"], limit=3)
        assert len(rows) == 3
        assert all(set(r) == {"id"} for r in rows)
        with pytest.raises(CatalogError):
            db.select("users", columns=["ghost"])

    def test_order_by(self, db):
        _fill(db, 10)
        rows = db.select("users", order_by="id", descending=True, limit=2)
        assert [r["id"] for r in rows] == [9, 8]

    def test_order_by_puts_nulls_last(self, db):
        db.insert("users", {"id": 1, "name": None})
        db.insert("users", {"id": 2, "name": "a"})
        rows = db.select("users", order_by="name")
        assert rows[0]["name"] == "a"
        assert rows[-1]["name"] is None

    def test_update_changes_matching_rows(self, db):
        _fill(db)
        changed = db.update("users", {"name": "renamed"}, Contains("tags", "even"))
        assert changed == 10
        assert db.count("users", Cmp("name", "=", "renamed")) == 10

    def test_update_maintains_indices(self, db):
        _fill(db)
        db.create_index("idx_name", "users", "name")
        db.update("users", {"name": "zzz"}, Cmp("id", "=", 0))
        assert db.select("users", Cmp("name", "=", "zzz"))[0]["id"] == 0
        # old index entry gone
        assert all(r["id"] != 0 for r in db.select("users", Cmp("name", "=", "user0")))

    def test_update_rejects_pk_collision(self, db):
        _fill(db, 3)
        with pytest.raises(ConstraintError):
            db.update("users", {"id": 1}, Cmp("id", "=", 2))

    def test_update_same_pk_value_allowed(self, db):
        _fill(db, 3)
        assert db.update("users", {"id": 2, "name": "kept"}, Cmp("id", "=", 2)) == 1

    def test_delete(self, db):
        _fill(db)
        assert db.delete("users", Cmp("id", "<", 5)) == 5
        assert db.count("users") == 15
        assert db.delete("users") == 15
        assert db.count("users") == 0

    def test_mvcc_updates_create_dead_tuples(self, db):
        _fill(db, 10)
        db.update("users", {"name": "x"}, Cmp("id", "<", 5))
        stats = db.table_stats("users")
        assert stats["dead_rows"] == 5
        assert db.vacuum("users") >= 5
        assert db.table_stats("users")["dead_rows"] == 0

    def test_autovacuum_kicks_in(self, db):
        _fill(db, 10)
        # Default thresholds: 50 + 0.2*live dead tuples trigger autovacuum.
        for round_ in range(10):
            db.update("users", {"name": f"r{round_}"})
        assert db.table_stats("users")["dead_rows"] < 100

    def test_count_and_explain(self, db):
        _fill(db)
        assert db.count("users", Contains("tags", "odd")) == 10
        assert db.explain("users", Cmp("id", "=", 1)).startswith("IndexScan")


class TestTTLSweeper:
    def test_sweeper_deletes_expired(self):
        clock = VirtualClock()
        db = Database(clock=clock)
        db.create_table("t", [Column("id", INTEGER), Column("expiry", TIMESTAMP)])
        sweeper = db.enable_ttl("t", "expiry")
        for i in range(10):
            db.insert("t", {"id": i, "expiry": 5.0 if i < 4 else 100.0})
        clock.advance(10)
        db.select("t", limit=1)  # any statement runs due sweepers
        assert db.count("t") == 6
        assert sweeper.stats.rows_deleted == 4
        db.close()

    def test_sweeper_respects_interval(self):
        clock = VirtualClock()
        db = Database(MiniSQLConfig(ttl_interval=5.0), clock=clock)
        db.create_table("t", [Column("id", INTEGER), Column("expiry", TIMESTAMP)])
        sweeper = db.enable_ttl("t", "expiry")
        db.insert("t", {"id": 1, "expiry": 0.5})
        clock.advance(1)
        db.select("t")
        first_sweeps = sweeper.stats.sweeps
        db.select("t")
        assert sweeper.stats.sweeps == first_sweeps  # not due again yet
        clock.advance(5)
        db.select("t")
        assert sweeper.stats.sweeps == first_sweeps + 1
        db.close()

    def test_sweeper_uses_index_when_available(self):
        clock = VirtualClock()
        db = Database(clock=clock)
        db.create_table("t", [Column("id", INTEGER), Column("expiry", TIMESTAMP)])
        db.create_index("idx_expiry", "t", "expiry")
        db.enable_ttl("t", "expiry")
        plan = db.explain("t", Cmp("expiry", "<=", 1.0))
        assert "idx_expiry" in plan
        db.close()

    def test_enable_ttl_validates_column(self, db):
        with pytest.raises(CatalogError):
            db.enable_ttl("users", "ghost")


class TestIntrospection:
    def test_table_stats_shape(self, db):
        _fill(db, 5)
        stats = db.table_stats("users")
        assert stats["live_rows"] == 5
        assert stats["heap_bytes"] > 0
        assert "users_pkey" in stats["index_bytes"]

    def test_disk_usage_totals(self, db):
        _fill(db, 5)
        usage = db.disk_usage()
        assert usage["total_bytes"] == (
            usage["heap_bytes"] + usage["index_bytes"]
            + usage["wal_bytes"] + usage["csvlog_bytes"]
        )

    def test_info_features(self):
        db = Database(MiniSQLConfig())
        db.create_table("t", [Column("id", INTEGER)])
        info = db.info()
        assert info["gdpr_features"]["metadata_indexing"] is False
        db.create_index("idx", "t", "id")
        assert db.info()["gdpr_features"]["metadata_indexing"] is True
        db.close()
