"""Tests for heap storage, predicate expressions, and the planner."""

import pytest

from repro.common.errors import SQLError
from repro.minisql.expr import (
    ALWAYS,
    And,
    Cmp,
    Contains,
    In,
    IsEmpty,
    IsNull,
    Like,
    Not,
    Or,
)
from repro.minisql.heap import HeapTable, RowCodec
from repro.minisql.planner import plan_scan
from repro.minisql.schema import Catalog, Column, IndexInfo, TableSchema
from repro.minisql.types import INTEGER, TEXT, TEXT_LIST, TIMESTAMP


@pytest.fixture
def schema():
    return TableSchema(
        "t",
        [
            Column("id", INTEGER, nullable=False),
            Column("name", TEXT),
            Column("tags", TEXT_LIST),
            Column("expiry", TIMESTAMP),
        ],
    )


class TestHeapTable:
    def test_insert_fetch(self, schema):
        heap = HeapTable(schema)
        rid = heap.insert((1, "a", ("x",), None))
        assert heap.fetch(rid) == (1, "a", ("x",), None)
        assert heap.live_count == 1

    def test_fetch_out_of_range(self, schema):
        heap = HeapTable(schema)
        assert heap.fetch(0) is None
        assert heap.fetch(-1) is None

    def test_delete_leaves_tombstone_bloat(self, schema):
        heap = HeapTable(schema)
        rid = heap.insert((1, "a", (), None))
        size_before = heap.total_bytes()
        heap.delete(rid)
        assert heap.fetch(rid) is None
        assert heap.dead_count == 1
        assert heap.total_bytes() == size_before  # dead bytes still counted
        assert heap.live_bytes == 0

    def test_vacuum_reclaims_and_reuses_slots(self, schema):
        heap = HeapTable(schema)
        rids = [heap.insert((i, "x", (), None)) for i in range(5)]
        for rid in rids[:3]:
            heap.delete(rid)
        assert len(heap.vacuum()) == 3  # reclaimed rid list (WAL-logged)
        assert heap.dead_count == 0
        assert heap.dead_bytes == 0
        new_rid = heap.insert((9, "y", (), None))
        assert new_rid in rids[:3]  # freed slot reused

    def test_update_in_place(self, schema):
        heap = HeapTable(schema)
        rid = heap.insert((1, "a", (), None))
        old = heap.update(rid, (1, "bbbb", (), None))
        assert old == (1, "a", (), None)
        assert heap.fetch(rid)[1] == "bbbb"

    def test_update_delete_missing_rid_raises(self, schema):
        heap = HeapTable(schema)
        with pytest.raises(SQLError):
            heap.update(0, (1, "a", (), None))
        with pytest.raises(SQLError):
            heap.delete(0)

    def test_scan_skips_dead(self, schema):
        heap = HeapTable(schema)
        keep = heap.insert((1, "keep", (), None))
        kill = heap.insert((2, "kill", (), None))
        heap.delete(kill)
        assert [rid for rid, _ in heap.scan()] == [keep]

    def test_codec_roundtrip(self, schema):
        codec = RowCodec(lambda t, b: bytes(reversed(b)), lambda t, b: bytes(reversed(b)), "t")
        heap = HeapTable(schema, codec)
        rid = heap.insert((1, "enc", ("a", "b"), 5.0))
        assert heap.fetch(rid) == (1, "enc", ("a", "b"), 5.0)


class TestExpressions:
    ROW = (5, "alice", ("ads", "2fa"), None)

    def eval(self, expr, schema, row=None):
        return expr.evaluate(row or self.ROW, schema)

    def test_cmp_operators(self, schema):
        assert self.eval(Cmp("id", "=", 5), schema)
        assert self.eval(Cmp("id", "!=", 6), schema)
        assert self.eval(Cmp("id", "<", 6), schema)
        assert self.eval(Cmp("id", "<=", 5), schema)
        assert self.eval(Cmp("id", ">", 4), schema)
        assert self.eval(Cmp("id", ">=", 5), schema)
        assert not self.eval(Cmp("id", "=", 6), schema)

    def test_cmp_unknown_operator_rejected(self):
        with pytest.raises(SQLError):
            Cmp("id", "~", 5)

    def test_null_comparisons_are_false(self, schema):
        assert not self.eval(Cmp("expiry", "=", 5.0), schema)
        assert not self.eval(Cmp("expiry", "<", 5.0), schema)

    def test_contains_and_isempty(self, schema):
        assert self.eval(Contains("tags", "ads"), schema)
        assert not self.eval(Contains("tags", "ghost"), schema)
        assert self.eval(IsEmpty("tags"), schema, row=(1, "x", (), None))
        assert self.eval(IsEmpty("tags"), schema, row=(1, "x", None, None))
        assert not self.eval(IsEmpty("tags"), schema)

    def test_in_like_isnull(self, schema):
        assert self.eval(In("id", (4, 5)), schema)
        assert not self.eval(In("id", (1, 2)), schema)
        assert self.eval(Like("name", "ali*"), schema)
        assert not self.eval(Like("name", "bob*"), schema)
        assert self.eval(IsNull("expiry"), schema)
        assert not self.eval(IsNull("name"), schema)

    def test_boolean_composition(self, schema):
        expr = And(Cmp("id", "=", 5), Or(Like("name", "a*"), Contains("tags", "zz")))
        assert self.eval(expr, schema)
        assert self.eval(Not(Cmp("id", "=", 6)), schema)
        assert self.eval(Cmp("id", "=", 5) & Cmp("name", "=", "alice"), schema)
        assert self.eval(Cmp("id", "=", 9) | Cmp("name", "=", "alice"), schema)
        assert self.eval(~Cmp("id", "=", 9), schema)

    def test_conjunct_flattening(self):
        expr = And(Cmp("a", "=", 1), And(Cmp("b", "=", 2), Cmp("c", "=", 3)))
        assert len(expr.conjuncts()) == 3

    def test_columns_collected(self):
        expr = And(Cmp("a", "=", 1), Or(Contains("b", "x"), IsNull("c")))
        assert expr.columns() == {"a", "b", "c"}

    def test_always_matches(self, schema):
        assert self.eval(ALWAYS, schema)

    def test_empty_and_or_rejected(self):
        with pytest.raises(SQLError):
            And()
        with pytest.raises(SQLError):
            Or()


class TestPlanner:
    @pytest.fixture
    def catalog(self, schema):
        catalog = Catalog()
        catalog.add_table(schema)
        catalog.add_index(IndexInfo("idx_id", "t", "id", "btree"))
        catalog.add_index(IndexInfo("idx_tags", "t", "tags", "inverted"))
        catalog.add_index(IndexInfo("idx_expiry", "t", "expiry", "btree"))
        return catalog

    def test_no_predicate_is_seqscan(self, catalog):
        assert plan_scan(catalog, "t", None).kind == "seqscan"

    def test_unindexed_column_is_seqscan(self, catalog):
        assert plan_scan(catalog, "t", Cmp("name", "=", "x")).kind == "seqscan"

    def test_equality_uses_btree(self, catalog):
        plan = plan_scan(catalog, "t", Cmp("id", "=", 5))
        assert plan.kind == "indexscan"
        assert plan.op == "eq"
        assert plan.index.name == "idx_id"

    def test_contains_uses_inverted(self, catalog):
        plan = plan_scan(catalog, "t", Contains("tags", "ads"))
        assert plan.kind == "indexscan"
        assert plan.op == "contains"
        assert plan.index.name == "idx_tags"

    def test_contains_on_btree_column_not_usable(self, catalog):
        plan = plan_scan(catalog, "t", Contains("id", "5"))
        assert plan.kind == "seqscan"

    def test_range_bounds(self, catalog):
        plan = plan_scan(catalog, "t", Cmp("expiry", "<=", 9.0))
        assert plan.op == "range"
        assert plan.hi == 9.0 and plan.hi_inclusive
        plan = plan_scan(catalog, "t", Cmp("expiry", ">", 1.0))
        assert plan.lo == 1.0 and not plan.lo_inclusive

    def test_equality_preferred_over_range_and_contains(self, catalog):
        where = And(Cmp("expiry", "<=", 9.0), Cmp("id", "=", 1), Contains("tags", "a"))
        plan = plan_scan(catalog, "t", where)
        assert plan.op == "eq"
        assert plan.index.name == "idx_id"

    def test_contains_preferred_over_range(self, catalog):
        where = And(Cmp("expiry", "<=", 9.0), Contains("tags", "a"))
        plan = plan_scan(catalog, "t", where)
        assert plan.op == "contains"

    def test_or_predicates_not_index_driven(self, catalog):
        # Disjuncts cannot drive a single index scan; residual safety demands
        # a sequential scan.
        plan = plan_scan(catalog, "t", Or(Cmp("id", "=", 1), Cmp("id", "=", 2)))
        assert plan.kind == "seqscan"

    def test_describe_renders(self, catalog):
        assert "SeqScan" in plan_scan(catalog, "t", None).describe()
        assert "idx_id" in plan_scan(catalog, "t", Cmp("id", "=", 1)).describe()
