"""Concurrent reader/writer correctness on minisql under threads.

The per-table reader-writer locking must keep every invariant the seed's
global lock kept: no torn rows, no lost updates, index/heap agreement, and
cross-table independence.  These tests hammer one Database from many
threads and verify final-state and in-flight invariants.
"""

import threading

import pytest

from repro.minisql import Cmp, Column, Database, MiniSQLConfig, INTEGER, TEXT

THREADS = 8
ROWS_PER_WRITER = 50


def _make_db(locking: str) -> Database:
    db = Database(MiniSQLConfig(locking=locking))
    db.create_table(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
        primary_key="id",
    )
    db.create_index("t_v", "t", "v")
    return db


def _run_threads(targets) -> list:
    errors: list = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)
        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    return errors


@pytest.mark.parametrize("locking", ["table-rw", "global"])
class TestConcurrentWriters:
    def test_disjoint_inserts_all_land(self, locking):
        db = _make_db(locking)

        def writer(base):
            def run():
                for i in range(ROWS_PER_WRITER):
                    db.insert("t", {"id": base + i, "v": f"w{base}"})
            return run

        errors = _run_threads([writer(w * 1000) for w in range(THREADS)])
        assert errors == []
        assert db.count("t") == THREADS * ROWS_PER_WRITER
        # index agrees with the heap for every writer's stripe
        for w in range(THREADS):
            assert db.count("t", Cmp("v", "=", f"w{w * 1000}")) == ROWS_PER_WRITER

    def test_concurrent_updates_preserve_row_count(self, locking):
        db = _make_db(locking)
        for i in range(100):
            db.insert("t", {"id": i, "v": "initial"})

        def updater(tag):
            def run():
                for _ in range(20):
                    db.update("t", {"v": tag}, Cmp("id", "<", 50))
            return run

        errors = _run_threads([updater(f"u{n}") for n in range(4)])
        assert errors == []
        assert db.count("t") == 100  # MVCC updates never lose or dup rows
        values = {row["v"] for row in db.select("t", Cmp("id", "<", 50))}
        assert values <= {"u0", "u1", "u2", "u3"}


@pytest.mark.parametrize("locking", ["table-rw", "global"])
class TestReadersVsWriters:
    def test_readers_never_observe_torn_state(self, locking):
        """Index-driven and seqscan reads agree with the unique invariant
        while writers churn: a key is present exactly once or absent."""
        db = _make_db(locking)
        for i in range(200):
            db.insert("t", {"id": i, "v": "stable"})
        stop = threading.Event()

        def churn():
            k = 1000
            while not stop.is_set():
                db.insert("t", {"id": k, "v": "churn"})
                db.update("t", {"v": "churned"}, Cmp("id", "=", k))
                db.delete("t", Cmp("id", "=", k))
                k += 1

        def reader():
            for _ in range(300):
                rows = db.select("t", Cmp("id", "=", 42))
                assert len(rows) == 1 and rows[0]["v"] == "stable"
                assert db.count("t", Cmp("v", "=", "stable")) == 200

        churner = threading.Thread(target=churn)
        churner.start()
        read_errors = _run_threads([reader for _ in range(THREADS - 1)])
        stop.set()
        churner.join(timeout=60.0)
        assert read_errors == []
        assert db.count("t", Cmp("v", "=", "stable")) == 200

    def test_cross_table_writers_do_not_serialise_results(self, locking):
        """Writers on different tables interleave freely and correctly."""
        db = _make_db(locking)
        db.create_table(
            "u", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
            primary_key="id",
        )

        def writer(table):
            def run():
                for i in range(ROWS_PER_WRITER):
                    db.insert(table, {"id": i, "v": table})
            return run

        errors = _run_threads([writer("t"), writer("u")])
        assert errors == []
        assert db.count("t") == ROWS_PER_WRITER
        assert db.count("u") == ROWS_PER_WRITER


class TestSharedReaders:
    def test_readers_proceed_concurrently_under_table_rw(self):
        """With per-table RW locking, N readers overlap inside the lock."""
        db = _make_db("table-rw")
        db.insert("t", {"id": 1, "v": "x"})
        overlap = threading.Barrier(4, timeout=10.0)
        seen_overlap = threading.Event()

        real_select = db._executor.select

        def slow_select(*args, **kwargs):
            try:
                overlap.wait(timeout=5.0)
                seen_overlap.set()
            except threading.BrokenBarrierError:
                pass
            return real_select(*args, **kwargs)

        db._executor.select = slow_select
        try:
            errors = _run_threads([
                (lambda: db.select("t", Cmp("id", "=", 1))) for _ in range(4)
            ])
        finally:
            db._executor.select = real_select
        assert errors == []
        # all four readers reached the barrier *inside* the read lock
        assert seen_overlap.is_set()

    def test_transactions_with_sorted_lock_order_do_not_deadlock(self):
        db = _make_db("table-rw")
        db.create_table(
            "u", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
            primary_key="id",
        )

        def txn_writer(order_hint):
            def run():
                for i in range(25):
                    with db.transaction(write=("t", "u")) as txn:
                        txn.insert("t", {"id": order_hint * 1000 + i, "v": "a"})
                        txn.insert("u", {"id": order_hint * 1000 + i, "v": "b"})
            return run

        errors = _run_threads([txn_writer(1), txn_writer(2), txn_writer(3)])
        assert errors == []
        assert db.count("t") == 75
        assert db.count("u") == 75
