"""Model-based stateful testing: minisql Database vs a plain-Python model.

Hypothesis drives random DML sequences (insert / update / delete / vacuum /
index DDL) against a real Database and a dict model simultaneously; after
every step the visible state must match, regardless of which access path
the planner picked.  This is the strongest correctness net over the
planner + index-maintenance + MVCC + autovacuum machinery.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.common.errors import ConstraintError
from repro.minisql import (
    Cmp,
    Column,
    Contains,
    Database,
    INTEGER,
    TEXT,
    TEXT_LIST,
)

_TAGS = ("red", "green", "blue")
_NAMES = ("ann", "bob", "cyd")


class DatabaseModelMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.db = Database()
        self.db.create_table(
            "t",
            [
                Column("id", INTEGER, nullable=False),
                Column("name", TEXT),
                Column("tags", TEXT_LIST),
            ],
            primary_key="id",
        )
        self.model: dict[int, tuple] = {}  # id -> (name, tags)
        self.indexed = set()

    # -- DDL ----------------------------------------------------------------

    @rule(column=st.sampled_from(["name", "tags"]))
    def create_index(self, column):
        name = f"idx_{column}"
        if name in self.indexed:
            return
        self.db.create_index(name, "t", column)
        self.indexed.add(name)

    @rule(column=st.sampled_from(["name", "tags"]))
    def drop_index(self, column):
        name = f"idx_{column}"
        if name not in self.indexed:
            return
        self.db.drop_index(name)
        self.indexed.remove(name)

    # -- DML ----------------------------------------------------------------

    @rule(
        row_id=st.integers(0, 25),
        name=st.sampled_from(_NAMES),
        tags=st.lists(st.sampled_from(_TAGS), max_size=2, unique=True),
    )
    def insert(self, row_id, name, tags):
        if row_id in self.model:
            with pytest.raises(ConstraintError):
                self.db.insert("t", {"id": row_id, "name": name, "tags": tags})
        else:
            self.db.insert("t", {"id": row_id, "name": name, "tags": tags})
            self.model[row_id] = (name, tuple(tags))

    @rule(name=st.sampled_from(_NAMES), new_name=st.sampled_from(_NAMES))
    def update_by_name(self, name, new_name):
        changed = self.db.update("t", {"name": new_name}, Cmp("name", "=", name))
        expected = [rid for rid, (n, _) in self.model.items() if n == name]
        assert changed == len(expected)
        for rid in expected:
            self.model[rid] = (new_name, self.model[rid][1])

    @rule(tag=st.sampled_from(_TAGS), tags=st.lists(st.sampled_from(_TAGS), max_size=2, unique=True))
    def update_tags_by_tag(self, tag, tags):
        changed = self.db.update("t", {"tags": tags}, Contains("tags", tag))
        expected = [rid for rid, (_, t) in self.model.items() if tag in t]
        assert changed == len(expected)
        for rid in expected:
            self.model[rid] = (self.model[rid][0], tuple(tags))

    @rule(row_id=st.integers(0, 25))
    def delete_by_id(self, row_id):
        deleted = self.db.delete("t", Cmp("id", "=", row_id))
        assert deleted == (1 if row_id in self.model else 0)
        self.model.pop(row_id, None)

    @rule(name=st.sampled_from(_NAMES))
    def delete_by_name(self, name):
        deleted = self.db.delete("t", Cmp("name", "=", name))
        expected = [rid for rid, (n, _) in self.model.items() if n == name]
        assert deleted == len(expected)
        for rid in expected:
            del self.model[rid]

    @rule()
    def vacuum(self):
        self.db.vacuum("t")

    # -- invariants --------------------------------------------------------

    @invariant()
    def full_table_matches_model(self):
        rows = {
            row["id"]: (row["name"], tuple(row["tags"] or ()))
            for row in self.db.select("t")
        }
        assert rows == self.model

    @invariant()
    def point_lookups_match_model(self):
        for probe in (0, 7, 25):
            rows = self.db.select("t", Cmp("id", "=", probe))
            if probe in self.model:
                assert len(rows) == 1
                assert rows[0]["name"] == self.model[probe][0]
            else:
                assert rows == []

    @invariant()
    def tag_queries_match_model(self):
        for tag in _TAGS:
            got = {row["id"] for row in self.db.select("t", Contains("tags", tag))}
            expected = {rid for rid, (_, tags) in self.model.items() if tag in tags}
            assert got == expected

    def teardown(self):
        if hasattr(self, "db"):
            self.db.close()


TestDatabaseModel = DatabaseModelMachine.TestCase
TestDatabaseModel.settings = settings(max_examples=40, stateful_step_count=30,
                                      deadline=None)
