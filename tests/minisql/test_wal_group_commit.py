"""WAL group commit: batched fsync, commit boundaries, torn-batch replay."""

import os

from repro.common.clock import VirtualClock
from repro.minisql import Cmp, Column, Database, MiniSQLConfig, INTEGER, TEXT
from repro.minisql.wal import WALWriter, load_wal


def _file_bytes(path: str) -> int:
    return os.path.getsize(path) if os.path.exists(path) else 0


class TestWriterGroupCommit:
    def test_always_policy_amortised_over_batch(self, tmp_path):
        """fsync='always' with batch_size=N flushes once per N appends."""
        path = str(tmp_path / "w.wal")
        clock = VirtualClock()  # frozen: the 1s boundary never fires
        writer = WALWriter(path, fsync="always", clock=clock, batch_size=4)
        for i in range(3):
            writer.append(("insert", "t", i, (i,)))
        assert _file_bytes(path) == 0  # still buffered: batch not full
        writer.append(("insert", "t", 3, (3,)))
        flushed = _file_bytes(path)
        assert flushed > 0  # 4th append hit the batch boundary
        writer.append(("insert", "t", 4, (4,)))
        assert _file_bytes(path) == flushed  # next batch buffers again
        writer.close()
        assert len(load_wal(path)) == 5

    def test_batch_context_is_one_policy_application(self, tmp_path):
        """batch() buffers unconditionally; one flush at block exit."""
        path = str(tmp_path / "w.wal")
        clock = VirtualClock()
        writer = WALWriter(path, fsync="always", clock=clock, batch_size=1)
        with writer.batch():
            for i in range(10):
                writer.append(("insert", "t", i, (i,)))
            assert _file_bytes(path) == 0  # no per-append flushes
        assert _file_bytes(path) > 0  # the commit boundary flushed
        writer.close()
        assert len(load_wal(path)) == 10

    def test_grouped_output_is_byte_identical_to_ungrouped(self, tmp_path):
        """Group commit changes when bytes are flushed, never the bytes."""
        records = [("insert", "t", i, (i, f"row{i}")) for i in range(20)]
        grouped_path = str(tmp_path / "grouped.wal")
        plain_path = str(tmp_path / "plain.wal")
        grouped = WALWriter(grouped_path, fsync="always",
                            clock=VirtualClock(), batch_size=8)
        plain = WALWriter(plain_path, fsync="always", clock=VirtualClock())
        for record in records:
            grouped.append(record)
            plain.append(record)
        grouped.close()
        plain.close()
        assert open(grouped_path, "rb").read() == open(plain_path, "rb").read()


class TestTornBatchReplay:
    def _database(self, path: str) -> Database:
        return Database(MiniSQLConfig(wal_path=path, fsync="always",
                                      wal_batch_size=64))

    def test_torn_trailing_record_mid_batch_drops_only_the_tail(self, tmp_path):
        """Crash mid-group-commit: every intact record before the torn one
        replays; the torn record (and nothing else) is lost."""
        path = str(tmp_path / "db.wal")
        with self._database(path) as db:
            db.create_table(
                "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
                primary_key="id",
            )
            with db.transaction(write=("t",)) as txn:
                for i in range(10):
                    txn.insert("t", {"id": i, "v": f"row{i}"})
        # tear the last record: drop 3 trailing bytes of its pickle payload
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        with self._database(path) as recovered:
            rows = recovered.select("t", order_by="id")
            assert [row["id"] for row in rows] == list(range(9))
            # and the engine keeps working after recovery
            with recovered.transaction(write=("t",)) as txn:
                txn.insert("t", {"id": 99, "v": "post-crash"})
            assert recovered.count("t", Cmp("id", "=", 99)) == 1
        # recovery truncated the torn tail, so the post-crash insert is
        # not stranded behind torn bytes: a third incarnation sees it
        with self._database(path) as third:
            assert third.count("t", Cmp("id", "=", 99)) == 1
            assert third.count("t") == 10

    def test_clean_group_commit_replays_everything(self, tmp_path):
        path = str(tmp_path / "db.wal")
        with self._database(path) as db:
            db.create_table(
                "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)],
                primary_key="id",
            )
            with db.transaction(write=("t",)) as txn:
                for i in range(25):
                    txn.insert("t", {"id": i, "v": f"row{i}"})
                txn.delete("t", Cmp("id", "<", 5))
        with self._database(path) as recovered:
            assert recovered.count("t") == 20
            assert recovered.select("t", Cmp("id", "=", 3)) == []
            assert recovered.select("t", Cmp("id", "=", 12))[0]["v"] == "row12"
