"""Tests for the tiny SQL front-end."""

import pytest

from repro.common.errors import CatalogError, ParseError
from repro.minisql import Database
from repro.minisql.sql import execute, tokenize


@pytest.fixture
def db():
    database = Database()
    execute(database, "CREATE TABLE t (id INTEGER NOT NULL, name TEXT, "
                      "tags TEXT_LIST, score FLOAT, PRIMARY KEY (id))")
    yield database
    database.close()


class TestTokenizer:
    def test_basic_statement(self):
        assert tokenize("SELECT a FROM t WHERE x = 1") == \
            ["SELECT", "a", "FROM", "t", "WHERE", "x", "=", "1"]

    def test_string_literals_with_escapes(self):
        tokens = tokenize("x = 'it''s'")
        assert tokens == ["x", "=", "'it''s'"]

    def test_numbers_and_operators(self):
        assert tokenize("a <= -2.5") == ["a", "<=", "-2.5"]
        assert tokenize("a != 3") == ["a", "!=", "3"]

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @ FROM t")


class TestStatements:
    def test_insert_and_select(self, db):
        rid = execute(db, "INSERT INTO t (id, name, score) VALUES (1, 'alice', 9.5)")
        assert isinstance(rid, int)
        rows = execute(db, "SELECT name, score FROM t WHERE id = 1")
        assert rows == [{"name": "alice", "score": 9.5}]

    def test_select_star_and_count(self, db):
        execute(db, "INSERT INTO t (id, name) VALUES (1, 'a')")
        execute(db, "INSERT INTO t (id, name) VALUES (2, 'b')")
        assert len(execute(db, "SELECT * FROM t")[0]) == 4
        assert execute(db, "SELECT COUNT(*) FROM t") == 2
        assert execute(db, "SELECT COUNT(*) FROM t WHERE name = 'a'") == 1

    def test_order_limit(self, db):
        for i in range(5):
            execute(db, f"INSERT INTO t (id, name) VALUES ({i}, 'u{i}')")
        rows = execute(db, "SELECT id FROM t ORDER BY id DESC LIMIT 2")
        assert [r["id"] for r in rows] == [4, 3]

    def test_update_delete(self, db):
        execute(db, "INSERT INTO t (id, name) VALUES (1, 'a')")
        execute(db, "INSERT INTO t (id, name) VALUES (2, 'b')")
        assert execute(db, "UPDATE t SET name = 'z' WHERE id = 2") == 1
        assert execute(db, "DELETE FROM t WHERE name = 'z'") == 1
        assert execute(db, "SELECT COUNT(*) FROM t") == 1

    def test_where_grammar(self, db):
        for i in range(10):
            execute(db, f"INSERT INTO t (id, name, score) VALUES ({i}, 'u{i % 2}', {i}.0)")
        assert execute(db, "SELECT COUNT(*) FROM t WHERE id >= 5 AND name = 'u1'") == 3
        assert execute(db, "SELECT COUNT(*) FROM t WHERE id = 0 OR id = 9") == 2
        assert execute(db, "SELECT COUNT(*) FROM t WHERE NOT (id < 8)") == 2
        assert execute(db, "SELECT COUNT(*) FROM t WHERE id IN (1, 2, 99)") == 2
        assert execute(db, "SELECT COUNT(*) FROM t WHERE name LIKE 'u*'") == 10
        assert execute(db, "SELECT COUNT(*) FROM t WHERE score IS NOT NULL") == 10

    def test_is_null(self, db):
        execute(db, "INSERT INTO t (id) VALUES (1)")
        assert execute(db, "SELECT COUNT(*) FROM t WHERE name IS NULL") == 1

    def test_contains_on_text_list(self, db):
        execute(db, "INSERT INTO t (id, tags) VALUES (1, 'ads,2fa')")
        execute(db, "INSERT INTO t (id, tags) VALUES (2, 'ads')")
        assert execute(db, "SELECT COUNT(*) FROM t WHERE CONTAINS(tags, '2fa')") == 1

    def test_create_drop_index_and_explain(self, db):
        execute(db, "CREATE INDEX idx_name ON t (name)")
        plan = execute(db, "EXPLAIN SELECT * FROM t WHERE name = 'a'")
        assert "idx_name" in plan
        execute(db, "DROP INDEX idx_name")
        plan = execute(db, "EXPLAIN SELECT * FROM t WHERE name = 'a'")
        assert plan.startswith("SeqScan")

    def test_unique_index(self, db):
        execute(db, "CREATE UNIQUE INDEX uq_name ON t (name)")
        execute(db, "INSERT INTO t (id, name) VALUES (1, 'solo')")
        from repro.common.errors import ConstraintError
        with pytest.raises(ConstraintError):
            execute(db, "INSERT INTO t (id, name) VALUES (2, 'solo')")

    def test_vacuum(self, db):
        execute(db, "INSERT INTO t (id) VALUES (1)")
        execute(db, "DELETE FROM t WHERE id = 1")
        assert execute(db, "VACUUM t") == 1
        assert execute(db, "VACUUM") == 0

    def test_drop_table(self, db):
        execute(db, "DROP TABLE t")
        with pytest.raises(CatalogError):
            execute(db, "SELECT * FROM t")

    def test_null_literal(self, db):
        execute(db, "INSERT INTO t (id, name) VALUES (1, NULL)")
        assert execute(db, "SELECT name FROM t WHERE id = 1") == [{"name": None}]


class TestParseErrors:
    def test_mismatched_insert_counts(self, db):
        with pytest.raises(ParseError):
            execute(db, "INSERT INTO t (id, name) VALUES (1)")

    def test_unknown_statement(self, db):
        with pytest.raises(ParseError):
            execute(db, "TRUNCATE t")

    def test_unterminated_where(self, db):
        with pytest.raises(ParseError):
            execute(db, "SELECT * FROM t WHERE id =")

    def test_bad_limit(self, db):
        with pytest.raises(ParseError):
            execute(db, "SELECT * FROM t LIMIT 'five'")

    def test_bad_operator(self, db):
        with pytest.raises(ParseError):
            execute(db, "SELECT * FROM t WHERE id ~ 3")
