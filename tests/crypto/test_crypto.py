"""Tests for the simulated LUKS / TLS encryption boundaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.luks import AtRestCipher, FileCipher, NullAtRestCipher
from repro.crypto.stream import KeystreamPool, StreamCipher, xor_bytes
from repro.crypto.tls import ChannelError, LoopbackSecureLink, SecureChannel


class TestStreamCipher:
    def test_roundtrip(self):
        cipher = StreamCipher(b"key")
        data = b"the quick brown fox"
        assert cipher.apply(cipher.apply(data)) == data

    def test_ciphertext_differs_from_plaintext(self):
        cipher = StreamCipher(b"key")
        data = b"A" * 64
        assert cipher.apply(data) != data

    def test_different_keys_different_streams(self):
        a = StreamCipher(b"key-a").keystream(64)
        b = StreamCipher(b"key-b").keystream(64)
        assert a != b

    def test_different_counters_different_streams(self):
        cipher = StreamCipher(b"key")
        assert cipher.keystream(64, counter=0) != cipher.keystream(64, counter=1)

    def test_keystream_length_exact(self):
        cipher = StreamCipher(b"key")
        for n in (1, 63, 64, 65, 1000):
            assert len(cipher.keystream(n)) == n

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            StreamCipher(b"")

    def test_empty_payload(self):
        assert StreamCipher(b"key").apply(b"") == b""

    @given(st.binary(max_size=500), st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data, counter):
        cipher = StreamCipher(b"prop-key")
        assert cipher.apply(cipher.apply(data, counter), counter) == data


class TestXorBytes:
    def test_self_inverse(self):
        data, stream = b"hello world", b"0123456789abc"
        once = xor_bytes(data, stream)
        assert xor_bytes(once, stream) == data

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_length_preserved(self, data):
        stream = bytes(len(data))
        assert xor_bytes(data, stream) == data  # zero stream is identity


class TestKeystreamPool:
    def test_roundtrip_any_offset(self):
        pool = KeystreamPool(b"key", nonce=1, size=1024)
        data = b"payload-bytes"
        for offset in (0, 500, 1020, 5000):
            assert pool.apply(pool.apply(data, offset), offset) == data

    def test_wraps_around(self):
        pool = KeystreamPool(b"key", nonce=1, size=64)
        chunk = pool.slice(60, 10)  # crosses the pool boundary
        assert len(chunk) == 10
        assert chunk[:4] == pool.slice(60, 4)
        assert chunk[4:] == pool.slice(0, 6)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            KeystreamPool(b"key", nonce=1, size=0)


class TestAtRestCipher:
    def test_roundtrip_per_token(self):
        cipher = AtRestCipher()
        sealed = cipher.seal("tok", b"secret")
        assert sealed != b"secret"
        assert cipher.open("tok", sealed) == b"secret"

    def test_different_tokens_different_ciphertexts(self):
        cipher = AtRestCipher()
        assert cipher.seal("a", b"same-data") != cipher.seal("bbb", b"same-data")

    def test_null_cipher_is_identity(self):
        cipher = NullAtRestCipher()
        assert cipher.seal("tok", b"x") == b"x"
        assert cipher.open("tok", b"x") == b"x"
        assert cipher.enabled is False


class TestFileCipher:
    def test_roundtrip_at_offset(self):
        cipher = FileCipher()
        blob = cipher.apply(b"log line\n", 12345)
        assert cipher.apply(blob, 12345) == b"log line\n"

    def test_append_stream_decodable_in_one_pass(self):
        """Writing chunks at running offsets decrypts as one buffer."""
        cipher = FileCipher()
        chunks = [b"first", b"second-longer", b"x"]
        encrypted = b""
        offset = 0
        for chunk in chunks:
            encrypted += cipher.apply(chunk, offset)
            offset += len(chunk)
        assert cipher.apply(encrypted, 0) == b"".join(chunks)

    def test_window_decrypts_independently(self):
        """Any window decrypts given its offset (the dm-crypt property)."""
        cipher = FileCipher()
        plain = bytes(range(256)) * 4
        whole = cipher.apply(plain, 0)
        window = whole[100:200]
        assert cipher.apply(window, 100) == plain[100:200]


class TestSecureChannel:
    def test_wrap_unwrap_roundtrip(self):
        channel = SecureChannel(b"k")
        for payload in (b"", b"x", b"y" * 1000):
            assert channel.unwrap(channel.wrap(payload)) == payload

    def test_sequence_enforced(self):
        tx = SecureChannel(b"k")
        frame1 = tx.wrap(b"one")
        frame2 = tx.wrap(b"two")
        rx = SecureChannel(b"k")
        with pytest.raises(ChannelError):
            rx.unwrap(frame2)  # skipped frame1

    def test_short_frame_rejected(self):
        with pytest.raises(ChannelError):
            SecureChannel(b"k").unwrap(b"abc")

    def test_truncated_body_rejected(self):
        channel = SecureChannel(b"k")
        frame = channel.wrap(b"hello-world")
        with pytest.raises(ChannelError):
            SecureChannel(b"k").unwrap(frame[:-3])


class TestLoopbackSecureLink:
    def test_disabled_is_passthrough(self):
        link = LoopbackSecureLink(enabled=False)
        assert link.to_server(b"raw") == b"raw"
        assert link.to_client(b"raw") == b"raw"

    def test_enabled_roundtrips(self):
        link = LoopbackSecureLink(enabled=True)
        for i in range(10):
            payload = f"msg-{i}".encode()
            assert link.to_server(payload) == payload
            assert link.to_client(payload) == payload

    def test_concurrent_threads_do_not_interfere(self):
        import threading

        link = LoopbackSecureLink(enabled=True)
        errors = []

        def talk(tag):
            try:
                for i in range(500):
                    payload = f"{tag}-{i}".encode()
                    assert link.to_server(payload) == payload
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=talk, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
