"""Smoke tests: every experiment regenerates its figure at tiny scale.

Full-scale shape checks live in benchmarks/; here we verify the harnesses
run end to end, produce the right row structure, and (for the cheap ones)
hold their shape even at the reduced scale.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS, fig3a, fig3b, fig4, fig5, fig6, scale, table3
from repro.experiments.base import ExperimentResult


class TestExperimentResult:
    def test_render_contains_rows_and_checks(self):
        result = ExperimentResult(
            experiment="x", title="t", paper_expectation="p",
            rows=[{"a": 1, "b": 2.5}],
            shape_checks=[("holds", True)],
        )
        text = result.render()
        assert "== x: t ==" in text
        assert "2.5" in text
        assert "[x] holds" in text
        assert result.shape_ok
        result.check()  # must not raise

    def test_check_raises_with_description(self):
        result = ExperimentResult("x", "t", "p", rows=[],
                                  shape_checks=[("broken claim", False)])
        assert not result.shape_ok
        with pytest.raises(AssertionError, match="broken claim"):
            result.check()

    def test_registry_covers_every_figure_and_table(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig3a", "fig3b", "fig4a", "fig4b", "fig5",
            "table3", "fig6", "fig7", "fig7t", "fig8", "fig8t", "fig9p",
            "fig10s", "fig11q", "fig12m",
        }


class TestFig3a:
    def test_shape_holds_at_small_scale(self):
        result = fig3a.run(counts=(400, 800, 1600))
        result.check()
        assert [row["total_keys"] for row in result.rows] == [400, 800, 1600]

    def test_erasure_delay_helpers(self):
        lazy = fig3a.erasure_delay(300, strict=False)
        strict = fig3a.erasure_delay(300, strict=True)
        assert strict < 1.0
        assert lazy > strict


class TestFig3b:
    def test_rows_structure(self):
        result = fig3b.run(rows=400, ops=200, repeats=1)
        assert [row["secondary_indices"] for row in result.rows] == [0, 1, 2]
        assert result.rows[0]["relative_pct"] == 100.0


class TestTable3:
    def test_shape_holds_at_small_scale(self):
        result = table3.run(records=300)
        result.check()
        configs = [row["config"] for row in result.rows]
        assert configs == ["redis", "postgres", "postgres-metadata-index"]


class TestFig4:
    def test_tiny_run_produces_full_grid(self):
        result = fig4.run(engine="redis", workloads=("A", "C"),
                          records=120, operations=120, threads=1)
        assert len(result.rows) == 2
        for row in result.rows:
            for column in ("encrypt_pct", "ttl_pct", "log_pct", "combined_pct"):
                assert row[column] > 0


class TestFig5:
    def test_tiny_run_structure(self):
        result = fig5.run(records=200, operations=30, threads=2)
        assert len(result.rows) == 3
        assert all(row["min_correct_pct"] == 100.0 for row in result.rows)


class TestFig6:
    def test_tiny_run_structure(self):
        result = fig6.run(records=200, ycsb_operations=150,
                          gdpr_operations=30, threads=1)
        assert {row["series"] for row in result.rows} == {
            "ycsb-redis", "gdpr-redis", "ycsb-postgres", "gdpr-postgres",
        }


class TestScale:
    def test_tiny_redis_sweep(self):
        result = scale.run_engine(
            "redis", ycsb_scales=(200, 400), gdpr_scales=(200, 400),
            ycsb_operations=100, gdpr_operations=20, threads=1,
        )
        series = {row["series"] for row in result.rows}
        assert series == {"ycsb-C", "gdpr-customer"}
        assert result.experiment == "fig7"

    def test_fig8_name(self):
        result = scale.run_engine(
            "postgres", ycsb_scales=(200,), gdpr_scales=(200, 400),
            ycsb_operations=50, gdpr_operations=10, threads=1,
        )
        assert result.experiment == "fig8"


class TestFig12m:
    def test_shape_holds_at_small_scale(self):
        from repro.experiments import migration

        result = migration.run(record_count=2000, shards=3)
        result.check()
        by_strategy = {row["strategy"]: row for row in result.rows}
        ring = by_strategy["hash-ring (measured)"]
        modulo = by_strategy["modulo (computed)"]
        assert ring["shards_after"] == modulo["shards_after"] == 4
        assert modulo["keys_moved"] >= 2 * ring["keys_moved"]
