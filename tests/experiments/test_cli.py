"""Tests for the experiments CLI (python -m repro.experiments)."""

from repro.experiments.__main__ import main


class TestCLI:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "table3" in out

    def test_unknown_name_rejected(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_named_experiment(self, capsys):
        assert main(["fig3a"]) == 0
        out = capsys.readouterr().out
        assert "shape: OK" in out
        assert "lazy_erasure_s" in out
