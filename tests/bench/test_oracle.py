"""Exact-oracle correctness tests: client responses vs the shadow store."""

import random

import pytest

from repro.bench.oracle import ShadowStore, run_with_oracle
from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, make_client
from repro.common.clock import VirtualClock
from repro.gdpr import PersonalRecord, Principal

CTRL = Principal.controller()
PROC = Principal.processor()
REG = Principal.regulator()


class TestShadowStore:
    def test_mirrors_basic_lifecycle(self):
        shadow = ShadowStore()
        record = PersonalRecord(key="k", data="u1:d", purposes=("ads",),
                                ttl_seconds=60.0, user="u1")
        shadow.create(record)
        assert shadow.read_data_by_key("k") == "u1:d"
        assert shadow.read_data_by_usr("u1") == [("k", "u1:d")]
        assert shadow.update_data_by_key("k", "u1:fixed") == 1
        assert shadow.read_data_by_key("k") == "u1:fixed"
        assert shadow.delete_record_by_key("k") == 1
        assert shadow.read_data_by_key("k") is None
        assert shadow.delete_record_by_key("k") == 0

    def test_metadata_updates(self):
        shadow = ShadowStore()
        shadow.create(PersonalRecord(key="k", data="u1:d", purposes=("ads",),
                                     ttl_seconds=60.0, user="u1"))
        assert shadow.update_metadata_by_key("k", "OBJ", ("ads",)) == 1
        assert shadow.read_metadata_by_key("k")["OBJ"] == ("ads",)
        assert shadow.update_metadata_by_pur("ads", "SHR", ("acme",)) == 1
        assert shadow.read_metadata_by_shr("acme") != []

    def test_ttl_deletion_with_virtual_clock(self):
        clock = VirtualClock()
        shadow = ShadowStore(clock=clock)
        shadow.create(PersonalRecord(key="s", data="u:x", purposes=("p",),
                                     ttl_seconds=10.0, user="u"))
        shadow.create(PersonalRecord(key="l", data="u:y", purposes=("p",),
                                     ttl_seconds=1000.0, user="u"))
        clock.advance(50)
        assert shadow.delete_record_by_ttl() == 1
        assert shadow.record_exists("l")
        assert not shadow.record_exists("s")


def _random_calls(corpus_cfg, count, seed):
    """Generate (op_name, shadow-args, client-executor) triples."""
    rng = random.Random(seed)
    purposes = corpus_cfg.purposes
    parties = corpus_cfg.parties
    n = corpus_cfg.record_count
    users = corpus_cfg.user_count
    calls = []
    for i in range(count):
        kind = rng.randrange(10)
        key = f"k{rng.randrange(n):08d}"
        user = f"u{rng.randrange(users):05d}"
        purpose = rng.choice(purposes)
        party = rng.choice(parties)
        if kind == 0:
            calls.append(("read-data-by-key", (key,),
                          lambda c, k=key: c.read_data_by_key(PROC, k)))
        elif kind == 1:
            calls.append(("read-data-by-pur", (purpose,),
                          lambda c, p=purpose: c.read_data_by_pur(PROC, p)))
        elif kind == 2:
            calls.append(("read-data-by-usr", (user,),
                          lambda c, u=user: c.read_data_by_usr(Principal.customer(u), u)))
        elif kind == 3:
            calls.append(("read-metadata-by-usr", (user,),
                          lambda c, u=user: c.read_metadata_by_usr(REG, u)))
        elif kind == 4:
            calls.append(("read-metadata-by-shr", (party,),
                          lambda c, p=party: c.read_metadata_by_shr(REG, p)))
        elif kind == 5:
            victim_key = f"k{rng.randrange(n):08d}"
            data = f"{_owner(victim_key, users)}:rect{i}"
            calls.append((
                "update-data-by-key", (victim_key, data),
                lambda c, k=victim_key, d=data:
                    c.update_data_by_key(Principal.customer(_owner(k, users)), k, d),
            ))
        elif kind == 6:
            calls.append(("update-metadata-by-pur", (purpose, "SHR", (party,)),
                          lambda c, p=purpose, q=party:
                          c.update_metadata_by_pur(CTRL, p, "SHR", (q,))))
        elif kind == 7:
            calls.append(("delete-record-by-key", (key,),
                          lambda c, k=key: c.delete_record_by_key(
                              Principal.customer(_owner(k, users)), k)))
        elif kind == 8:
            calls.append(("delete-record-by-usr", (user,),
                          lambda c, u=user: c.delete_record_by_usr(CTRL, u)))
        else:
            calls.append(("read-data-by-obj", (purpose,),
                          lambda c, p=purpose: c.read_data_by_obj(PROC, p)))
    return calls


def _owner(key: str, users: int) -> str:
    index = int(key[1:])
    return f"u{index % users:05d}"


@pytest.mark.parametrize("engine", ["redis", "postgres"])
class TestOracleRun:
    def test_exact_correctness_on_random_mix(self, engine):
        corpus_cfg = RecordCorpusConfig(record_count=120, user_count=12, seed=5)
        records = generate_corpus(corpus_cfg)
        client = make_client(
            engine, FeatureSet.full(metadata_indexing=(engine == "postgres"))
        )
        try:
            client.load_records(records)
            shadow = ShadowStore()
            shadow.load(records)
            calls = _random_calls(corpus_cfg, 200, seed=9)
            report = run_with_oracle(client, shadow, calls)
            mismatches = getattr(report, "oracle_mismatches")
            assert mismatches == [], mismatches[:3]
            assert report.correctness_pct == 100.0
            assert report.failed == 0
            # shadow and client agree on the final record census
            assert client.record_count() == len(shadow)
        finally:
            client.close()

    def test_oracle_catches_a_wrong_response(self, engine):
        client = make_client(engine, FeatureSet.none())
        try:
            record = PersonalRecord(key="k1", data="u1:real", purposes=("ads",),
                                    ttl_seconds=60.0, user="u1")
            client.load_records([record])
            shadow = ShadowStore()
            # deliberately diverge the shadow
            shadow.create(record.with_metadata(data="u1:DIFFERENT"))
            calls = [("read-data-by-key", ("k1",),
                      lambda c: c.read_data_by_key(PROC, "k1"))]
            report = run_with_oracle(client, shadow, calls)
            assert report.correctness_pct == 0.0
            assert len(report.oracle_mismatches) == 1
        finally:
            client.close()
