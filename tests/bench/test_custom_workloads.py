"""GDPRbench workload customisation (the paper: "we make it possible to
update or replace them with custom workloads, when necessary")."""

from collections import Counter

from repro.bench.gdpr_workloads import GDPRWorkloadSpec, make_operations
from repro.bench.records import RecordCorpusConfig
from repro.bench.session import GDPRBenchConfig, GDPRBenchSession
from repro.clients import FeatureSet


class TestCustomWorkloads:
    CORPUS = RecordCorpusConfig(record_count=100, user_count=10)

    def test_erasure_storm(self):
        """A custom workload: a breach aftermath where erasure dominates."""
        storm = GDPRWorkloadSpec(
            name="customer",  # reuse the customer role's operation builders
            purpose="post-breach erasure storm",
            mix=(
                ("delete-record-by-key", 70.0),
                ("read-metadata-by-key", 20.0),
                ("read-data-by-usr", 10.0),
            ),
            distribution="zipfian",
        )
        ops = make_operations(storm, self.CORPUS, 500, seed=3)
        counts = Counter(op.name for op in ops)
        assert 0.6 < counts["delete-record-by-key"] / 500 < 0.8

    def test_custom_workload_runs_against_engine(self):
        heavy_reader = GDPRWorkloadSpec(
            name="processor",
            purpose="analytics burst",
            mix=(("read-data-by-pur", 50.0), ("read-data-by-key", 50.0)),
            distribution="uniform",
        )
        config = GDPRBenchConfig(
            engine="postgres",
            features=FeatureSet.full(metadata_indexing=True),
            corpus=self.CORPUS,
            operation_count=40,
            threads=2,
        )
        with GDPRBenchSession(config) as session:
            session.load()
            report = session.run(heavy_reader, measure_space=False)
            assert report.correctness_pct == 100.0
            assert report.workload == "processor"

    def test_uniform_vs_zipf_distribution_changes_access_skew(self):
        uniform = GDPRWorkloadSpec(
            "customer", "", (("read-metadata-by-key", 100.0),), "uniform")
        zipf = GDPRWorkloadSpec(
            "customer", "", (("read-metadata-by-key", 100.0),), "zipfian")

        # statistical skew check on the generated operations
        import re

        def chosen_keys(spec):
            ops = make_operations(spec, self.CORPUS, 600, seed=4)
            # keys are bound into the closures' defaults
            keys = []
            for op in ops:
                bound = op.execute.__defaults__
                for cell in bound or ():
                    if isinstance(cell, str) and re.fullmatch(r"k\d{8}", cell):
                        keys.append(cell)
            return Counter(keys)

        uniform_counts = chosen_keys(uniform)
        zipf_counts = chosen_keys(zipf)
        # zipf concentrates: its most-common key is hit far more often
        assert zipf_counts.most_common(1)[0][1] > 3 * uniform_counts.most_common(1)[0][1]
