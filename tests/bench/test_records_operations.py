"""Tests for the record corpus generator and operation validators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.operations import (
    Operation,
    data_owned_by,
    is_bool,
    is_nonneg_int,
    is_optional_str,
    is_pair_list,
    metadata_for_key,
    metadata_shared_with,
    metadata_user_is,
)
from repro.bench.records import (
    RecordCorpusConfig,
    generate_corpus,
    key_for,
    logical_space_factor,
    make_record,
    user_for,
)


class TestCorpus:
    def test_deterministic_given_seed(self):
        a = generate_corpus(RecordCorpusConfig(record_count=50, seed=1))
        b = generate_corpus(RecordCorpusConfig(record_count=50, seed=1))
        assert a == b
        c = generate_corpus(RecordCorpusConfig(record_count=50, seed=2))
        assert a != c

    def test_keys_unique_and_stable(self):
        corpus = generate_corpus(RecordCorpusConfig(record_count=100))
        keys = [r.key for r in corpus]
        assert len(set(keys)) == 100
        assert keys[7] == key_for(7)

    def test_users_round_robin(self):
        config = RecordCorpusConfig(record_count=100, user_count=10)
        corpus = generate_corpus(config)
        assert corpus[23].user == user_for(23, 10) == "u00003"
        per_user = {}
        for record in corpus:
            per_user[record.user] = per_user.get(record.user, 0) + 1
        assert set(per_user.values()) == {10}

    def test_data_owner_prefixed(self):
        for record in generate_corpus(RecordCorpusConfig(record_count=50)):
            assert record.data.startswith(record.user + ":")

    def test_ttl_mix_matches_fraction(self):
        config = RecordCorpusConfig(record_count=2000, short_ttl_fraction=0.2)
        corpus = generate_corpus(config)
        short = sum(1 for r in corpus if r.ttl_seconds == config.short_ttl_seconds)
        assert 0.15 < short / 2000 < 0.25

    def test_every_record_has_purpose_and_ttl(self):
        for record in generate_corpus(RecordCorpusConfig(record_count=100)):
            assert record.purposes          # G 5(1b)
            assert record.ttl_seconds > 0   # G 5(1e)

    def test_objections_never_overlap_purposes(self):
        for record in generate_corpus(RecordCorpusConfig(record_count=500)):
            assert not set(record.objections) & set(record.purposes)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RecordCorpusConfig(record_count=0)
        with pytest.raises(ValueError):
            RecordCorpusConfig(user_count=0)
        with pytest.raises(ValueError):
            RecordCorpusConfig(short_ttl_fraction=1.5)

    def test_logical_space_factor_in_metadata_explosion_range(self):
        corpus = generate_corpus(RecordCorpusConfig(record_count=500))
        factor = logical_space_factor(corpus)
        # Table 3's phenomenon: metadata overshadows the 10-byte datum.
        assert 3.0 < factor < 6.0

    @given(st.integers(0, 10_000), st.integers(1, 12345))
    @settings(max_examples=50)
    def test_make_record_wire_roundtrips(self, index, seed):
        from repro.gdpr.record import PersonalRecord
        config = RecordCorpusConfig(record_count=1)
        record = make_record(index, config, random.Random(seed))
        assert PersonalRecord.from_wire(record.to_wire()) == record


class TestValidators:
    def test_scalar_validators(self):
        assert is_nonneg_int(0) and is_nonneg_int(5)
        assert not is_nonneg_int(-1) and not is_nonneg_int("5") and not is_nonneg_int(True) is False
        assert is_bool(True) and is_bool(False) and not is_bool(1)
        assert is_optional_str(None) and is_optional_str("x") and not is_optional_str(5)

    def test_data_owned_by(self):
        check = data_owned_by("u1")
        assert check([("k1", "u1:data"), ("k2", "u1:other")])
        assert not check([("k1", "u2:data")])
        assert check([])
        assert not check("not-a-list")

    def test_metadata_user_is(self):
        check = metadata_user_is("u1")
        assert check([("k", {"USR": "u1"})])
        assert not check([("k", {"USR": "u2"})])

    def test_metadata_shared_with(self):
        check = metadata_shared_with("acme")
        assert check([("k", {"SHR": ("acme", "globex")})])
        assert not check([("k", {"SHR": ()})])

    def test_metadata_for_key(self):
        check = metadata_for_key("k")
        assert check(None)
        assert check({"PUR": (), "TTL": 1.0, "USR": "", "OBJ": (), "DEC": (),
                      "SHR": (), "SRC": ""})
        assert not check({"PUR": ()})

    def test_is_pair_list(self):
        assert is_pair_list([("a", "b"), ("c", "d")])
        assert not is_pair_list([("a",)])
        assert not is_pair_list(None)

    def test_operation_run(self):
        op = Operation("probe", execute=lambda c: c + 1, validate=lambda r: r == 2)
        assert op.run(1) == (2, True)
        assert op.run(5) == (6, False)

    def test_operation_default_validator_accepts_all(self):
        op = Operation("noop", execute=lambda c: None)
        assert op.run(object())[1] is True
