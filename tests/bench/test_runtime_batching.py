"""Batch execution in the benchmark runtime: pipelined correctness.

``run_workload(batch_size>1)`` routes stretches of pipeline-safe
operations through ``client.pipeline()``; everything else runs singly.
The tallies (correct / failed / per-op stats) must be indistinguishable
from a batch_size=1 run, and clients without a pipeline fall back
transparently.
"""

import pytest

from repro.bench import ycsb as ycsb_mod
from repro.bench.operations import Operation
from repro.bench.runtime import run_thread_sweep, run_workload
from repro.bench.ycsb import YCSBConfig
from repro.clients import FeatureSet, RedisGDPRClient
from repro.common.errors import BenchmarkError


def _loaded_client(**kwargs):
    client = RedisGDPRClient(FeatureSet.none(), **kwargs)
    config = YCSBConfig(record_count=200, operation_count=0, seed=5,
                        field_count=2, field_length=8)
    ycsb_mod.run_load(client, config)
    return client, config


class TestBatchedRunWorkload:
    @pytest.mark.parametrize("threads", [1, 4])
    def test_batched_run_matches_single_run_tallies(self, threads):
        results = {}
        for batch_size in (1, 16):
            client, config = _loaded_client(stripes=8)
            try:
                config = YCSBConfig(record_count=200, operation_count=600,
                                    seed=5, field_count=2, field_length=8)
                ops = ycsb_mod.transaction_operations(
                    ycsb_mod.WORKLOADS["A"], config, insert_start=200
                )
                report = run_workload(client, ops, threads=threads,
                                      batch_size=batch_size)
                results[batch_size] = report
            finally:
                client.close()
        assert results[16].operations == results[1].operations
        assert results[16].correctness_pct == results[1].correctness_pct == 100.0
        assert results[16].failed == results[1].failed == 0
        # per-op stats cover every operation in both modes
        assert results[16].stats.total_ops == results[1].stats.total_ops

    def test_mixed_batchable_and_scan_ops_preserve_order_effects(self):
        """A non-batchable op (scan) flushes the pending batch first, so a
        scan issued after inserts on the same worker sees their effect."""
        client, _ = _loaded_client(stripes=4)
        try:
            ops = []
            for i in range(10):
                key = f"zz{i:04d}"
                fields = {"f0": "x", "f1": "y"}
                ops.append(Operation(
                    "insert", lambda c, k=key, f=fields: c.ycsb_insert(k, f)
                ))
            ops.append(Operation(
                "scan", lambda c: c.ycsb_scan("zz0000", 10),
                validate=lambda r: isinstance(r, list) and len(r) == 10,
            ))
            report = run_workload(client, ops, threads=1, batch_size=32)
            assert report.correctness_pct == 100.0
        finally:
            client.close()

    def test_client_without_pipeline_falls_back(self):
        class Plain:
            engine_name = "plain"

            def __init__(self):
                self.calls = 0

            def poke(self):
                self.calls += 1
                return True

        client = Plain()
        ops = [Operation("read", lambda c: c.poke()) for _ in range(20)]
        report = run_workload(client, ops, threads=2, batch_size=8)
        assert client.calls == 20
        assert report.correct == 20

    def test_rejects_bad_batch_size(self):
        client, _ = _loaded_client()
        try:
            with pytest.raises(BenchmarkError):
                run_workload(client, [], batch_size=0)
        finally:
            client.close()


class TestThreadSweep:
    def test_sweep_returns_report_per_thread_count(self):
        config = YCSBConfig(record_count=100, operation_count=200, seed=9,
                            field_count=1, field_length=8)

        def factory():
            client = RedisGDPRClient(FeatureSet.none(), stripes=4)
            ycsb_mod.run_load(client, config)
            return client

        def make_ops(client):
            return ycsb_mod.transaction_operations(
                ycsb_mod.WORKLOADS["C"], config, insert_start=100
            )

        reports = run_thread_sweep(
            factory, make_ops, thread_counts=(1, 2), batch_size=8,
            workload_name="sweep-test",
        )
        assert [r.workload for r in reports] == ["sweep-test@1t", "sweep-test@2t"]
        assert all(r.correctness_pct == 100.0 for r in reports)
        assert all(r.operations == 200 for r in reports)
