"""Tests for the four GDPRbench core workloads (Table 2a)."""

from collections import Counter

import pytest

from repro.bench.gdpr_workloads import (
    CONTROLLER,
    CORE_WORKLOADS,
    CUSTOMER,
    PROCESSOR,
    REGULATOR,
    make_operations,
)
from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.clients import FeatureSet, make_client


class TestTable2a:
    def test_four_core_workloads(self):
        assert set(CORE_WORKLOADS) == {"controller", "customer", "processor", "regulator"}

    def test_controller_weights(self):
        weights = CONTROLLER.weights()
        assert weights["create-record"] == 25.0
        deletes = sum(w for op, w in weights.items() if op.startswith("delete"))
        updates = sum(w for op, w in weights.items() if op.startswith("update"))
        assert deletes == pytest.approx(25.0)
        assert updates == pytest.approx(50.0)
        assert CONTROLLER.distribution == "uniform"

    def test_customer_equal_weights_zipf(self):
        weights = set(CUSTOMER.weights().values())
        assert weights == {20.0}
        assert CUSTOMER.distribution == "zipfian"

    def test_processor_80_20(self):
        weights = PROCESSOR.weights()
        assert weights["read-data-by-key"] == 80.0
        emerging = sum(w for op, w in weights.items() if op != "read-data-by-key")
        assert emerging == pytest.approx(20.0)

    def test_regulator_edpb_proportions(self):
        weights = REGULATOR.weights()
        assert weights["read-metadata-by-usr"] == 46.0
        assert weights["get-system-logs"] == 31.0
        assert weights["verify-deletion"] == 23.0

    def test_all_workload_ops_in_taxonomy(self):
        from repro.gdpr.queries import query_spec
        for spec in CORE_WORKLOADS.values():
            for op, _ in spec.mix:
                query_spec(op)  # raises if unknown


class TestOperationGeneration:
    CORPUS = RecordCorpusConfig(record_count=200, user_count=20)

    def test_mix_proportions_hold(self):
        ops = make_operations(CONTROLLER, self.CORPUS, 4000, seed=1)
        counts = Counter(op.name for op in ops)
        assert 0.20 < counts["create-record"] / 4000 < 0.30
        update_total = sum(v for k, v in counts.items() if k.startswith("update"))
        assert 0.44 < update_total / 4000 < 0.56

    def test_deterministic(self):
        a = [op.name for op in make_operations(CUSTOMER, self.CORPUS, 100, seed=9)]
        b = [op.name for op in make_operations(CUSTOMER, self.CORPUS, 100, seed=9)]
        assert a == b

    def test_unknown_workload_rejected(self):
        from repro.bench.gdpr_workloads import GDPRWorkloadSpec
        from repro.common.errors import WorkloadError
        bogus = GDPRWorkloadSpec("bogus", "", (("create-record", 1.0),), "uniform")
        with pytest.raises(WorkloadError):
            make_operations(bogus, self.CORPUS, 10)

    @pytest.mark.parametrize("engine", ["redis", "postgres"])
    @pytest.mark.parametrize("workload", ["controller", "customer", "processor", "regulator"])
    def test_all_operations_valid_against_engine(self, engine, workload):
        client = make_client(engine, FeatureSet.full(metadata_indexing=(engine == "postgres")))
        try:
            client.load_records(generate_corpus(self.CORPUS))
            ops = make_operations(CORE_WORKLOADS[workload], self.CORPUS, 60, seed=13)
            for op in ops:
                response, ok = op.run(client)
                assert ok, (workload, op.name, response)
        finally:
            client.close()

    def test_create_record_keys_never_collide_with_corpus(self):
        ops = make_operations(CONTROLLER, self.CORPUS, 500, seed=2)
        client = make_client("postgres", FeatureSet.none())
        try:
            client.load_records(generate_corpus(self.CORPUS))
            for op in ops:
                if op.name == "create-record":
                    _, ok = op.run(client)
                    assert ok  # duplicate pkey would raise -> ok False
        finally:
            client.close()
