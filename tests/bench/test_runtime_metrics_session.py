"""Tests for the runtime engine, metrics, and session orchestration."""

import pytest

from repro.bench.metrics import space_report
from repro.bench.operations import Operation
from repro.bench.records import RecordCorpusConfig
from repro.bench.runtime import RunReport, run_workload
from repro.bench.session import (
    GDPRBenchConfig,
    GDPRBenchSession,
    YCSBSession,
    YCSBSessionConfig,
)
from repro.bench.ycsb import YCSBConfig
from repro.clients import FeatureSet, make_client
from repro.common.errors import BenchmarkError


class _StubClient:
    engine_name = "stub"

    def space_overhead(self):
        return 2.5


def _ok_op(name="op"):
    return Operation(name, execute=lambda c: 1, validate=lambda r: r == 1)


class TestRunWorkload:
    def test_basic_run(self):
        report = run_workload(_StubClient(), [_ok_op() for _ in range(10)],
                              workload_name="w")
        assert report.operations == 10
        assert report.correct == 10
        assert report.failed == 0
        assert report.correctness_pct == 100.0
        assert report.completion_time_s > 0
        assert report.engine == "stub"

    def test_invalid_responses_counted(self):
        bad = Operation("bad", execute=lambda c: 2, validate=lambda r: r == 1)
        report = run_workload(_StubClient(), [bad, _ok_op()])
        assert report.correct == 1
        assert report.correctness_pct == 50.0

    def test_exceptions_are_failures_not_crashes(self):
        def boom(c):
            raise RuntimeError("op exploded")

        report = run_workload(_StubClient(), [Operation("boom", execute=boom), _ok_op()])
        assert report.failed == 1
        assert report.correct == 1

    def test_multithreaded_runs_everything_once(self):
        import threading

        counter = {"n": 0}
        lock = threading.Lock()

        def bump(c):
            with lock:
                counter["n"] += 1
            return 1

        ops = [Operation("bump", execute=bump, validate=lambda r: True) for _ in range(200)]
        report = run_workload(_StubClient(), ops, threads=8)
        assert counter["n"] == 200
        assert report.operations == 200

    def test_measure_space(self):
        report = run_workload(_StubClient(), [_ok_op()], measure_space=True)
        assert report.space_overhead == 2.5

    def test_zero_threads_rejected(self):
        with pytest.raises(BenchmarkError):
            run_workload(_StubClient(), [], threads=0)

    def test_empty_run_is_100_percent_correct(self):
        report = run_workload(_StubClient(), [])
        assert report.correctness_pct == 100.0

    def test_summary_shape(self):
        report = run_workload(_StubClient(), [_ok_op("read"), _ok_op("read")])
        summary = report.summary()
        assert summary["operations"] == 2
        assert "read" in summary["per_operation"]


class TestSpaceReport:
    @pytest.mark.parametrize("engine", ["redis", "postgres"])
    def test_content_factor_matches_corpus_definition(self, engine):
        from repro.bench.records import generate_corpus, logical_space_factor
        corpus_cfg = RecordCorpusConfig(record_count=200)
        corpus = generate_corpus(corpus_cfg)
        client = make_client(engine, FeatureSet.none())
        try:
            client.load_records(corpus)
            report = space_report(client)
            assert report.record_count == 200
            assert report.space_factor == pytest.approx(
                logical_space_factor(corpus), abs=0.01
            )
            assert report.physical_factor > report.space_factor * 0  # defined
        finally:
            client.close()

    def test_indexing_raises_factor(self):
        corpus = RecordCorpusConfig(record_count=200)
        from repro.bench.records import generate_corpus
        plain = make_client("postgres", FeatureSet.none())
        indexed = make_client("postgres", FeatureSet(metadata_indexing=True, access_control=False))
        try:
            plain.load_records(generate_corpus(corpus))
            indexed.load_records(generate_corpus(corpus))
            assert (space_report(indexed).space_factor
                    > space_report(plain).space_factor * 1.3)
        finally:
            plain.close()
            indexed.close()


class TestSessions:
    def test_gdprbench_session_end_to_end(self):
        config = GDPRBenchConfig(
            engine="postgres",
            features=FeatureSet.full(metadata_indexing=True),
            corpus=RecordCorpusConfig(record_count=150, user_count=15),
            operation_count=40,
            threads=2,
        )
        with GDPRBenchSession(config) as session:
            assert session.load() == 150
            reports = session.run_all()
            assert set(reports) == {"controller", "customer", "processor", "regulator"}
            for report in reports.values():
                assert report.correctness_pct == 100.0
            assert session.logical_space_factor() > 3.0

    def test_session_auto_loads_on_first_run(self):
        config = GDPRBenchConfig(
            engine="redis",
            features=FeatureSet.none(),
            corpus=RecordCorpusConfig(record_count=50, user_count=5),
            operation_count=10,
            threads=1,
        )
        with GDPRBenchSession(config) as session:
            report = session.run("processor")
            assert session.loaded
            assert report.operations == 10

    def test_ycsb_session_sequential_workloads(self):
        config = YCSBSessionConfig(
            engine="postgres",
            features=FeatureSet.none(),
            ycsb=YCSBConfig(record_count=60, operation_count=50, seed=2),
            threads=2,
        )
        with YCSBSession(config) as session:
            session.load()
            for name in ("A", "D", "E"):
                report = session.run(name)
                assert report.failed == 0, name
