"""Tests for the YCSB workload implementation (Table 2 of the paper)."""

from collections import Counter

import pytest

from repro.bench.ycsb import (
    WORKLOADS,
    YCSBConfig,
    YCSBSpec,
    load_operations,
    run_load,
    transaction_operations,
    ycsb_key,
)
from repro.common.errors import WorkloadError


class TestSpecs:
    def test_paper_table_2_mixes(self):
        assert WORKLOADS["A"].read == 0.5 and WORKLOADS["A"].update == 0.5
        assert WORKLOADS["B"].read == 0.95 and WORKLOADS["B"].update == 0.05
        assert WORKLOADS["C"].read == 1.0
        assert WORKLOADS["D"].insert == 0.05 and WORKLOADS["D"].distribution == "latest"
        assert WORKLOADS["E"].scan == 0.95
        assert WORKLOADS["F"].read_modify_write == 1.0

    def test_proportions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            YCSBSpec("bad", read=0.5, update=0.4)

    def test_key_format_sorts_numerically(self):
        assert ycsb_key(9) < ycsb_key(10) < ycsb_key(100)


class TestOperationGeneration:
    def test_load_phase_is_ordered_inserts(self):
        ops = load_operations(YCSBConfig(record_count=20))
        assert len(ops) == 20
        assert all(op.name == "insert" for op in ops)

    def test_transaction_mix_close_to_spec(self):
        config = YCSBConfig(record_count=100, operation_count=4000)
        ops = transaction_operations(WORKLOADS["A"], config)
        counts = Counter(op.name for op in ops)
        assert 0.45 < counts["read"] / 4000 < 0.55
        assert 0.45 < counts["update"] / 4000 < 0.55

    def test_deterministic_given_seed(self):
        config = YCSBConfig(record_count=50, operation_count=100, seed=3)
        a = [op.name for op in transaction_operations(WORKLOADS["B"], config)]
        b = [op.name for op in transaction_operations(WORKLOADS["B"], config)]
        assert a == b

    def test_insert_start_prevents_key_reuse(self):
        config = YCSBConfig(record_count=10, operation_count=200, seed=4)
        first = transaction_operations(WORKLOADS["D"], config, insert_start=10)
        second = transaction_operations(WORKLOADS["D"], config, insert_start=50)
        # distinct key ranges for the insert portion
        assert first is not second


class TestExecution:
    @pytest.fixture(params=["redis", "postgres"])
    def client(self, request):
        from repro.clients import FeatureSet, make_client
        c = make_client(request.param, FeatureSet.none())
        yield c
        c.close()

    def test_load_then_each_workload_runs_clean(self, client):
        config = YCSBConfig(record_count=50, operation_count=60, seed=5)
        assert run_load(client, config) == 50
        insert_base = 50
        for name in "ABCDEF":
            ops = transaction_operations(WORKLOADS[name], config, insert_start=insert_base)
            insert_base += sum(1 for op in ops if op.name == "insert")
            for op in ops:
                response, ok = op.run(client)
                assert ok, (name, op.name, response)

    def test_rmw_on_missing_key_returns_zero(self, client):
        assert client.ycsb_read_modify_write("user9999999999", {"field0": "x"}) == 0

    def test_scan_returns_ordered_window(self, client):
        config = YCSBConfig(record_count=30, field_length=4)
        run_load(client, config)
        rows = client.ycsb_scan(ycsb_key(10), 5)
        assert len(rows) == 5
