#!/usr/bin/env python3
"""Standalone shard worker server: one shard of a sharded deployment, on TCP.

The multi-process sharded engines normally spawn their own workers; this
entrypoint runs one worker as an *external* process instead, so shards
can live on other hosts (or be supervised independently).  A front
configured with ``transport="tcp"`` and ``shard_addresses=[...]``
connects here; every accepted connection gets a freshly constructed
engine that replays this shard's persistence file first, which is
exactly the respawn-replay recovery semantics of the in-router workers
(see docs/sharding.md).

Usage::

    tools/shard_server.py --engine minikv  --port 7101 --config-json '{"aof_path": "/data/kv.aof.shard0", "fsync": "always"}'
    tools/shard_server.py --engine minisql --port 7201 --config-json '{"wal_path": "/data/sql.wal.shard1"}'

The config JSON holds ``MiniKVConfig`` / ``MiniSQLConfig`` fields for
**this one shard** (so persistence paths should already carry their
``.shard<i>`` suffix; ``shards`` must stay 1).  The server prints
``listening on <host>:<port>`` once bound — with ``--port 0`` the kernel
picks the port and the line is how a supervisor learns it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.common.errors import KVError, SQLError  # noqa: E402
from repro.common.netshard import ShardServer  # noqa: E402


def _build(engine: str, config_fields: dict):
    """(engine factory, run_batch, error factory) for one engine family."""
    if engine == "minikv":
        from repro.minikv.engine import MiniKVConfig
        from repro.minikv.sharded import _ShardBackend, _run_engine_batch

        config = MiniKVConfig(**config_fields)
        return (lambda: _ShardBackend(config)), _run_engine_batch, KVError
    from repro.minisql.database import MiniSQLConfig
    from repro.minisql.sharded import _ShardBackend, _run_statement_batch

    config = MiniSQLConfig(**config_fields)
    return (lambda: _ShardBackend(config)), _run_statement_batch, SQLError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine", choices=("minikv", "minisql"),
                        required=True, help="which engine family this shard runs")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default loopback)")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port (0 = kernel-assigned, printed on stdout)")
    parser.add_argument("--config-json", default="{}",
                        help="engine config fields for this shard, as JSON")
    parser.add_argument("--once", action="store_true",
                        help="serve a single connection then exit (tests)")
    args = parser.parse_args(argv)

    config_fields = json.loads(args.config_json)
    if config_fields.get("shards", 1) != 1:
        parser.error("a shard server runs exactly one shard (shards must be 1)")
    engine_factory, run_batch, error_factory = _build(args.engine, config_fields)

    server = ShardServer(args.host, args.port, engine_factory, run_batch,
                         error_factory)
    print(f"listening on {server.host}:{server.port}", flush=True)
    try:
        if args.once:
            server.serve_one()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
