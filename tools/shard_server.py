#!/usr/bin/env python3
"""Standalone shard worker server: one shard of a sharded deployment, on TCP.

The multi-process sharded engines normally spawn their own workers; this
entrypoint runs one worker as an *external* process instead, so shards
can live on other hosts (or be supervised independently).  A front
configured with ``transport="tcp"`` and ``shard_addresses=[...]``
connects here.

Two serve loops:

* ``--loop threads`` (default): the PR 7 shape — one connection at a
  time, each accepted connection gets a freshly constructed engine that
  replays this shard's persistence file first, exactly the
  respawn-replay recovery semantics of the in-router workers (see
  docs/sharding.md).
* ``--loop asyncio``: an :class:`~repro.common.asyncserve.AsyncShardServer`
  — one shared engine (persistence replayed once at startup), any number
  of concurrent front connections multiplexed on one event loop, no
  thread per connection (see docs/async-pipelining.md).

Both loops shut down gracefully on SIGTERM/SIGINT: the listener closes,
the in-flight request gets its reply, and the engine closes so its
AOF/WAL flushes — a supervisor's ``terminate()`` never drops
acknowledged writes.

Usage::

    tools/shard_server.py --engine minikv  --port 7101 --config-json '{"aof_path": "/data/kv.aof.shard0", "fsync": "always"}'
    tools/shard_server.py --engine minisql --port 7201 --config-json '{"wal_path": "/data/sql.wal.shard1"}' --loop asyncio

The config JSON holds ``MiniKVConfig`` / ``MiniSQLConfig`` fields for
**this one shard** (so persistence paths should already carry their
``.shard<i>`` suffix; ``shards`` must stay 1).  The server prints
``listening on <host>:<port>`` once bound — with ``--port 0`` the kernel
picks the port and the line is how a supervisor learns it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.common.asyncserve import AsyncShardServer  # noqa: E402
from repro.common.errors import KVError, SQLError  # noqa: E402
from repro.common.netshard import ShardServer  # noqa: E402


def _build(engine: str, config_fields: dict):
    """(engine factory, run_batch, error factory) for one engine family."""
    if engine == "minikv":
        from repro.minikv.engine import MiniKVConfig
        from repro.minikv.sharded import _ShardBackend, _run_engine_batch

        config = MiniKVConfig(**config_fields)
        return (lambda: _ShardBackend(config)), _run_engine_batch, KVError
    from repro.minisql.database import MiniSQLConfig
    from repro.minisql.sharded import _ShardBackend, _run_statement_batch

    config = MiniSQLConfig(**config_fields)
    return (lambda: _ShardBackend(config)), _run_statement_batch, SQLError


def _serve_threads(args, engine_factory, run_batch, error_factory) -> int:
    server = ShardServer(args.host, args.port, engine_factory, run_batch,
                         error_factory)
    stop = threading.Event()

    def on_signal(_signum, _frame) -> None:
        stop.set()
        server.close()  # wakes a blocked accept()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    print(f"listening on {server.host}:{server.port}", flush=True)
    try:
        if args.once:
            server.serve_one(should_stop=stop.is_set)
        else:
            server.serve_forever(should_stop=stop.is_set)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


async def _serve_asyncio(args, engine_factory, run_batch, error_factory) -> int:
    server = AsyncShardServer(engine_factory, run_batch, error_factory,
                              host=args.host, port=args.port)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    print(f"listening on {server.host}:{server.port}", flush=True)
    if args.once:
        done = asyncio.ensure_future(server.connection_done.wait())
    else:
        done = None
    stopper = asyncio.ensure_future(stop.wait())
    await asyncio.wait(
        [task for task in (done, stopper) if task is not None],
        return_when=asyncio.FIRST_COMPLETED,
    )
    for task in (done, stopper):
        if task is not None:
            task.cancel()
    await server.shutdown()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine", choices=("minikv", "minisql"),
                        required=True, help="which engine family this shard runs")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default loopback)")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port (0 = kernel-assigned, printed on stdout)")
    parser.add_argument("--config-json", default="{}",
                        help="engine config fields for this shard, as JSON")
    parser.add_argument("--loop", choices=("threads", "asyncio"),
                        default="threads",
                        help="serve loop: one-connection-at-a-time threads "
                             "(fresh engine per connection) or an asyncio "
                             "multiplexer (one shared engine)")
    parser.add_argument("--once", action="store_true",
                        help="serve a single connection then exit (tests)")
    args = parser.parse_args(argv)

    config_fields = json.loads(args.config_json)
    if config_fields.get("shards", 1) != 1:
        parser.error("a shard server runs exactly one shard (shards must be 1)")
    engine_factory, run_batch, error_factory = _build(args.engine, config_fields)

    if args.loop == "asyncio":
        return asyncio.run(
            _serve_asyncio(args, engine_factory, run_batch, error_factory)
        )
    return _serve_threads(args, engine_factory, run_batch, error_factory)


if __name__ == "__main__":
    raise SystemExit(main())
