#!/usr/bin/env python3
"""Docs consistency checker: links resolve, knobs exist.

Two classes of drift this catches, both of which have bitten real
projects' docs:

1. **Broken intra-repo markdown links** — every ``[text](target)`` whose
   target is a relative path must point at an existing file (external
   ``http(s)://`` / ``mailto:`` targets and pure ``#anchor`` links are
   skipped; a ``path#fragment`` target is checked for the path part).
2. **Phantom config knobs** — every ``MiniKVConfig.<field>`` /
   ``MiniSQLConfig.<field>`` mention in the docs must name a real field
   of the dataclass in code, so a renamed or removed knob cannot survive
   in prose.
3. **Undocumented config knobs** (the converse) — every field of
   ``MiniKVConfig`` / ``MiniSQLConfig`` must be mentioned (as
   ``ConfigClass.field``) somewhere in the checked docs, so a newly
   added knob cannot ship silently undocumented.  The knob tables in
   ``docs/architecture.md`` are the natural home.

Checked files: ``README.md``, ``ROADMAP.md``, and every ``*.md`` under
``docs/``.  Exits non-zero with a report when anything is broken.  Run
from anywhere: paths resolve relative to the repo root (the parent of
this file's directory).

Used by the ``docs`` CI job and by ``tests/tools/test_check_docs.py``.
"""

from __future__ import annotations

import dataclasses
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: markdown inline link: [text](target) — good enough for our docs; code
#: spans with literal parens in URLs are not a pattern we use
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: a knob mention: ConfigClass.field_name
_KNOB_RE = re.compile(r"\b(MiniKVConfig|MiniSQLConfig)\.([A-Za-z_][A-Za-z_0-9]*)")

#: documentation files under the repo root to check
DOC_FILES = ("README.md", "ROADMAP.md")
DOCS_DIR = "docs"


def _config_fields() -> dict[str, set[str]]:
    """Field names of the two engine config dataclasses, from the code."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.minikv.engine import MiniKVConfig
        from repro.minisql.database import MiniSQLConfig
    finally:
        sys.path.pop(0)
    return {
        "MiniKVConfig": {f.name for f in dataclasses.fields(MiniKVConfig)},
        "MiniSQLConfig": {f.name for f in dataclasses.fields(MiniSQLConfig)},
    }


def _doc_paths() -> list[str]:
    paths = [
        os.path.join(REPO_ROOT, name)
        for name in DOC_FILES
        if os.path.exists(os.path.join(REPO_ROOT, name))
    ]
    docs_dir = os.path.join(REPO_ROOT, DOCS_DIR)
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                paths.append(os.path.join(docs_dir, name))
    return paths


def check_links(path: str, text: str) -> list[str]:
    problems = []
    base = os.path.dirname(path)
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:  # pure #anchor
            continue
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            rel = os.path.relpath(path, REPO_ROOT)
            problems.append(f"{rel}: broken link -> {target}")
    return problems


def check_knobs(path: str, text: str, fields: dict[str, set[str]]) -> list[str]:
    problems = []
    for match in _KNOB_RE.finditer(text):
        config, field = match.group(1), match.group(2)
        if field not in fields[config]:
            rel = os.path.relpath(path, REPO_ROOT)
            problems.append(
                f"{rel}: {config}.{field} is documented but is not a "
                f"field of {config} (fields: {sorted(fields[config])})"
            )
    return problems


def check_knob_coverage(texts: dict[str, str], fields: dict[str, set[str]]) -> list[str]:
    """Every config field must be documented somewhere across ``texts``.

    ``texts`` maps doc path -> content; mentions are counted across the
    whole doc set, so a knob documented in any checked file (typically a
    knob table) satisfies coverage.  Returns one problem per field of
    ``fields`` that no doc mentions as ``ConfigClass.field``.
    """
    mentioned: dict[str, set[str]] = {config: set() for config in fields}
    for text in texts.values():
        for match in _KNOB_RE.finditer(text):
            mentioned[match.group(1)].add(match.group(2))
    problems = []
    for config in sorted(fields):
        for field in sorted(fields[config] - mentioned[config]):
            problems.append(
                f"{config}.{field} exists in code but is documented "
                "nowhere: add it to a knob table (docs/architecture.md)"
            )
    return problems


def main() -> int:
    fields = _config_fields()
    paths = _doc_paths()
    if not paths:
        print("check_docs: no documentation files found", file=sys.stderr)
        return 2
    problems: list[str] = []
    texts: dict[str, str] = {}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            texts[path] = handle.read()
    for path, text in texts.items():
        problems.extend(check_links(path, text))
        problems.extend(check_knobs(path, text, fields))
    problems.extend(check_knob_coverage(texts, fields))
    if problems:
        print(f"check_docs: {len(problems)} problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(
        f"check_docs: OK ({len(paths)} files; links resolve, documented "
        "knobs exist, every config field is documented)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
