"""minikv — the Redis-like in-memory key-value engine.

This is the reproduction's stand-in for Redis v5.0 (Section 5.1 of the
paper): a hash-table keyspace holding typed values (strings, hashes, sets),
TTL support with Redis' lazy sampling expiry cycle, and append-only-file
persistence.  The GDPR retrofit toggles map one-to-one onto the paper's
modifications:

* ``encryption_at_rest`` — LUKS analogue: the persistence file (AOF) is
  encrypted at the disk boundary.  In-memory values stay plaintext, just
  as Redis' heap does on a dm-crypt volume; the in-transit half lives in
  the client stub (the Stunnel analogue).
* ``strict_ttl`` — replaces the lazy expiry cycle with a full scan of the
  expires dictionary per tick (the paper's ~120-line Redis patch).
* ``aof_path`` + ``log_reads`` — audit trail piggybacked on the AOF,
  extended to record reads and scans (Section 5.1: "we update its internal
  logic to log all interactions including reads and scans").

Concurrency model: the keyspace is hash-partitioned into ``stripes`` lock
stripes, each owning its slice of the data dict, its expires index, and
its own active-expiry cycle.  A single-key command locks only its stripe,
so independent keys proceed in parallel; cross-key commands (multi-key
DELETE, SCAN, KEYS, FLUSHALL, AOF rewrite, purges) acquire every involved
stripe lock in ascending stripe order, which makes deadlock impossible.
``stripes=1`` (the default) degenerates to Redis' single event loop — one
lock serialises everything, exactly the paper's execution model — while
benchmarks opt into wider striping to measure the scaling headroom.

Batching: :meth:`MiniKV.pipeline` mirrors Redis pipelining/MULTI — a
queued command batch executes under one multi-stripe lock acquisition,
one expiry-cycle tick per involved stripe, and one AOF group commit.
"""

from __future__ import annotations

import fnmatch
import threading
import zlib
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Mapping

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ConfigurationError
from repro.crypto.luks import FileCipher

from . import aof as aof_mod
from .datatypes import HashValue, SetValue, StringValue, Value, expect_type
from .expiry import (
    ExpiresIndex,
    HeapExpiryCycle,
    LazyExpiryCycle,
    StrictExpiryCycle,
    StripedExpiresView,
    aggregate_stats,
)

#: SCAN cursors pack (snapshot generation, position); positions fit 32 bits.
_SCAN_POSITION_BITS = 32
_SCAN_POSITION_MASK = (1 << _SCAN_POSITION_BITS) - 1
#: Live scan snapshots kept before the oldest is evicted.  A cursor whose
#: snapshot was evicted restarts its traversal (duplicates, never misses),
#: so this bounds memory for abandoned cursors while more than this many
#: genuinely concurrent traversals degrade to restarts, not wrong results.
_SCAN_SNAPSHOT_CAP = 64


@dataclass
class MiniKVConfig:
    """Feature switches for the GDPR retrofit (defaults = stock Redis).

    Every default preserves the paper's measured Redis v5.0 behaviour;
    the non-default settings are this repo's scaling retrofits.
    """

    #: Default ``False`` — plaintext persistence, the paper's stock Redis.
    #: ``True`` encrypts the AOF at the disk boundary (the LUKS retrofit
    #: of Section 5.1; in-memory values stay plaintext as on dm-crypt).
    encryption_at_rest: bool = False
    #: Default ``False`` — Redis' lazy sampling expiry cycle, the stock
    #: engine the paper benchmarks.  ``True`` applies the paper's ~120-line
    #: patch: a full expires-dict scan per tick (strict timely deletion).
    strict_ttl: bool = False
    #: Default ``None`` — no persistence, Redis' in-memory baseline.  A
    #: path arms the append-only file (and the audit trail when
    #: ``log_reads`` is set).
    aof_path: str | None = None
    #: Default ``"everysec"`` — Redis' appendfsync default, the paper's
    #: configuration; ``"always"`` fsyncs per command (or per group, see
    #: ``aof_batch_size``), ``"no"`` leaves flushing to the OS.
    fsync: str = "everysec"
    #: Default ``False`` — only writes reach the AOF, stock Redis.
    #: ``True`` extends the log to reads and scans (Section 5.1's
    #: monitoring retrofit: "log all interactions including reads").
    log_reads: bool = False
    #: Default ``0`` — deterministic seed for the lazy expiry cycle's
    #: sampling; any fixed value reproduces the paper's probabilistic
    #: expiry behaviour reproducibly.
    expiry_seed: int = 0
    #: Default ``""`` — defer to ``strict_ttl`` (backwards compatible):
    #: 'lazy' (stock Redis), 'strict' (the paper's patch), or 'heap' (the
    #: paper's §7.2 "efficient time-based deletion" challenge: deadline-
    #: ordered min-heap, strict timeliness at O(k log n) per tick).
    ttl_algorithm: str = ""
    #: Default ``1`` — Redis' single-event-loop semantics, the paper's
    #: execution model (one lock serialises everything); >1 hash-partitions
    #: the keyspace into that many lock stripes so independent keys
    #: proceed in parallel under multi-threaded clients.
    stripes: int = 1
    #: Default ``1`` — under ``fsync='always'`` every command pays its own
    #: fsync, the paper's per-command durability cost; larger values
    #: amortise the fsync over that many AOF entries (group commit).
    aof_batch_size: int = 1
    #: Default ``1`` — one in-process engine, the paper's deployment shape
    #: (byte-identical to the seed: no worker processes, no IPC).  >1
    #: selects the multi-process sharded deployment: that many worker
    #: processes each own a hash partition of the keyspace — and its own
    #: AOF — behind a shard router, escaping the GIL (see
    #: docs/sharding.md).  Build sharded engines via
    #: :func:`repro.minikv.sharded.open_minikv`; :class:`MiniKV` itself
    #: rejects ``shards > 1``.
    shards: int = 1
    #: Default ``"pipe"`` — sharded workers talk over multiprocessing
    #: pipes (local-only, the PR 4 deployment).  ``"tcp"`` carries the
    #: same one-reply-per-message protocol over sockets (length-prefixed
    #: pickled frames, see docs/sharding.md): without ``shard_addresses``
    #: the router still spawns local workers on ephemeral loopback ports;
    #: with them the workers are external ``tools/shard_server.py``
    #: processes.  Ignored when ``shards == 1`` (no workers exist).
    transport: str = "pipe"
    #: Default ``None`` — the router spawns its own workers.  A sequence
    #: of ``"host:port"`` strings (one per shard, ``transport="tcp"``
    #: only) connects to externally-run shard servers instead; shard
    #: persistence then lives wherever each server was started.
    shard_addresses: tuple | None = None
    #: Default ``None`` → 64 — virtual nodes per shard on the consistent-
    #: hash ring that places keys on shards.  More vnodes flatten the
    #: per-shard load spread at the cost of a longer migration plan on
    #: add_shard/remove_shard.  Changing it on an existing resharded
    #: deployment is ignored: the persisted topology's value wins, because
    #: placement is a fact about the data already on disk.
    ring_vnodes: int | None = None

    def resolved_ttl_algorithm(self) -> str:
        if self.ttl_algorithm:
            return self.ttl_algorithm
        return "strict" if self.strict_ttl else "lazy"

    @property
    def gdpr_features(self) -> dict[str, bool]:
        """Feature vector reported by GET-SYSTEM-FEATURES."""
        return {
            "encryption": self.encryption_at_rest,
            "timely_deletion": self.resolved_ttl_algorithm() in ("strict", "heap"),
            "monitoring": self.aof_path is not None and self.log_reads,
            "metadata_indexing": False,   # Redis has no secondary indices
            "access_control": False,      # deferred to the client (paper §5.1)
        }


class _Stripe:
    """One lock-striped keyspace partition: lock + data + expires + cycle."""

    __slots__ = ("index", "lock", "data", "expires", "cycle", "commands")

    def __init__(self, index: int) -> None:
        self.index = index
        self.lock = threading.RLock()
        self.data: dict[str, Value] = {}
        self.expires = ExpiresIndex()
        self.cycle = None  # set by the engine once its delete callback exists
        self.commands = 0


class Pipeline:
    """A queued command batch executed under one lock acquisition.

    Mirrors Redis pipelining fused with MULTI: commands queue client-side
    (each queueing method returns ``self`` for chaining) and ``execute()``
    runs the whole batch under one multi-stripe lock acquisition, one
    expiry tick per involved stripe, and one AOF group commit.  Results
    come back as a list in queue order.

    Error semantics follow Redis/redis-py: a failing command does not
    stop the batch or roll back earlier commands — every command
    executes, failures are captured per slot, and ``execute()`` raises
    the first captured error afterwards (pass ``raise_on_error=False``
    to receive the exceptions in the result list instead).  The batch is
    *isolated* — the stripe locks are held throughout, so concurrent
    observers of the touched stripes see all of its effects or none —
    but, like Redis MULTI, it is not all-or-nothing under command errors.
    """

    __slots__ = ("_engine", "_calls")

    def __init__(self, engine: "MiniKV") -> None:
        self._engine = engine
        # (bound _do_* method, stripes touched, args); the stripe is
        # resolved at queue time so execute() never re-hashes a key.
        self._calls: list[tuple] = []

    def __len__(self) -> int:
        return len(self._calls)

    def _queue(self, method: str, key: str, args: tuple) -> "Pipeline":
        engine = self._engine
        stripe = engine._stripe_for(key)
        self._calls.append(
            (getattr(engine, "_do_" + method), (stripe,), args + (stripe,))
        )
        return self

    # -- queueing mirrors of the engine command surface -----------------

    def set(self, key: str, value: bytes, ttl: float | None = None) -> "Pipeline":
        return self._queue("set", key, (key, value, ttl))

    def get(self, key: str) -> "Pipeline":
        return self._queue("get", key, (key,))

    def delete(self, *keys: str) -> "Pipeline":
        engine = self._engine
        stripes = tuple({engine._stripe_for(key) for key in keys})
        self._calls.append((engine._do_delete, stripes, (keys,)))
        return self

    def exists(self, key: str) -> "Pipeline":
        return self._queue("exists", key, (key,))

    def expire(self, key: str, seconds: float) -> "Pipeline":
        return self._queue("expire", key, (key, seconds))

    def expireat(self, key: str, deadline: float) -> "Pipeline":
        return self._queue("expireat", key, (key, deadline))

    def persist(self, key: str) -> "Pipeline":
        return self._queue("persist", key, (key,))

    def ttl(self, key: str) -> "Pipeline":
        return self._queue("ttl", key, (key,))

    def hset(self, key: str, field: str, value: bytes) -> "Pipeline":
        return self._queue("hset", key, (key, field, value))

    def hmset(self, key: str, mapping: Mapping[str, bytes]) -> "Pipeline":
        return self._queue("hmset", key, (key, mapping))

    def hset_if_exists(self, key: str, field: str, value: bytes) -> "Pipeline":
        return self._queue("hset_if_exists", key, (key, field, value))

    def hmset_if_exists(self, key: str, mapping: Mapping[str, bytes]) -> "Pipeline":
        return self._queue("hmset_if_exists", key, (key, mapping))

    def hget(self, key: str, field: str) -> "Pipeline":
        return self._queue("hget", key, (key, field))

    def hgetall(self, key: str) -> "Pipeline":
        # Hottest queue method (GDPR record fetch + YCSB read): inlined.
        engine = self._engine
        stripe = engine._stripe_for(key)
        self._calls.append((engine._do_hgetall, (stripe,), (key, stripe)))
        return self

    def hdel(self, key: str, *fields: str) -> "Pipeline":
        return self._queue("hdel", key, (key, fields))

    def sadd(self, key: str, *members: bytes) -> "Pipeline":
        return self._queue("sadd", key, (key, members))

    def srem(self, key: str, *members: bytes) -> "Pipeline":
        return self._queue("srem", key, (key, members))

    def smembers(self, key: str) -> "Pipeline":
        return self._queue("smembers", key, (key,))

    def sismember(self, key: str, member: bytes) -> "Pipeline":
        return self._queue("sismember", key, (key, member))

    def execute(self, raise_on_error: bool = True) -> list:
        """Run the batch; returns per-command results in queue order.

        Every command executes even if an earlier one fails (Redis
        semantics).  With ``raise_on_error`` (the default) the first
        captured exception is raised after the batch completes;
        otherwise exceptions appear in the result list at their slots.
        """
        calls, self._calls = self._calls, []
        results = self._engine._execute_pipeline(calls)
        if raise_on_error:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results


class MiniKV:
    """The engine.  Commands are thread-safe via hash-partitioned stripes."""

    def __init__(self, config: MiniKVConfig | None = None, clock: Clock | None = None) -> None:
        self.config = config or MiniKVConfig()
        self.clock = clock or SystemClock()
        if self.config.stripes < 1:
            raise ConfigurationError("stripes must be >= 1")
        if self.config.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.config.shards > 1:
            raise ConfigurationError(
                "shards > 1 is the multi-process deployment; build it via "
                "repro.minikv.sharded.open_minikv (or ShardedMiniKV)"
            )
        algorithm = self.config.resolved_ttl_algorithm()
        cycle_classes = {
            "lazy": LazyExpiryCycle,
            "strict": StrictExpiryCycle,
            "heap": HeapExpiryCycle,
        }
        try:
            cycle_cls = cycle_classes[algorithm]
        except KeyError:
            raise ConfigurationError(
                f"unknown ttl_algorithm {algorithm!r}; choose from {sorted(cycle_classes)}"
            ) from None
        self._stripes = [_Stripe(i) for i in range(self.config.stripes)]
        self._nstripes = len(self._stripes)
        for stripe in self._stripes:
            stripe.cycle = cycle_cls(
                stripe.expires,
                (lambda key, s=stripe: self._evict(s, key)),
                seed=self.config.expiry_seed + stripe.index,
            )
        #: read-only union view kept for introspection/experiments
        self._expires = (
            self._stripes[0].expires if self._nstripes == 1
            else StripedExpiresView([s.expires for s in self._stripes])
        )
        self._file_cipher = FileCipher() if self.config.encryption_at_rest else None
        #: SCAN snapshot cache: generation -> stable key ordering, so a
        #: full cursor traversal is O(n) total instead of O(n²/count).
        self._scan_snapshots: OrderedDict[int, list[str]] = OrderedDict()
        self._scan_gen = 0
        self._aof: aof_mod.AOFWriter | None = None
        if self.config.aof_path is not None:
            self._replay(self.config.aof_path)
            self._aof = aof_mod.AOFWriter(
                self.config.aof_path,
                fsync=self.config.fsync,
                log_reads=self.config.log_reads,
                clock=self.clock,
                cipher=self._file_cipher,
                batch_size=self.config.aof_batch_size,
            )

    # ------------------------------------------------------------------
    # Internals: striping, locking, cron, passive expiry, logging
    # ------------------------------------------------------------------

    def _stripe_for(self, key: str) -> _Stripe:
        if self._nstripes == 1:
            return self._stripes[0]
        return self._stripes[zlib.crc32(key.encode()) % self._nstripes]

    def _involved(self, keys) -> list[_Stripe]:
        """Stripes touched by ``keys``, ascending — the lock order."""
        if self._nstripes == 1:
            return [self._stripes[0]]
        indexes = {zlib.crc32(key.encode()) % self._nstripes for key in keys}
        if not indexes:  # keyless batch: still needs a lock + tick home
            return [self._stripes[0]]
        return [self._stripes[i] for i in sorted(indexes)]

    @contextmanager
    def _locked(self, stripes: list[_Stripe]):
        """Hold several stripe locks; callers pass them in ascending order."""
        for stripe in stripes:
            stripe.lock.acquire()
        try:
            yield
        finally:
            for stripe in reversed(stripes):
                stripe.lock.release()

    def _locked_all(self):
        return self._locked(self._stripes)

    def _evict(self, stripe: _Stripe, key: str) -> None:
        """Deletion callback used by the active expiry cycles."""
        stripe.data.pop(key, None)
        stripe.expires.remove(key)
        self._log("DEL", key.encode())

    def purge_expired(self) -> list[str]:
        """Actively erase every expired key right now; returns their names.

        This is the engine-side half of DELETE-RECORD-BY-TTL: a controller
        purging expired personal data cannot wait for the lazy cycle to
        sample its way through the keyspace.
        """
        with self._locked_all():
            # Deliberately skip the expiry tick: it would evict keys before
            # we can snapshot (and count) them.
            self._stripes[0].commands += 1
            now = self.clock.now()
            expired: list[str] = []
            for stripe in self._stripes:
                for key in stripe.expires.all_expired(now):
                    self._evict(stripe, key)
                    expired.append(key)
            return expired

    def cron(self) -> int:
        """Run every stripe's active expiry cycle if a tick has elapsed.

        Redis calls this ``serverCron``; minikv invokes it at the top of
        every command (for the locked stripe), and benchmarks may call it
        directly while fast-forwarding a virtual clock.  Returns keys
        erased.
        """
        erased = 0
        for stripe in self._stripes:
            with stripe.lock:
                now = self.clock.now()
                if stripe.cycle.due(now):
                    erased += stripe.cycle.run(now)
        return erased

    @property
    def expiry_stats(self):
        return aggregate_stats([stripe.cycle.stats for stripe in self._stripes])

    def _expire_if_due(self, stripe: _Stripe, key: str) -> bool:
        """Passive expiry: purge ``key`` if its deadline has passed."""
        deadline = stripe.expires.deadline(key)
        if deadline is None or deadline > self.clock.now():
            return False
        self._evict(stripe, key)
        return True

    def _log(self, command: str, *args: bytes) -> None:
        if self._aof is not None and self._aof.should_log(command):
            self._aof.append([command.encode(), *args])

    def _live(self, stripe: _Stripe, key: str) -> Value | None:
        """Value behind ``key`` after passive expiry, or None.

        Flattened for the hot read path: only keys carrying a deadline
        (an invariant: ``expires`` ⊆ ``data``) pay the clock read.
        """
        value = stripe.data.get(key)
        if value is None:
            return None
        deadline = stripe.expires.deadline(key)
        if deadline is not None and deadline <= self.clock.now():
            self._evict(stripe, key)
            return None
        return value

    def _begin(self, stripe: _Stripe) -> None:
        stripe.commands += 1
        now = self.clock.now()
        if stripe.cycle.due(now):
            stripe.cycle.run(now)

    def _tick(self, stripes: list[_Stripe], count: int) -> None:
        """Batch-granular `_begin`: one expiry tick per involved stripe."""
        stripes[0].commands += count
        now = self.clock.now()
        for stripe in stripes:
            if stripe.cycle.due(now):
                stripe.cycle.run(now)

    # ------------------------------------------------------------------
    # Pipelining
    # ------------------------------------------------------------------

    def pipeline(self) -> Pipeline:
        """A new command batch (Redis pipeline/MULTI analogue)."""
        return Pipeline(self)

    def _execute_pipeline(self, calls: list[tuple]) -> list:
        if not calls:
            return []
        seen: set[_Stripe] = set()
        for _, stripes, _ in calls:
            seen.update(stripes)
        if not seen:  # keyless batch (e.g. delete()): still needs a home
            seen.add(self._stripes[0])
        involved = (
            sorted(seen, key=lambda stripe: stripe.index)
            if len(seen) > 1 else list(seen)
        )
        with self._locked(involved):
            self._tick(involved, count=len(calls))
            aof_batch = self._aof.batch() if self._aof is not None else nullcontext()
            with aof_batch:
                results = []
                for method, _, args in calls:
                    try:
                        results.append(method(*args))
                    except Exception as exc:  # captured per slot, Redis-style
                        results.append(exc)
                return results

    # ------------------------------------------------------------------
    # String commands
    # ------------------------------------------------------------------

    def set(self, key: str, value: bytes, ttl: float | None = None) -> None:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            self._do_set(key, value, ttl, stripe)

    def _do_set(self, key: str, value: bytes, ttl: float | None = None,
                stripe: _Stripe | None = None) -> None:
        stripe = stripe or self._stripe_for(key)
        self._expire_if_due(stripe, key)
        stripe.data[key] = StringValue(value)
        stripe.expires.remove(key)  # SET clears any previous TTL
        self._log("SET", key.encode(), value)
        if ttl is not None:
            self._expire_locked(stripe, key, ttl)

    def get(self, key: str) -> bytes | None:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_get(key, stripe)

    def _do_get(self, key: str, stripe: _Stripe | None = None) -> bytes | None:
        stripe = stripe or self._stripe_for(key)
        value = self._live(stripe, key)
        if value is None:
            self._log("GET", key.encode())
            return None
        expect_type(value, "string")
        # Audit entries for reads carry the response payload: a G 33(3a)
        # breach report must say which personal data was exposed.
        self._log("GET", key.encode(), value.data)
        return value.data

    def delete(self, *keys: str) -> int:
        involved = self._involved(keys)
        with self._locked(involved):
            self._tick(involved, count=1)
            return self._do_delete(keys)

    def _do_delete(self, keys: tuple[str, ...]) -> int:
        removed = 0
        for key in keys:
            stripe = self._stripe_for(key)
            self._expire_if_due(stripe, key)
            if key in stripe.data:
                del stripe.data[key]
                stripe.expires.remove(key)
                removed += 1
                self._log("DEL", key.encode())
        return removed

    def exists(self, key: str) -> bool:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_exists(key, stripe)

    def _do_exists(self, key: str, stripe: _Stripe | None = None) -> bool:
        stripe = stripe or self._stripe_for(key)
        self._log("EXISTS", key.encode())
        return self._live(stripe, key) is not None

    # ------------------------------------------------------------------
    # TTL commands
    # ------------------------------------------------------------------

    def _expire_locked(self, stripe: _Stripe, key: str, seconds: float) -> bool:
        if key not in stripe.data:
            return False
        deadline = self.clock.now() + seconds
        stripe.expires.set(key, deadline)
        if isinstance(stripe.cycle, HeapExpiryCycle):
            stripe.cycle.schedule(key, deadline)
        self._log("EXPIREAT", key.encode(), repr(deadline).encode())
        return True

    def expire(self, key: str, seconds: float) -> bool:
        """Set a relative TTL; returns False if the key does not exist."""
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_expire(key, seconds, stripe)

    def _do_expire(self, key: str, seconds: float,
                   stripe: _Stripe | None = None) -> bool:
        stripe = stripe or self._stripe_for(key)
        self._expire_if_due(stripe, key)
        return self._expire_locked(stripe, key, seconds)

    def expireat(self, key: str, deadline: float) -> bool:
        """Set an absolute expiry deadline (engine-clock domain)."""
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_expireat(key, deadline, stripe)

    def _do_expireat(self, key: str, deadline: float,
                     stripe: _Stripe | None = None) -> bool:
        stripe = stripe or self._stripe_for(key)
        self._expire_if_due(stripe, key)
        if key not in stripe.data:
            return False
        stripe.expires.set(key, deadline)
        if isinstance(stripe.cycle, HeapExpiryCycle):
            stripe.cycle.schedule(key, deadline)
        self._log("EXPIREAT", key.encode(), repr(deadline).encode())
        return True

    def persist(self, key: str) -> bool:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_persist(key, stripe)

    def _do_persist(self, key: str, stripe: _Stripe | None = None) -> bool:
        stripe = stripe or self._stripe_for(key)
        self._expire_if_due(stripe, key)
        if key not in stripe.data or key not in stripe.expires:
            return False
        stripe.expires.remove(key)
        self._log("PERSIST", key.encode())
        return True

    def ttl(self, key: str) -> float:
        """Remaining TTL in seconds; -2 if missing, -1 if no expiry."""
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_ttl(key, stripe)

    def _do_ttl(self, key: str, stripe: _Stripe | None = None) -> float:
        stripe = stripe or self._stripe_for(key)
        if self._live(stripe, key) is None:
            return -2.0
        deadline = stripe.expires.deadline(key)
        if deadline is None:
            return -1.0
        return max(0.0, deadline - self.clock.now())

    # ------------------------------------------------------------------
    # Hash commands (GDPRbench stores records as hashes)
    # ------------------------------------------------------------------

    def _hash_for_write(self, stripe: _Stripe, key: str) -> HashValue:
        self._expire_if_due(stripe, key)
        value = stripe.data.get(key)
        expect_type(value, "hash")
        if value is None:
            value = HashValue()
            stripe.data[key] = value
        return value

    def hset(self, key: str, field: str, value: bytes) -> int:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_hset(key, field, value, stripe)

    def _do_hset(self, key: str, field: str, value: bytes,
                 stripe: _Stripe | None = None) -> int:
        stripe = stripe or self._stripe_for(key)
        hash_value = self._hash_for_write(stripe, key)
        created = 0 if field in hash_value.fields else 1
        hash_value.fields[field] = value
        self._log("HSET", key.encode(), field.encode(), value)
        return created

    def hmset(self, key: str, mapping: Mapping[str, bytes]) -> None:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            self._do_hmset(key, mapping, stripe)

    def _do_hmset(self, key: str, mapping: Mapping[str, bytes],
                  stripe: _Stripe | None = None) -> None:
        stripe = stripe or self._stripe_for(key)
        hash_value = self._hash_for_write(stripe, key)
        log_args: list[bytes] = [key.encode()]
        for field, value in mapping.items():
            hash_value.fields[field] = value
            log_args.append(field.encode())
            log_args.append(value)
        self._log("HMSET", *log_args)

    def hset_if_exists(self, key: str, field: str, value: bytes) -> int:
        """HSET only when the hash already exists (Lua-script analogue).

        GDPR clients need read-modify-write on records without recreating
        a concurrently-deleted record as a phantom hash; real deployments
        use a Lua script or WATCH/MULTI for this.  Returns 1 if written.
        """
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_hset_if_exists(key, field, value, stripe)

    def _do_hset_if_exists(self, key: str, field: str, value: bytes,
                           stripe: _Stripe | None = None) -> int:
        stripe = stripe or self._stripe_for(key)
        value_obj = self._live(stripe, key)
        if value_obj is None:
            return 0
        expect_type(value_obj, "hash")
        value_obj.fields[field] = value
        self._log("HSET", key.encode(), field.encode(), value)
        return 1

    def hmset_if_exists(self, key: str, mapping: Mapping[str, bytes]) -> int:
        """HMSET only when the hash already exists; returns 1 if written."""
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_hmset_if_exists(key, mapping, stripe)

    def _do_hmset_if_exists(self, key: str, mapping: Mapping[str, bytes],
                            stripe: _Stripe | None = None) -> int:
        stripe = stripe or self._stripe_for(key)
        value_obj = self._live(stripe, key)
        if value_obj is None:
            return 0
        expect_type(value_obj, "hash")
        log_args: list[bytes] = [key.encode()]
        for field, value in mapping.items():
            value_obj.fields[field] = value
            log_args.append(field.encode())
            log_args.append(value)
        self._log("HMSET", *log_args)
        return 1

    def hget(self, key: str, field: str) -> bytes | None:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_hget(key, field, stripe)

    def _do_hget(self, key: str, field: str,
                 stripe: _Stripe | None = None) -> bytes | None:
        stripe = stripe or self._stripe_for(key)
        value = self._live(stripe, key)
        if value is None:
            self._log("HGET", key.encode(), field.encode())
            return None
        expect_type(value, "hash")
        payload = value.fields.get(field)
        self._log("HGET", key.encode(), field.encode(), payload or b"")
        return payload

    def hgetall(self, key: str) -> dict[str, bytes]:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_hgetall(key, stripe)

    def _do_hgetall(self, key: str, stripe: _Stripe | None = None) -> dict[str, bytes]:
        stripe = stripe or self._stripe_for(key)
        value = self._live(stripe, key)
        if value is None:
            self._log("HGETALL", key.encode())
            return {}
        if type(value) is not HashValue:  # fast path for the hot read
            expect_type(value, "hash")
        out = dict(value.fields)
        if self._aof is not None and self._aof.should_log("HGETALL"):
            log_args = [key.encode()]
            for field, payload in out.items():
                log_args.append(field.encode())
                log_args.append(payload)
            self._log("HGETALL", *log_args)
        return out

    def hdel(self, key: str, *fields: str) -> int:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_hdel(key, fields, stripe)

    def _do_hdel(self, key: str, fields: tuple[str, ...],
                 stripe: _Stripe | None = None) -> int:
        stripe = stripe or self._stripe_for(key)
        value = self._live(stripe, key)
        if value is None:
            return 0
        expect_type(value, "hash")
        removed = 0
        for field in fields:
            if field in value.fields:
                del value.fields[field]
                removed += 1
                self._log("HDEL", key.encode(), field.encode())
        if not value.fields:
            del stripe.data[key]
            stripe.expires.remove(key)
        return removed

    # ------------------------------------------------------------------
    # Set commands
    # ------------------------------------------------------------------

    def sadd(self, key: str, *members: bytes) -> int:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_sadd(key, members, stripe)

    def _do_sadd(self, key: str, members: tuple[bytes, ...],
                 stripe: _Stripe | None = None) -> int:
        stripe = stripe or self._stripe_for(key)
        self._expire_if_due(stripe, key)
        value = stripe.data.get(key)
        expect_type(value, "set")
        if value is None:
            value = SetValue()
            stripe.data[key] = value
        added = 0
        for member in members:
            if member not in value.members:
                value.members.add(member)
                added += 1
                self._log("SADD", key.encode(), member)
        return added

    def srem(self, key: str, *members: bytes) -> int:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_srem(key, members, stripe)

    def _do_srem(self, key: str, members: tuple[bytes, ...],
                 stripe: _Stripe | None = None) -> int:
        stripe = stripe or self._stripe_for(key)
        value = self._live(stripe, key)
        if value is None:
            return 0
        expect_type(value, "set")
        removed = 0
        for member in members:
            if member in value.members:
                value.members.remove(member)
                removed += 1
                self._log("SREM", key.encode(), member)
        if not value.members:
            del stripe.data[key]
            stripe.expires.remove(key)
        return removed

    def smembers(self, key: str) -> set[bytes]:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_smembers(key, stripe)

    def _do_smembers(self, key: str, stripe: _Stripe | None = None) -> set[bytes]:
        stripe = stripe or self._stripe_for(key)
        value = self._live(stripe, key)
        if value is None:
            self._log("SMEMBERS", key.encode())
            return set()
        expect_type(value, "set")
        members = set(value.members)
        if self._aof is not None and self._aof.should_log("SMEMBERS"):
            self._log("SMEMBERS", key.encode(), *sorted(members))
        return members

    def sismember(self, key: str, member: bytes) -> bool:
        stripe = self._stripe_for(key)
        with stripe.lock:
            self._begin(stripe)
            return self._do_sismember(key, member, stripe)

    def _do_sismember(self, key: str, member: bytes,
                      stripe: _Stripe | None = None) -> bool:
        stripe = stripe or self._stripe_for(key)
        value = self._live(stripe, key)
        self._log("SISMEMBER", key.encode(), member)
        if value is None:
            return False
        expect_type(value, "set")
        return member in value.members

    # ------------------------------------------------------------------
    # Keyspace commands
    # ------------------------------------------------------------------

    def _snapshot_keys(self) -> list[str]:
        """Stable key ordering across all stripes (caller holds all locks)."""
        keys: list[str] = []
        for stripe in self._stripes:
            keys.extend(stripe.data.keys())
        return keys

    def _cache_snapshot(self, gen: int) -> list[str]:
        """Build + cache a scan snapshot under ``gen``, evicting to cap."""
        keys = self._snapshot_keys()
        self._scan_snapshots[gen] = keys
        while len(self._scan_snapshots) > _SCAN_SNAPSHOT_CAP:
            self._scan_snapshots.popitem(last=False)
        return keys

    def scan(
        self, cursor: int = 0, match: str | None = None, count: int = 10
    ) -> tuple[int, list[str]]:
        """Cursor-based iteration over the keyspace, like Redis SCAN.

        The cursor packs a snapshot generation and a position into that
        snapshot's stable key ordering; the snapshot is built once per
        traversal (cursor 0) and cached, so a full walk costs O(n) total
        rather than re-materialising the keyspace every batch.  Keys
        deleted mid-traversal are skipped; keys inserted mid-traversal may
        be missed — Redis SCAN makes the same weaker guarantee, and
        GDPRbench only relies on full traversal of stable keys.  A cursor
        whose cached snapshot was evicted (more than the cap of
        traversals in flight) restarts from position 0 of a fresh
        snapshot: stable keys may then be returned twice — which Redis
        SCAN also permits — but are never silently missed.
        """
        with self._locked_all():
            self._tick(self._stripes, count=1)
            self._log("SCAN", str(cursor).encode())
            if cursor == 0:
                self._scan_gen += 1
                gen = self._scan_gen
                keys = self._cache_snapshot(gen)
                position = 0
            else:
                gen = cursor >> _SCAN_POSITION_BITS
                position = cursor & _SCAN_POSITION_MASK
                keys = self._scan_snapshots.get(gen)
                if keys is None:
                    # Snapshot evicted: resuming a numeric position inside
                    # a *different* ordering would skip keys, so restart
                    # the traversal on a fresh snapshot instead.
                    keys = self._cache_snapshot(gen)
                    position = 0
            now = self.clock.now()
            batch: list[str] = []
            while position < len(keys) and len(batch) < count:
                key = keys[position]
                position += 1
                stripe = self._stripe_for(key)
                if key not in stripe.data or stripe.expires.is_expired(key, now):
                    continue
                if match is None or fnmatch.fnmatchcase(key, match):
                    batch.append(key)
            if position >= len(keys):
                self._scan_snapshots.pop(gen, None)
                return 0, batch
            return (gen << _SCAN_POSITION_BITS) | position, batch

    def keys(self, pattern: str = "*") -> list[str]:
        with self._locked_all():
            self._tick(self._stripes, count=1)
            self._log("KEYS", pattern.encode())
            now = self.clock.now()
            return [
                key
                for stripe in self._stripes
                for key in stripe.data
                if not stripe.expires.is_expired(key, now)
                and fnmatch.fnmatchcase(key, pattern)
            ]

    def randomkey(self) -> str | None:
        with self._locked_all():
            self._tick(self._stripes, count=1)
            for stripe in self._stripes:
                for key in stripe.data:
                    if not stripe.expires.is_expired(key, self.clock.now()):
                        return key
            return None

    def dbsize(self) -> int:
        with self._locked_all():
            self._tick(self._stripes, count=1)
            now = self.clock.now()
            return sum(
                1
                for stripe in self._stripes
                for key in stripe.data
                if not stripe.expires.is_expired(key, now)
            )

    def flushall(self) -> None:
        with self._locked_all():
            self._tick(self._stripes, count=1)
            for stripe in self._stripes:
                stripe.data.clear()
                stripe.expires.clear()
            self._scan_snapshots.clear()
            self._log("FLUSHALL")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_used(self) -> int:
        """Approximate bytes held by live values (INFO memory analogue)."""
        with self._locked_all():
            return sum(
                value.memory_bytes()
                for stripe in self._stripes
                for value in stripe.data.values()
            )

    def aof_size(self) -> int:
        return self._aof.size_bytes() if self._aof else 0

    def flush_aof(self) -> None:
        """Force buffered AOF entries to disk (audit readers need this)."""
        if self._aof is not None:
            self._aof.flush()

    @property
    def _commands_processed(self) -> int:
        return sum(stripe.commands for stripe in self._stripes)

    def info(self) -> dict:
        with self._locked_all():
            return {
                "keys": sum(len(stripe.data) for stripe in self._stripes),
                "keys_with_expiry": sum(len(stripe.expires) for stripe in self._stripes),
                "memory_used_bytes": self.memory_used(),
                "aof_size_bytes": self.aof_size(),
                "commands_processed": self._commands_processed,
                "expiry_algorithm": self._stripes[0].cycle.name,
                "stripes": self._nstripes,
                "gdpr_features": self.config.gdpr_features,
            }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _replay(self, path: str) -> None:
        """Rebuild the keyspace from an existing AOF before appending."""
        for entry in aof_mod.load_aof(path, cipher=self._file_cipher):
            if not entry:
                continue
            command = entry[0].decode()
            args = entry[1:]
            if command == "SET":
                key = args[0].decode()
                stripe = self._stripe_for(key)
                stripe.data[key] = StringValue(args[1])
                stripe.expires.remove(key)
            elif command == "DEL":
                key = args[0].decode()
                stripe = self._stripe_for(key)
                stripe.data.pop(key, None)
                stripe.expires.remove(key)
            elif command == "EXPIREAT":
                key = args[0].decode()
                stripe = self._stripe_for(key)
                if key in stripe.data:
                    deadline = float(args[1])
                    stripe.expires.set(key, deadline)
                    if isinstance(stripe.cycle, HeapExpiryCycle):
                        stripe.cycle.schedule(key, deadline)
            elif command == "PERSIST":
                key = args[0].decode()
                self._stripe_for(key).expires.remove(key)
            elif command in ("HSET", "HMSET"):
                key = args[0].decode()
                stripe = self._stripe_for(key)
                value = stripe.data.get(key)
                if not isinstance(value, HashValue):
                    value = HashValue()
                    stripe.data[key] = value
                pairs = args[1:]
                for i in range(0, len(pairs) - 1, 2):
                    field = pairs[i].decode()
                    value.fields[field] = pairs[i + 1]
            elif command == "HDEL":
                key = args[0].decode()
                stripe = self._stripe_for(key)
                value = stripe.data.get(key)
                if isinstance(value, HashValue):
                    value.fields.pop(args[1].decode(), None)
                    if not value.fields:
                        del stripe.data[key]
            elif command == "SADD":
                key = args[0].decode()
                stripe = self._stripe_for(key)
                value = stripe.data.get(key)
                if not isinstance(value, SetValue):
                    value = SetValue()
                    stripe.data[key] = value
                value.members.add(args[1])
            elif command == "SREM":
                key = args[0].decode()
                stripe = self._stripe_for(key)
                value = stripe.data.get(key)
                if isinstance(value, SetValue):
                    value.members.discard(args[1])
                    if not value.members:
                        del stripe.data[key]
            elif command == "FLUSHALL":
                for stripe in self._stripes:
                    stripe.data.clear()
                    stripe.expires.clear()
            # Read commands in an audit-enabled AOF are ignored on replay.

    def rewrite_aof(self, archive_path: str | None = None) -> tuple[int, int]:
        """Compact the AOF to the minimal commands rebuilding current state
        (Redis' BGREWRITEAOF, done synchronously).

        Returns ``(old_size, new_size)`` in bytes.

        GDPR caveat: when the AOF doubles as the audit trail
        (``log_reads=True``), rewriting would destroy the G 30 records of
        processing.  Pass ``archive_path`` to move the full historical log
        aside before compacting; without it, rewriting an audit-bearing
        AOF raises :class:`ConfigurationError`.
        """
        import os as _os
        import shutil as _shutil

        with self._locked_all():
            if self._aof is None:
                raise ConfigurationError("engine has no AOF to rewrite")
            if self.config.log_reads and archive_path is None:
                raise ConfigurationError(
                    "AOF carries the audit trail (log_reads=True); pass "
                    "archive_path to preserve G 30 records before compacting"
                )
            path = self.config.aof_path
            assert path is not None
            self._aof.close()
            old_size = _os.path.getsize(path)
            if archive_path is not None:
                _shutil.copy2(path, archive_path)

            rewrite_path = path + ".rewrite"
            compact = aof_mod.AOFWriter(
                rewrite_path, fsync="always", clock=self.clock,
                cipher=self._file_cipher,
            )
            now = self.clock.now()
            with compact.batch():  # group commit: one fsync for the rewrite
                for stripe in self._stripes:
                    for key, value in stripe.data.items():
                        if stripe.expires.is_expired(key, now):
                            continue
                        if isinstance(value, StringValue):
                            compact.append([b"SET", key.encode(), value.data])
                        elif isinstance(value, HashValue):
                            args: list[bytes] = [b"HMSET", key.encode()]
                            for field, payload in value.fields.items():
                                args.append(field.encode())
                                args.append(payload)
                            compact.append(args)
                        elif isinstance(value, SetValue):
                            for member in sorted(value.members):
                                compact.append([b"SADD", key.encode(), member])
                        deadline = stripe.expires.deadline(key)
                        if deadline is not None:
                            compact.append(
                                [b"EXPIREAT", key.encode(), repr(deadline).encode()]
                            )
            compact.close()
            new_size = _os.path.getsize(rewrite_path)
            _os.replace(rewrite_path, path)
            self._aof = aof_mod.AOFWriter(
                path,
                fsync=self.config.fsync,
                log_reads=self.config.log_reads,
                clock=self.clock,
                cipher=self._file_cipher,
                batch_size=self.config.aof_batch_size,
            )
            return old_size, new_size

    def close(self) -> None:
        if self._aof is not None:
            self._aof.close()

    def __enter__(self) -> "MiniKV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
