"""minikv — the Redis-like in-memory key-value engine.

This is the reproduction's stand-in for Redis v5.0 (Section 5.1 of the
paper): a hash-table keyspace holding typed values (strings, hashes, sets),
TTL support with Redis' lazy sampling expiry cycle, and append-only-file
persistence.  The GDPR retrofit toggles map one-to-one onto the paper's
modifications:

* ``encryption_at_rest`` — LUKS analogue: the persistence file (AOF) is
  encrypted at the disk boundary.  In-memory values stay plaintext, just
  as Redis' heap does on a dm-crypt volume; the in-transit half lives in
  the client stub (the Stunnel analogue).
* ``strict_ttl`` — replaces the lazy expiry cycle with a full scan of the
  expires dictionary per tick (the paper's ~120-line Redis patch).
* ``aof_path`` + ``log_reads`` — audit trail piggybacked on the AOF,
  extended to record reads and scans (Section 5.1: "we update its internal
  logic to log all interactions including reads and scans").

Like Redis, command execution is single-threaded: a global lock serialises
commands, so multi-threaded benchmark clients contend exactly as they would
against one Redis event loop.
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass
from typing import Mapping

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ConfigurationError
from repro.crypto.luks import FileCipher

from . import aof as aof_mod
from .datatypes import HashValue, SetValue, StringValue, Value, expect_type
from .expiry import (
    ExpiresIndex,
    HeapExpiryCycle,
    LazyExpiryCycle,
    StrictExpiryCycle,
)


@dataclass
class MiniKVConfig:
    """Feature switches for the GDPR retrofit (defaults = stock Redis)."""

    encryption_at_rest: bool = False
    strict_ttl: bool = False
    aof_path: str | None = None
    fsync: str = "everysec"
    log_reads: bool = False
    expiry_seed: int = 0
    #: 'lazy' (stock Redis), 'strict' (the paper's patch), or 'heap' (the
    #: paper's §7.2 "efficient time-based deletion" challenge: deadline-
    #: ordered min-heap, strict timeliness at O(k log n) per tick).
    #: Empty string defers to ``strict_ttl`` for backwards compatibility.
    ttl_algorithm: str = ""

    def resolved_ttl_algorithm(self) -> str:
        if self.ttl_algorithm:
            return self.ttl_algorithm
        return "strict" if self.strict_ttl else "lazy"

    @property
    def gdpr_features(self) -> dict[str, bool]:
        """Feature vector reported by GET-SYSTEM-FEATURES."""
        return {
            "encryption": self.encryption_at_rest,
            "timely_deletion": self.resolved_ttl_algorithm() in ("strict", "heap"),
            "monitoring": self.aof_path is not None and self.log_reads,
            "metadata_indexing": False,   # Redis has no secondary indices
            "access_control": False,      # deferred to the client (paper §5.1)
        }


class MiniKV:
    """The engine.  All commands are thread-safe via one global lock."""

    def __init__(self, config: MiniKVConfig | None = None, clock: Clock | None = None) -> None:
        self.config = config or MiniKVConfig()
        self.clock = clock or SystemClock()
        self._data: dict[str, Value] = {}
        self._expires = ExpiresIndex()
        self._lock = threading.RLock()
        self._file_cipher = FileCipher() if self.config.encryption_at_rest else None
        algorithm = self.config.resolved_ttl_algorithm()
        cycle_classes = {
            "lazy": LazyExpiryCycle,
            "strict": StrictExpiryCycle,
            "heap": HeapExpiryCycle,
        }
        try:
            cycle_cls = cycle_classes[algorithm]
        except KeyError:
            raise ConfigurationError(
                f"unknown ttl_algorithm {algorithm!r}; choose from {sorted(cycle_classes)}"
            ) from None
        self._expiry_cycle = cycle_cls(
            self._expires, self._evict_expired_key, seed=self.config.expiry_seed
        )
        self._aof: aof_mod.AOFWriter | None = None
        if self.config.aof_path is not None:
            self._replay(self.config.aof_path)
            self._aof = aof_mod.AOFWriter(
                self.config.aof_path,
                fsync=self.config.fsync,
                log_reads=self.config.log_reads,
                clock=self.clock,
                cipher=self._file_cipher,
            )
        self._commands_processed = 0

    # ------------------------------------------------------------------
    # Internals: cron, passive expiry, logging, encryption
    # ------------------------------------------------------------------

    def _evict_expired_key(self, key: str) -> None:
        """Deletion callback used by the active expiry cycle."""
        self._data.pop(key, None)
        self._expires.remove(key)
        self._log("DEL", key.encode())

    def purge_expired(self) -> list[str]:
        """Actively erase every expired key right now; returns their names.

        This is the engine-side half of DELETE-RECORD-BY-TTL: a controller
        purging expired personal data cannot wait for the lazy cycle to
        sample its way through the keyspace.
        """
        with self._lock:
            # Deliberately skip _begin(): its expiry-cycle tick would evict
            # keys before we can snapshot (and count) them.
            self._commands_processed += 1
            expired = self._expires.all_expired(self.clock.now())
            for key in expired:
                self._evict_expired_key(key)
            return expired

    def cron(self) -> int:
        """Run the active expiry cycle if a tick has elapsed.

        Redis calls this ``serverCron``; minikv invokes it at the top of
        every command, and benchmarks may call it directly while
        fast-forwarding a virtual clock.  Returns keys erased.
        """
        with self._lock:
            now = self.clock.now()
            if self._expiry_cycle.due(now):
                return self._expiry_cycle.run(now)
            return 0

    @property
    def expiry_stats(self):
        return self._expiry_cycle.stats

    def _expire_if_due(self, key: str) -> bool:
        """Passive expiry: purge ``key`` if its deadline has passed."""
        if self._expires.is_expired(key, self.clock.now()):
            self._evict_expired_key(key)
            return True
        return False

    def _log(self, command: str, *args: bytes) -> None:
        if self._aof is not None and self._aof.should_log(command):
            self._aof.append([command.encode(), *args])

    def _live(self, key: str) -> Value | None:
        """Value behind ``key`` after passive expiry, or None."""
        if self._expire_if_due(key):
            return None
        return self._data.get(key)

    def _begin(self) -> None:
        self._commands_processed += 1
        now = self.clock.now()
        if self._expiry_cycle.due(now):
            self._expiry_cycle.run(now)

    # ------------------------------------------------------------------
    # String commands
    # ------------------------------------------------------------------

    def set(self, key: str, value: bytes, ttl: float | None = None) -> None:
        with self._lock:
            self._begin()
            self._expire_if_due(key)
            self._data[key] = StringValue(value)
            self._expires.remove(key)  # SET clears any previous TTL
            self._log("SET", key.encode(), value)
            if ttl is not None:
                self._expire_locked(key, ttl)

    def get(self, key: str) -> bytes | None:
        with self._lock:
            self._begin()
            value = self._live(key)
            if value is None:
                self._log("GET", key.encode())
                return None
            expect_type(value, "string")
            # Audit entries for reads carry the response payload: a G 33(3a)
            # breach report must say which personal data was exposed.
            self._log("GET", key.encode(), value.data)
            return value.data

    def delete(self, *keys: str) -> int:
        with self._lock:
            self._begin()
            removed = 0
            for key in keys:
                self._expire_if_due(key)
                if key in self._data:
                    del self._data[key]
                    self._expires.remove(key)
                    removed += 1
                    self._log("DEL", key.encode())
            return removed

    def exists(self, key: str) -> bool:
        with self._lock:
            self._begin()
            self._log("EXISTS", key.encode())
            return self._live(key) is not None

    # ------------------------------------------------------------------
    # TTL commands
    # ------------------------------------------------------------------

    def _expire_locked(self, key: str, seconds: float) -> bool:
        if key not in self._data:
            return False
        deadline = self.clock.now() + seconds
        self._expires.set(key, deadline)
        if isinstance(self._expiry_cycle, HeapExpiryCycle):
            self._expiry_cycle.schedule(key, deadline)
        self._log("EXPIREAT", key.encode(), repr(deadline).encode())
        return True

    def expire(self, key: str, seconds: float) -> bool:
        """Set a relative TTL; returns False if the key does not exist."""
        with self._lock:
            self._begin()
            self._expire_if_due(key)
            return self._expire_locked(key, seconds)

    def expireat(self, key: str, deadline: float) -> bool:
        """Set an absolute expiry deadline (engine-clock domain)."""
        with self._lock:
            self._begin()
            self._expire_if_due(key)
            if key not in self._data:
                return False
            self._expires.set(key, deadline)
            if isinstance(self._expiry_cycle, HeapExpiryCycle):
                self._expiry_cycle.schedule(key, deadline)
            self._log("EXPIREAT", key.encode(), repr(deadline).encode())
            return True

    def persist(self, key: str) -> bool:
        with self._lock:
            self._begin()
            self._expire_if_due(key)
            if key not in self._data or key not in self._expires:
                return False
            self._expires.remove(key)
            self._log("PERSIST", key.encode())
            return True

    def ttl(self, key: str) -> float:
        """Remaining TTL in seconds; -2 if missing, -1 if no expiry."""
        with self._lock:
            self._begin()
            if self._live(key) is None:
                return -2.0
            deadline = self._expires.deadline(key)
            if deadline is None:
                return -1.0
            return max(0.0, deadline - self.clock.now())

    # ------------------------------------------------------------------
    # Hash commands (GDPRbench stores records as hashes)
    # ------------------------------------------------------------------

    def _hash_for_write(self, key: str) -> HashValue:
        self._expire_if_due(key)
        value = self._data.get(key)
        expect_type(value, "hash")
        if value is None:
            value = HashValue()
            self._data[key] = value
        return value

    def hset(self, key: str, field: str, value: bytes) -> int:
        with self._lock:
            self._begin()
            hash_value = self._hash_for_write(key)
            created = 0 if field in hash_value.fields else 1
            hash_value.fields[field] = value
            self._log("HSET", key.encode(), field.encode(), value)
            return created

    def hmset(self, key: str, mapping: Mapping[str, bytes]) -> None:
        with self._lock:
            self._begin()
            hash_value = self._hash_for_write(key)
            log_args: list[bytes] = [key.encode()]
            for field, value in mapping.items():
                hash_value.fields[field] = value
                log_args.append(field.encode())
                log_args.append(value)
            self._log("HMSET", *log_args)

    def hset_if_exists(self, key: str, field: str, value: bytes) -> int:
        """HSET only when the hash already exists (Lua-script analogue).

        GDPR clients need read-modify-write on records without recreating
        a concurrently-deleted record as a phantom hash; real deployments
        use a Lua script or WATCH/MULTI for this.  Returns 1 if written.
        """
        with self._lock:
            self._begin()
            value_obj = self._live(key)
            if value_obj is None:
                return 0
            expect_type(value_obj, "hash")
            value_obj.fields[field] = value
            self._log("HSET", key.encode(), field.encode(), value)
            return 1

    def hmset_if_exists(self, key: str, mapping: Mapping[str, bytes]) -> int:
        """HMSET only when the hash already exists; returns 1 if written."""
        with self._lock:
            self._begin()
            value_obj = self._live(key)
            if value_obj is None:
                return 0
            expect_type(value_obj, "hash")
            log_args: list[bytes] = [key.encode()]
            for field, value in mapping.items():
                value_obj.fields[field] = value
                log_args.append(field.encode())
                log_args.append(value)
            self._log("HMSET", *log_args)
            return 1

    def hget(self, key: str, field: str) -> bytes | None:
        with self._lock:
            self._begin()
            value = self._live(key)
            if value is None:
                self._log("HGET", key.encode(), field.encode())
                return None
            expect_type(value, "hash")
            payload = value.fields.get(field)
            self._log("HGET", key.encode(), field.encode(), payload or b"")
            return payload

    def hgetall(self, key: str) -> dict[str, bytes]:
        with self._lock:
            self._begin()
            value = self._live(key)
            if value is None:
                self._log("HGETALL", key.encode())
                return {}
            expect_type(value, "hash")
            out = dict(value.fields)
            log_args = [key.encode()]
            for field, payload in out.items():
                log_args.append(field.encode())
                log_args.append(payload)
            self._log("HGETALL", *log_args)
            return out

    def hdel(self, key: str, *fields: str) -> int:
        with self._lock:
            self._begin()
            value = self._live(key)
            if value is None:
                return 0
            expect_type(value, "hash")
            removed = 0
            for field in fields:
                if field in value.fields:
                    del value.fields[field]
                    removed += 1
                    self._log("HDEL", key.encode(), field.encode())
            if not value.fields:
                del self._data[key]
                self._expires.remove(key)
            return removed

    # ------------------------------------------------------------------
    # Set commands
    # ------------------------------------------------------------------

    def sadd(self, key: str, *members: bytes) -> int:
        with self._lock:
            self._begin()
            self._expire_if_due(key)
            value = self._data.get(key)
            expect_type(value, "set")
            if value is None:
                value = SetValue()
                self._data[key] = value
            added = 0
            for member in members:
                if member not in value.members:
                    value.members.add(member)
                    added += 1
                    self._log("SADD", key.encode(), member)
            return added

    def srem(self, key: str, *members: bytes) -> int:
        with self._lock:
            self._begin()
            value = self._live(key)
            if value is None:
                return 0
            expect_type(value, "set")
            removed = 0
            for member in members:
                if member in value.members:
                    value.members.remove(member)
                    removed += 1
                    self._log("SREM", key.encode(), member)
            if not value.members:
                del self._data[key]
                self._expires.remove(key)
            return removed

    def smembers(self, key: str) -> set[bytes]:
        with self._lock:
            self._begin()
            value = self._live(key)
            if value is None:
                self._log("SMEMBERS", key.encode())
                return set()
            expect_type(value, "set")
            members = set(value.members)
            self._log("SMEMBERS", key.encode(), *sorted(members))
            return members

    def sismember(self, key: str, member: bytes) -> bool:
        with self._lock:
            self._begin()
            value = self._live(key)
            self._log("SISMEMBER", key.encode(), member)
            if value is None:
                return False
            expect_type(value, "set")
            return member in value.members

    # ------------------------------------------------------------------
    # Keyspace commands
    # ------------------------------------------------------------------

    def scan(
        self, cursor: int = 0, match: str | None = None, count: int = 10
    ) -> tuple[int, list[str]]:
        """Cursor-based iteration over the keyspace, like Redis SCAN.

        The cursor is an index into a stable snapshot ordering (insertion
        order of the underlying dict); Redis makes weaker guarantees, but
        GDPRbench only relies on full traversal, which this provides.
        """
        with self._lock:
            self._begin()
            self._log("SCAN", str(cursor).encode())
            keys = list(self._data.keys())
            now = self.clock.now()
            batch: list[str] = []
            position = cursor
            while position < len(keys) and len(batch) < count:
                key = keys[position]
                position += 1
                if self._expires.is_expired(key, now):
                    continue
                if match is None or fnmatch.fnmatchcase(key, match):
                    batch.append(key)
            next_cursor = 0 if position >= len(keys) else position
            return next_cursor, batch

    def keys(self, pattern: str = "*") -> list[str]:
        with self._lock:
            self._begin()
            self._log("KEYS", pattern.encode())
            now = self.clock.now()
            return [
                key
                for key in self._data
                if not self._expires.is_expired(key, now)
                and fnmatch.fnmatchcase(key, pattern)
            ]

    def randomkey(self) -> str | None:
        with self._lock:
            self._begin()
            for key in self._data:
                if not self._expires.is_expired(key, self.clock.now()):
                    return key
            return None

    def dbsize(self) -> int:
        with self._lock:
            self._begin()
            now = self.clock.now()
            return sum(
                1 for key in self._data if not self._expires.is_expired(key, now)
            )

    def flushall(self) -> None:
        with self._lock:
            self._begin()
            self._data.clear()
            self._expires.clear()
            self._log("FLUSHALL")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_used(self) -> int:
        """Approximate bytes held by live values (INFO memory analogue)."""
        with self._lock:
            return sum(v.memory_bytes() for v in self._data.values())

    def aof_size(self) -> int:
        with self._lock:
            return self._aof.size_bytes() if self._aof else 0

    def info(self) -> dict:
        with self._lock:
            return {
                "keys": len(self._data),
                "keys_with_expiry": len(self._expires),
                "memory_used_bytes": self.memory_used(),
                "aof_size_bytes": self.aof_size(),
                "commands_processed": self._commands_processed,
                "expiry_algorithm": self._expiry_cycle.name,
                "gdpr_features": self.config.gdpr_features,
            }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _replay(self, path: str) -> None:
        """Rebuild the keyspace from an existing AOF before appending."""
        for entry in aof_mod.load_aof(path, cipher=self._file_cipher):
            if not entry:
                continue
            command = entry[0].decode()
            args = entry[1:]
            if command == "SET":
                key = args[0].decode()
                self._data[key] = StringValue(args[1])
                self._expires.remove(key)
            elif command == "DEL":
                key = args[0].decode()
                self._data.pop(key, None)
                self._expires.remove(key)
            elif command == "EXPIREAT":
                key = args[0].decode()
                if key in self._data:
                    deadline = float(args[1])
                    self._expires.set(key, deadline)
                    if isinstance(self._expiry_cycle, HeapExpiryCycle):
                        self._expiry_cycle.schedule(key, deadline)
            elif command == "PERSIST":
                self._expires.remove(args[0].decode())
            elif command in ("HSET", "HMSET"):
                key = args[0].decode()
                value = self._data.get(key)
                if not isinstance(value, HashValue):
                    value = HashValue()
                    self._data[key] = value
                pairs = args[1:]
                for i in range(0, len(pairs) - 1, 2):
                    field = pairs[i].decode()
                    value.fields[field] = pairs[i + 1]
            elif command == "HDEL":
                key = args[0].decode()
                value = self._data.get(key)
                if isinstance(value, HashValue):
                    value.fields.pop(args[1].decode(), None)
                    if not value.fields:
                        del self._data[key]
            elif command == "SADD":
                key = args[0].decode()
                value = self._data.get(key)
                if not isinstance(value, SetValue):
                    value = SetValue()
                    self._data[key] = value
                value.members.add(args[1])
            elif command == "SREM":
                key = args[0].decode()
                value = self._data.get(key)
                if isinstance(value, SetValue):
                    value.members.discard(args[1])
                    if not value.members:
                        del self._data[key]
            elif command == "FLUSHALL":
                self._data.clear()
                self._expires.clear()
            # Read commands in an audit-enabled AOF are ignored on replay.

    def rewrite_aof(self, archive_path: str | None = None) -> tuple[int, int]:
        """Compact the AOF to the minimal commands rebuilding current state
        (Redis' BGREWRITEAOF, done synchronously).

        Returns ``(old_size, new_size)`` in bytes.

        GDPR caveat: when the AOF doubles as the audit trail
        (``log_reads=True``), rewriting would destroy the G 30 records of
        processing.  Pass ``archive_path`` to move the full historical log
        aside before compacting; without it, rewriting an audit-bearing
        AOF raises :class:`ConfigurationError`.
        """
        import os as _os
        import shutil as _shutil

        with self._lock:
            if self._aof is None:
                raise ConfigurationError("engine has no AOF to rewrite")
            if self.config.log_reads and archive_path is None:
                raise ConfigurationError(
                    "AOF carries the audit trail (log_reads=True); pass "
                    "archive_path to preserve G 30 records before compacting"
                )
            path = self.config.aof_path
            assert path is not None
            self._aof.close()
            old_size = _os.path.getsize(path)
            if archive_path is not None:
                _shutil.copy2(path, archive_path)

            rewrite_path = path + ".rewrite"
            compact = aof_mod.AOFWriter(
                rewrite_path, fsync="always", clock=self.clock,
                cipher=self._file_cipher,
            )
            now = self.clock.now()
            for key, value in self._data.items():
                if self._expires.is_expired(key, now):
                    continue
                if isinstance(value, StringValue):
                    compact.append([b"SET", key.encode(), value.data])
                elif isinstance(value, HashValue):
                    args: list[bytes] = [b"HMSET", key.encode()]
                    for field, payload in value.fields.items():
                        args.append(field.encode())
                        args.append(payload)
                    compact.append(args)
                elif isinstance(value, SetValue):
                    for member in sorted(value.members):
                        compact.append([b"SADD", key.encode(), member])
                deadline = self._expires.deadline(key)
                if deadline is not None:
                    compact.append([b"EXPIREAT", key.encode(), repr(deadline).encode()])
            compact.close()
            new_size = _os.path.getsize(rewrite_path)
            _os.replace(rewrite_path, path)
            self._aof = aof_mod.AOFWriter(
                path,
                fsync=self.config.fsync,
                log_reads=self.config.log_reads,
                clock=self.clock,
                cipher=self._file_cipher,
            )
            return old_size, new_size

    def close(self) -> None:
        if self._aof is not None:
            self._aof.close()

    def __enter__(self) -> "MiniKV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
