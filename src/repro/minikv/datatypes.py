"""Value containers for the minikv keyspace, with memory accounting.

Redis stores everything as a typed value object behind the key; minikv
supports the three types GDPRbench's Redis client uses: strings (plain
payloads), hashes (field -> value, used for records with metadata) and sets
(used for reverse indices if an application builds them).

Every container reports an approximate in-memory footprint so the engine
can answer the space-overhead metric (Table 3) the way ``redis-cli INFO
memory`` would.
"""

from __future__ import annotations

from repro.common.errors import WrongTypeError

_OVERHEAD_PER_ENTRY = 48  # dict entry + object headers, rough CPython cost


class Value:
    """Base class for keyspace values."""

    kind = "none"

    def memory_bytes(self) -> int:
        raise NotImplementedError


class StringValue(Value):
    kind = "string"

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

    def memory_bytes(self) -> int:
        return len(self.data) + _OVERHEAD_PER_ENTRY


class HashValue(Value):
    kind = "hash"

    __slots__ = ("fields",)

    def __init__(self) -> None:
        self.fields: dict[str, bytes] = {}

    def memory_bytes(self) -> int:
        total = _OVERHEAD_PER_ENTRY
        for field, value in self.fields.items():
            total += len(field) + len(value) + _OVERHEAD_PER_ENTRY
        return total


class SetValue(Value):
    kind = "set"

    __slots__ = ("members",)

    def __init__(self) -> None:
        self.members: set[bytes] = set()

    def memory_bytes(self) -> int:
        return _OVERHEAD_PER_ENTRY + sum(len(m) + _OVERHEAD_PER_ENTRY for m in self.members)


def expect_type(value: Value | None, kind: str) -> None:
    """Raise :class:`WrongTypeError` unless ``value`` is absent or ``kind``."""
    if value is not None and value.kind != kind:
        raise WrongTypeError(
            f"WRONGTYPE operation against a key holding a {value.kind} value"
        )
