"""minikv — Redis-like in-memory key-value store (the paper's Redis stand-in)."""

from .aof import AOFWriter, decode_entries, encode_entry, load_aof
from .datatypes import HashValue, SetValue, StringValue, Value
from .engine import MiniKV, MiniKVConfig, Pipeline
from .sharded import ShardedMiniKV, ShardedPipeline, open_minikv, shard_aof_path
from .expiry import (
    ExpiresIndex,
    HeapExpiryCycle,
    LazyExpiryCycle,
    StrictExpiryCycle,
    StripedExpiresView,
    MAX_ITERATIONS_PER_TICK,
    REPEAT_THRESHOLD,
    SAMPLE_SIZE,
    TICK_SECONDS,
)

__all__ = [
    "MiniKV",
    "MiniKVConfig",
    "Pipeline",
    "ShardedMiniKV",
    "ShardedPipeline",
    "open_minikv",
    "shard_aof_path",
    "StripedExpiresView",
    "AOFWriter",
    "encode_entry",
    "decode_entries",
    "load_aof",
    "Value",
    "StringValue",
    "HashValue",
    "SetValue",
    "ExpiresIndex",
    "LazyExpiryCycle",
    "HeapExpiryCycle",
    "StrictExpiryCycle",
    "TICK_SECONDS",
    "SAMPLE_SIZE",
    "REPEAT_THRESHOLD",
    "MAX_ITERATIONS_PER_TICK",
]
