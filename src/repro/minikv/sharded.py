"""Multi-process sharded minikv — the deployment that escapes the GIL.

Every configuration so far runs the whole keyspace inside one Python
process, so lock striping and pipelining can only shrink *contention*:
all engine bytecode still serialises on one GIL, and throughput cannot
scale past one core.  This module hash-partitions the keyspace across
``MiniKVConfig.shards`` **worker processes** — the striping layer's
natural seam, promoted to a process boundary:

* each worker owns one shard: a full :class:`~repro.minikv.engine.MiniKV`
  engine (``shards=1``) with its own expiry cycles and its own AOF
  (``<aof_path>.shard<i>``), so persistence, replay, and the audit trail
  are per-shard and independent;
* the front (:class:`ShardedMiniKV`) exposes the engine's command
  surface and routes each key with the same ``crc32(key) % N`` rule the
  stripes use; cross-key commands (SCAN, KEYS, purge, FLUSHALL, INFO)
  fan out to every shard and merge;
* :meth:`ShardedMiniKV.pipeline` scatter/gathers a command batch: the
  batch splits into one sub-batch per involved shard, every sub-batch is
  shipped in a single message, the workers execute them **in parallel**
  (each under its own GIL, as one engine pipeline = one lock scope + one
  expiry tick + one AOF group commit), and the front reassembles the
  responses in queue order — one request/response round-trip per shard
  per batch;
* a worker that dies is respawned on the next command that touches it;
  the replacement replays its shard's AOF before serving, so recovery is
  per-shard and never stalls the other shards.

The worker loop and the router transport live in
:mod:`repro.common.sharding` (shared with the sharded minisql front);
this module supplies the minikv command surface on top.

Consistency contract (details in ``docs/sharding.md``): single-key
commands keep exactly the engine's per-key linearizability — a key lives
on one shard and its worker serialises commands — but multi-key and
fan-out operations are **not atomic across shards**: each shard applies
its sub-batch atomically, and concurrent observers may see one shard's
effects before another's.  A command retried through worker recovery is
at-least-once: the replayed AOF already holds the acknowledged prefix,
and the retried command re-applies (idempotent for the engine's
write surface; counters such as DELETE's may differ across the retry).

``shards=1`` deployments should not pay any of this: callers go through
:func:`open_minikv`, which returns a plain in-process :class:`MiniKV`
(the paper's semantics, byte-identical to the seed) unless ``shards > 1``.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigurationError, KVError
from repro.common.hashring import in_slot, key_point
from repro.common.sharding import (
    ShardConnectionError as _BaseShardConnectionError,
    ShardRouter,
    serve_shard,
    shard_path,
)
from repro.crypto.luks import FileCipher

from .datatypes import HashValue, StringValue
from .engine import MiniKV, MiniKVConfig


class ShardConnectionError(_BaseShardConnectionError, KVError):
    """A minikv shard worker could not be reached even after a respawn."""


#: Engine commands that queue on an engine-side pipeline inside a worker
#: (the vocabulary of a ``("batch", ...)`` message).  Everything here has
#: a queueing twin on :class:`~repro.minikv.engine.Pipeline`.
BATCHABLE_COMMANDS = (
    "set", "get", "delete", "exists", "expire", "expireat", "persist",
    "ttl", "hset", "hmset", "hset_if_exists", "hmset_if_exists", "hget",
    "hgetall", "hdel", "sadd", "srem", "smembers", "sismember",
)

#: Single-key commands the front routes by ``crc32(key) % shards``.
#: (``delete`` is multi-key and ``scan`` carries a composite cursor, so
#: both get explicit implementations instead of a generated router.)
_KEYED_COMMANDS = tuple(c for c in BATCHABLE_COMMANDS if c != "delete")

#: Keyless commands that fan out to every shard.  The merge of the
#: per-shard results is named per command in :class:`ShardedMiniKV`.
_FANOUT_COMMANDS = (
    "purge_expired", "cron", "keys", "randomkey", "dbsize", "flushall",
    "memory_used", "aof_size", "flush_aof", "info",
)


def shard_aof_path(base_path: str, index: int) -> str:
    """Per-shard AOF file derived from the deployment's base path."""
    return shard_path(base_path, index)


def _worker_config(config: MiniKVConfig, index: int) -> MiniKVConfig:
    """The engine config one worker runs: its own shard, one process."""
    return dataclasses.replace(
        config,
        shards=1,
        transport="pipe",
        shard_addresses=None,
        aof_path=(
            shard_aof_path(config.aof_path, index)
            if config.aof_path is not None else None
        ),
        # de-correlate the lazy expiry cycles across shards, mirroring
        # how the striped engine seeds each stripe's cycle differently
        expiry_seed=config.expiry_seed + index,
    )


class _ShardBackend(MiniKV):
    """The engine one shard worker runs: ``MiniKV`` + migration RPCs.

    The three ``migrate_*`` methods are the worker side of online
    resharding (``docs/sharding.md``): the dump reads live state under
    the engine's own locks (so it includes acknowledged writes that have
    not hit the AOF file yet — the catch-up), and the apply replays
    through the public write surface, so the destination's AOF records
    the arrivals durably.  Apply is delete-before-insert and the router
    only drops after a successful apply, so every step is idempotent and
    a crash mid-migration repairs by re-running the plan.
    """

    def migrate_dump(self, lo: int, hi: int) -> list:
        """Every live key in ring slot ``(lo, hi]``: (kind, key, payload,
        deadline) tuples, expired keys skipped (death needs no ticket)."""
        now = self.clock.now()
        items: list[tuple] = []
        with self._locked_all():
            for stripe in self._stripes:
                for key, value in stripe.data.items():
                    if not in_slot(key_point(key), lo, hi):
                        continue
                    if stripe.expires.is_expired(key, now):
                        continue
                    deadline = stripe.expires.deadline(key)
                    if isinstance(value, StringValue):
                        items.append(("string", key, value.data, deadline))
                    elif isinstance(value, HashValue):
                        items.append(("hash", key, dict(value.fields), deadline))
                    else:  # SetValue
                        items.append(("set", key, sorted(value.members), deadline))
        return items

    def migrate_apply(self, items: list) -> int:
        """Install dumped keys (idempotent: any stale twin dies first)."""
        for kind, key, payload, deadline in items:
            self.delete(key)
            if kind == "string":
                self.set(key, payload)
            elif kind == "hash":
                self.hmset(key, payload)
            else:
                self.sadd(key, *payload)
            if deadline is not None:
                self.expireat(key, deadline)
        return len(items)

    def migrate_drop(self, items: list) -> int:
        """Forget dumped keys after the destination applied them."""
        keys = [key for _kind, key, _payload, _deadline in items]
        return self.delete(*keys) if keys else 0


def _run_engine_batch(engine: MiniKV, calls: list) -> list:
    """One ``("batch", ...)`` message: an engine pipeline, per-slot errors.

    Queue-phase failures (e.g. an arity error the in-process Pipeline
    would raise at queue time) are captured per slot, like execution
    failures: one bad command must not abort the other slots' commands.
    """
    pipe = engine.pipeline()
    queue_errors: dict[int, Exception] = {}
    for position, (method, args, kwargs) in enumerate(calls):
        try:
            getattr(pipe, method)(*args, **kwargs)
        except Exception as exc:
            queue_errors[position] = exc
    executed = iter(pipe.execute(raise_on_error=False))
    return [
        queue_errors[position] if position in queue_errors else next(executed)
        for position in range(len(calls))
    ]


def _worker_main(conn, config: MiniKVConfig) -> None:
    """One shard worker: replay the shard AOF, then serve the connection."""
    engine = _ShardBackend(config)  # replays this shard's AOF if one exists
    serve_shard(conn, engine, _run_engine_batch, KVError)


class ShardedPipeline:
    """A queued command batch scatter/gathered across shard workers.

    Mirrors :class:`~repro.minikv.engine.Pipeline`'s queueing surface and
    error semantics.  At :meth:`execute` the queue splits into one
    sub-batch per involved shard; every sub-batch crosses its worker's
    pipe as a single message and runs there as one engine pipeline, so a
    batch costs one round-trip per involved shard — with the workers
    executing their sub-batches concurrently.  Atomicity is therefore
    **per shard**: each worker applies its sub-batch under one lock
    scope, but there is no cross-shard barrier.
    """

    __slots__ = ("_front", "_slots", "_per_shard")

    def __init__(self, front: "ShardedMiniKV") -> None:
        self._front = front
        #: one entry per queued command: a tuple of (shard index,
        #: position in that shard's sub-batch) parts.  Single-key
        #: commands have one part; multi-key DELETE may have several.
        self._slots: list[tuple[tuple[int, int], ...]] = []
        self._per_shard: dict[int, list[tuple[str, tuple, dict]]] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def _queue(self, method: str, key: str, args: tuple,
               kwargs: dict) -> "ShardedPipeline":
        index = self._front._shard_index(key)
        calls = self._per_shard.setdefault(index, [])
        self._slots.append(((index, len(calls)),))
        calls.append((method, args, kwargs))
        return self

    def delete(self, *keys: str) -> "ShardedPipeline":
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(self._front._shard_index(key), []).append(key)
        if not by_shard:  # keyless DELETE still occupies a result slot
            by_shard[self._front._anchor_id] = []
        parts = []
        for index in sorted(by_shard):
            calls = self._per_shard.setdefault(index, [])
            parts.append((index, len(calls)))
            calls.append(("delete", tuple(by_shard[index]), {}))
        self._slots.append(tuple(parts))
        return self

    def execute(self, raise_on_error: bool = True) -> list:
        """Run the batch; per-command results in queue order.

        Failures are captured per slot and the first is raised after the
        whole batch completes (pass ``raise_on_error=False`` to receive
        them in the result list) — the engine pipeline's contract.
        """
        slots, self._slots = self._slots, []
        per_shard, self._per_shard = self._per_shard, {}
        if not slots:
            return []
        gathered = self._front._scatter(
            [(index, ("batch", calls)) for index, calls in per_shard.items()]
        )
        results = []
        for parts in slots:
            if len(parts) == 1:
                index, position = parts[0]
                value = gathered[index][position]
            else:  # multi-key DELETE split across shards: sum the counts
                value = 0
                for index, position in parts:
                    part = gathered[index][position]
                    if isinstance(part, Exception):
                        value = part
                        break
                    value += part
            results.append(value)
        if raise_on_error:
            for value in results:
                if isinstance(value, Exception):
                    raise value
        return results


def _make_keyed_command(method: str):
    def command(self, key, *args, **kwargs):
        # _call_point resolves the owner under the topology lock, so a
        # concurrent reshard cannot slip between routing and exchange
        return self._call_point(key_point(key), method, key, *args, **kwargs)
    command.__name__ = method
    command.__qualname__ = f"ShardedMiniKV.{method}"
    command.__doc__ = f"Route ``{method.upper()}`` to its key's shard worker."
    return command


class ShardedMiniKV(ShardRouter):
    """Shard router: the engine command surface over N worker processes.

    Construct via :func:`open_minikv` so that ``shards=1`` configurations
    stay on the in-process engine.  Worker lifecycle, crash recovery, and
    the scatter/gather transport come from
    :class:`repro.common.sharding.ShardRouter`.
    """

    worker_target = staticmethod(_worker_main)
    worker_name = "minikv-shard"
    error_class = ShardConnectionError

    def __init__(self, config: MiniKVConfig | None = None,
                 start_method: str | None = None) -> None:
        self.config = config or MiniKVConfig()
        if self.config.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        self._file_cipher = FileCipher() if self.config.encryption_at_rest else None
        super().__init__(
            self.config.shards,
            start_method=start_method,
            transport=self.config.transport,
            addresses=self.config.shard_addresses,
            ring_vnodes=self.config.ring_vnodes,
            base_path=self.config.aof_path,
        )

    # ------------------------------------------------------------------
    # Routing + router hooks
    # ------------------------------------------------------------------

    def _shard_config(self, shard_id: int) -> MiniKVConfig:
        return _worker_config(self.config, shard_id)

    def _shard_files(self, shard_id: int) -> list[str]:
        if self.config.aof_path is None:
            return []
        return [shard_aof_path(self.config.aof_path, shard_id)]

    def _shard_index(self, key: str) -> int:
        """The shard id owning ``key`` on the consistent-hash ring."""
        return self._owner(key_point(key))

    # ------------------------------------------------------------------
    # Command surface
    # ------------------------------------------------------------------
    # Single-key commands are generated below from _KEYED_COMMANDS: each
    # routes to its key's worker with the shard lock held for exactly one
    # request/response exchange.

    def delete(self, *keys: str) -> int:
        """Multi-key DELETE: one message per involved shard, counts summed."""
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(self._shard_index(key), []).append(key)
        if not by_shard:
            return 0
        gathered = self._scatter([
            (index, ("call", "delete", tuple(shard_keys), {}))
            for index, shard_keys in by_shard.items()
        ])
        return sum(gathered.values())

    def pipeline(self) -> ShardedPipeline:
        """A new scatter/gather command batch."""
        return ShardedPipeline(self)

    def scan(self, cursor: int = 0, match: str | None = None,
             count: int = 10) -> tuple[int, list[str]]:
        """Cursor iteration over the union keyspace, shard by shard.

        The cursor packs ``(shard position, that shard's inner SCAN
        cursor)`` as ``inner * nshards + position + 1`` over the sorted
        live shard ids; ``0`` still means "traversal complete".
        Guarantees compose from the per-shard engine SCAN: keys stable
        for the whole traversal are returned at least once, deletions are
        skipped, concurrent inserts may be missed.  There is no
        cross-shard snapshot — each shard is traversed against its own
        snapshot, taken when the cursor enters it — and a reshard
        invalidates in-flight cursors (the position→id mapping changes;
        restart the traversal from 0, as after a snapshot eviction).
        """
        ids = self.shard_ids
        nshards = len(ids)
        if cursor == 0:
            position, inner = 0, 0
        else:
            position = (cursor - 1) % nshards
            inner = (cursor - 1) // nshards
        inner_next, batch = self._call(ids[position], "scan", inner, match, count)
        if inner_next != 0:
            return inner_next * nshards + position + 1, batch
        if position + 1 < nshards:
            return position + 2, batch  # (next shard, inner cursor 0)
        return 0, batch

    # -- keyless fan-outs, each with its named merge ---------------------

    def purge_expired(self) -> list[str]:
        """Erase every expired key on every shard; union of the names."""
        gathered = self._fanout("purge_expired")
        return [key for index in sorted(gathered) for key in gathered[index]]

    def cron(self) -> int:
        return sum(self._fanout("cron").values())

    def keys(self, pattern: str = "*") -> list[str]:
        gathered = self._fanout("keys", (pattern,))
        return [key for index in sorted(gathered) for key in gathered[index]]

    def randomkey(self) -> str | None:
        for key in self._fanout("randomkey").values():
            if key is not None:
                return key
        return None

    def dbsize(self) -> int:
        return sum(self._fanout("dbsize").values())

    def flushall(self) -> None:
        self._fanout("flushall")

    def memory_used(self) -> int:
        return sum(self._fanout("memory_used").values())

    def aof_size(self) -> int:
        return sum(self._fanout("aof_size").values())

    def flush_aof(self) -> None:
        """Flush every shard's AOF (audit readers parse the files)."""
        self._fanout("flush_aof")

    def rewrite_aof(self, archive_path: str | None = None) -> tuple[int, int]:
        """Compact every shard's AOF; summed ``(old_size, new_size)``.

        The engine's BGREWRITEAOF analogue, fanned out: each worker
        compacts its own shard file under its own locks, so the rewrites
        run in parallel and no shard stalls another.  The GDPR archival
        contract is per shard too: with ``log_reads=True`` the shard AOFs
        are the audit trail, so each worker refuses to compact without an
        archive path, and ``archive_path`` lands the full historical logs
        at ``<archive_path>.shard<i>`` — one archive per shard, readable
        with the same per-shard tooling as the live trail.
        """
        gathered = self._fanout_rewrite(archive_path)
        per_shard = [gathered[index] for index in sorted(gathered)]
        return (
            sum(old for old, _ in per_shard),
            sum(new for _, new in per_shard),
        )

    def _fanout_rewrite(self, archive_path: str | None) -> dict[int, object]:
        return self._scatter([
            (index, ("call", "rewrite_aof", (
                shard_path(archive_path, index)
                if archive_path is not None else None,
            ), {}))
            for index in self.shard_ids
        ])

    def info(self) -> dict:
        """Aggregate INFO across shards (+ ``shards`` and per-shard keys)."""
        gathered = self._fanout("info")
        per_shard = [gathered[index] for index in sorted(gathered)]
        merged = {
            "keys": sum(i["keys"] for i in per_shard),
            "keys_with_expiry": sum(i["keys_with_expiry"] for i in per_shard),
            "memory_used_bytes": sum(i["memory_used_bytes"] for i in per_shard),
            "aof_size_bytes": sum(i["aof_size_bytes"] for i in per_shard),
            "commands_processed": sum(i["commands_processed"] for i in per_shard),
            "expiry_algorithm": per_shard[0]["expiry_algorithm"],
            "stripes": per_shard[0]["stripes"],
            "gdpr_features": per_shard[0]["gdpr_features"],
            "shards": self.shard_count,
            "keys_per_shard": [i["keys"] for i in per_shard],
        }
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def aof_paths(self) -> list[str]:
        """The live shards' AOF files (empty when persistence is off)."""
        if self.config.aof_path is None:
            return []
        return [shard_aof_path(self.config.aof_path, i) for i in self.shard_ids]

    def __enter__(self) -> "ShardedMiniKV":
        return self


for _method in _KEYED_COMMANDS:
    setattr(ShardedMiniKV, _method, _make_keyed_command(_method))
for _method in BATCHABLE_COMMANDS:
    if _method != "delete":
        def _queue_method(self, key, *args, _m=_method, **kwargs):
            return self._queue(_m, key, (key, *args), kwargs)
        _queue_method.__name__ = _method
        _queue_method.__qualname__ = f"ShardedPipeline.{_method}"
        _queue_method.__doc__ = f"Queue ``{_method.upper()}`` for its key's shard."
        setattr(ShardedPipeline, _method, _queue_method)
del _method


def open_minikv(config: MiniKVConfig | None = None, clock=None):
    """Engine factory honouring ``MiniKVConfig.shards``.

    ``shards=1`` (the default) returns the in-process :class:`MiniKV` —
    the paper's execution model, byte-identical to the seed engine.
    ``shards > 1`` returns a :class:`ShardedMiniKV` front over that many
    worker processes.  Sharded workers keep their own system clocks
    (a clock cannot be shared across processes), so injecting a custom
    ``clock`` requires ``shards=1``.
    """
    config = config or MiniKVConfig()
    if config.shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if config.shards == 1:
        return MiniKV(config, clock=clock)
    if clock is not None:
        raise ConfigurationError(
            "sharded minikv workers run on their own system clocks; "
            "custom clocks require shards=1"
        )
    return ShardedMiniKV(config)
