"""Append-only file: persistence log and, under GDPR, the audit trail.

Redis' AOF records every state-changing command; replaying the file
rebuilds the dataset.  The paper (Section 5.1) determines that piggybacking
the GDPR audit trail on the AOF has the least overhead, but has to extend
it to log *reads and scans* too — which is exactly the switch
``log_reads`` on :class:`AOFWriter`.

Entries use a length-prefixed, escape-free text framing (a simplified RESP):

    *<nargs>\\n$<len>\\n<arg bytes>\\n...$<len>\\n<arg bytes>\\n

Fsync policy mirrors ``appendfsync``: ``always`` flushes per command,
``everysec`` flushes when the engine clock crosses a 1-second boundary
(the default, and what the paper benchmarks), ``no`` leaves flushing to
the OS (here: file close).

Group commit: with ``batch_size > 1`` the ``always`` policy amortises the
fsync over a batch — entries buffer until ``batch_size`` of them are
pending, or until an append observes the 1-second clock boundary, then
hit the disk under one flush+fsync.  The :meth:`AOFWriter.batch` context
manager gives the engine's pipeline the same amortisation for an
explicit command batch: appends inside the block buffer unconditionally
and a single policy decision runs at block exit.  Framing is unchanged,
so replay and torn-write (``aof-load-truncated``) semantics are exactly
the per-append ones; the durability window widens from one entry to one
batch.  Like ``everysec`` (which has always worked this way here), the
policy is append-driven — there is no background flusher, so a partial
batch written by a client that then goes idle stays buffered until the
next append, an explicit :meth:`flush`, or :meth:`close`.  Choose
``batch_size=1`` (the default) when per-command durability matters.
"""

from __future__ import annotations

import io
import os
import threading
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.common.clock import Clock, SystemClock
from repro.common.errors import AOFCorruptError, ConfigurationError

FSYNC_POLICIES = ("always", "everysec", "no")

#: Commands that mutate the keyspace and are always logged + replayed.
MUTATING_COMMANDS = frozenset(
    {
        "SET", "DEL", "EXPIRE", "EXPIREAT", "PERSIST",
        "HSET", "HDEL", "HMSET",
        "SADD", "SREM",
        "FLUSHALL",
    }
)


def encode_entry(args: Iterable[bytes]) -> bytes:
    """Serialise one command into the AOF framing."""
    parts = list(args)
    out = io.BytesIO()
    out.write(b"*%d\n" % len(parts))
    for part in parts:
        out.write(b"$%d\n" % len(part))
        out.write(part)
        out.write(b"\n")
    return out.getvalue()


def decode_entries(data: bytes) -> Iterator[list[bytes]]:
    """Parse the AOF back into commands; raises on a malformed prefix.

    A *trailing* partial entry (torn final write after a crash) is ignored,
    matching Redis' ``aof-load-truncated yes`` behaviour.
    """
    pos = 0
    n = len(data)
    while pos < n:
        start = pos
        try:
            if data[pos:pos + 1] != b"*":
                raise AOFCorruptError(f"expected '*' at offset {pos}")
            eol = data.index(b"\n", pos)
            nargs = int(data[pos + 1:eol])
            pos = eol + 1
            args: list[bytes] = []
            for _ in range(nargs):
                if data[pos:pos + 1] != b"$":
                    raise AOFCorruptError(f"expected '$' at offset {pos}")
                eol = data.index(b"\n", pos)
                length = int(data[pos + 1:eol])
                pos = eol + 1
                if pos + length + 1 > n:
                    raise IndexError  # torn write
                args.append(data[pos:pos + length])
                pos += length
                if data[pos:pos + 1] != b"\n":
                    raise AOFCorruptError(f"missing terminator at offset {pos}")
                pos += 1
            yield args
        except (ValueError, IndexError):
            # Torn trailing entry (crash mid-append): stop replay here,
            # matching Redis' aof-load-truncated behaviour.  ``start`` marks
            # where the torn entry began for diagnostics.
            del start
            return


class AOFWriter:
    """Buffered append-only log with configurable fsync policy.

    With a ``cipher`` (the LUKS analogue), every byte is encrypted at its
    absolute file offset before it is buffered — the at-rest boundary a
    dm-crypt block device provides.  Reads of the file must decrypt from
    offset 0 (see :func:`load_aof`).
    """

    def __init__(
        self,
        path: str,
        fsync: str = "everysec",
        log_reads: bool = False,
        clock: Clock | None = None,
        cipher=None,
        batch_size: int = 1,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(f"unknown fsync policy {fsync!r}")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.path = path
        self.fsync = fsync
        self.log_reads = log_reads
        self.batch_size = batch_size
        self._clock = clock or SystemClock()
        self._file = open(path, "ab")
        self._buffer = io.BytesIO()
        self._last_flush = self._clock.now()
        self._entries_logged = 0
        self._cipher = cipher
        self._offset = self._file.tell()  # absolute cipher offset
        # Stripes append concurrently; the RLock lets the fsync policy
        # call flush() while an append already holds it.
        self._lock = threading.RLock()
        self._pending = 0               # entries buffered since last flush
        # batch() depth is per-thread: a pipeline's group commit defers
        # only its own flush decision, it must not block (or change the
        # policy of) appends arriving from other stripes' threads.
        self._batch = threading.local()

    @property
    def entries_logged(self) -> int:
        return self._entries_logged

    def should_log(self, command: str) -> bool:
        """Mutations always; reads/scans only when auditing is on."""
        if command in MUTATING_COMMANDS:
            return True
        return self.log_reads

    def _batch_depth(self) -> int:
        return getattr(self._batch, "depth", 0)

    def append(self, args: Iterable[bytes]) -> None:
        with self._lock:
            data = encode_entry(args)
            if self._cipher is not None:
                data = self._cipher.apply(data, self._offset)
            self._offset += len(data)
            self._buffer.write(data)
            self._entries_logged += 1
            self._pending += 1
            if self._batch_depth() == 0:
                self._apply_fsync_policy()

    def append_many(self, entries: Iterable[Iterable[bytes]]) -> None:
        """Group-commit a batch: buffer every entry, one policy decision."""
        with self.batch():
            for args in entries:
                self.append(args)

    @contextmanager
    def batch(self):
        """Defer this thread's flush/fsync decisions to the end of the block.

        Appends from the block only buffer; one fsync-policy application
        runs at exit, so a pipeline of N commands pays at most one fsync.
        The writer lock is held per append, not across the block — other
        threads' appends proceed (and flush) normally in between.
        """
        self._batch.depth = self._batch_depth() + 1
        try:
            yield self
        finally:
            self._batch.depth -= 1
            if self._batch.depth == 0:
                with self._lock:
                    self._apply_fsync_policy(batch_boundary=True)

    def _apply_fsync_policy(self, batch_boundary: bool = False) -> None:
        if self.fsync == "always":
            # Group commit: wait for a full batch unless this *is* the
            # batch boundary; an append past the 1s clock boundary also
            # flushes (append-driven — idle buffers flush only on close).
            if (
                batch_boundary
                or self._pending >= self.batch_size
                or self._clock.now() - self._last_flush >= 1.0
            ):
                self.flush()
        elif self.fsync == "everysec":
            if self._clock.now() - self._last_flush >= 1.0:
                self.flush()

    def flush(self) -> None:
        with self._lock:
            data = self._buffer.getvalue()
            if data:
                self._file.write(data)
                self._file.flush()
                os.fsync(self._file.fileno())
                self._buffer = io.BytesIO()
            self._pending = 0
            self._last_flush = self._clock.now()

    def size_bytes(self) -> int:
        """Bytes durably in the file plus bytes still buffered.

        Safe against a concurrently closed writer (an AOF rewrite swaps
        writers while other threads may be sizing the old one): a closed
        writer reports the file's on-disk size, since close() flushed.
        """
        with self._lock:
            if self._file.closed:
                try:
                    return os.path.getsize(self.path)
                except OSError:
                    return 0
            return self._file.tell() + len(self._buffer.getvalue())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self.flush()
                self._file.close()

    def __enter__(self) -> "AOFWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_aof(path: str, cipher=None) -> list[list[bytes]]:
    """Read every complete entry from an AOF file for replay.

    ``cipher`` must match the :class:`AOFWriter`'s (decryption starts at
    file offset 0).
    """
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return []
    if cipher is not None:
        data = cipher.apply(data, 0)
    return list(decode_entries(data))
