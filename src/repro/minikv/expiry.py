"""Active TTL expiry cycles: Redis' lazy sampling vs the paper's strict scan.

Section 5.1 of the paper pinpoints why stock Redis cannot guarantee timely
deletion (GDPR articles 5(1e) and 17): the active expiry cycle is a lazy
probabilistic algorithm.  Once every 100 ms it samples 20 random keys from
the set of keys carrying an expiry; expired ones are deleted; if fewer than
5 of the 20 were expired it waits for the next tick, otherwise it repeats
the loop immediately.  As the fraction of expired keys shrinks, the
expected number of deletions per tick falls towards ``20 * E/N``, so the
time to fully erase grows with the *total* number of keys carrying TTLs —
the Figure 3a curve.

The paper's modification iterates the entire expires dictionary on every
cycle, which erases everything expired within one tick (sub-second).
:class:`StrictExpiryCycle` implements that.

Both cycles operate on an :class:`ExpiresIndex` owned by the engine and are
driven by ``run(now)`` calls; the engine invokes them from its command path
(and benchmarks drive them with a virtual clock to fast-forward hours).

Striping: a lock-striped engine partitions the keyspace, so each stripe
owns its *own* ExpiresIndex and cycle instance (guarded by that stripe's
lock) — a command only ever ticks the cycle of the stripe it locked.
:class:`StripedExpiresView` presents the per-stripe indices as one
read-only ``expires`` dictionary for introspection and experiments, and
:func:`aggregate_stats` folds per-stripe cycle stats into one report.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable

TICK_SECONDS = 0.1          # Redis runs the cycle 10 times per second
SAMPLE_SIZE = 20            # keys sampled per iteration
REPEAT_THRESHOLD = 5        # repeat immediately if >= this many expired
MAX_ITERATIONS_PER_TICK = 16  # Redis bounds cycle CPU; we bound iterations


class ExpiresIndex:
    """The ``expires`` dictionary: key -> absolute expiry time.

    Keeps a parallel list so the lazy cycle can sample uniformly in O(1),
    the same trick Redis' dict random-key primitive provides.
    """

    def __init__(self) -> None:
        self._deadline: dict[str, float] = {}
        self._order: list[str] = []
        self._position: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._deadline)

    def __contains__(self, key: str) -> bool:
        return key in self._deadline

    def deadline(self, key: str) -> float | None:
        return self._deadline.get(key)

    def set(self, key: str, when: float) -> None:
        if key not in self._deadline:
            self._position[key] = len(self._order)
            self._order.append(key)
        self._deadline[key] = when

    def clear(self) -> None:
        self._deadline.clear()
        self._order.clear()
        self._position.clear()

    def remove(self, key: str) -> None:
        if key not in self._deadline:
            return
        del self._deadline[key]
        # Swap-pop keeps sampling O(1).
        idx = self._position.pop(key)
        last = self._order.pop()
        if last != key:
            self._order[idx] = last
            self._position[last] = idx

    def sample(self, count: int, rng: random.Random) -> list[str]:
        n = len(self._order)
        if n == 0:
            return []
        if n <= count:
            return list(self._order)
        return [self._order[rng.randrange(n)] for _ in range(count)]

    def is_expired(self, key: str, now: float) -> bool:
        deadline = self._deadline.get(key)
        return deadline is not None and deadline <= now

    def all_expired(self, now: float) -> list[str]:
        return [k for k, d in self._deadline.items() if d <= now]


class StripedExpiresView:
    """Read-only union of per-stripe :class:`ExpiresIndex` instances.

    Keeps ``engine._expires`` introspectable (tests and the Figure 3a
    experiment call ``all_expired``/``len``) without funnelling the hot
    path back through one shared structure.
    """

    def __init__(self, indices: list[ExpiresIndex]) -> None:
        self._indices = indices

    def __len__(self) -> int:
        return sum(len(index) for index in self._indices)

    def __contains__(self, key: str) -> bool:
        return any(key in index for index in self._indices)

    def deadline(self, key: str) -> float | None:
        for index in self._indices:
            found = index.deadline(key)
            if found is not None:
                return found
        return None

    def is_expired(self, key: str, now: float) -> bool:
        return any(index.is_expired(key, now) for index in self._indices)

    def all_expired(self, now: float) -> list[str]:
        out: list[str] = []
        for index in self._indices:
            out.extend(index.all_expired(now))
        return out


@dataclass
class ExpiryCycleStats:
    ticks: int = 0
    iterations: int = 0
    sampled: int = 0
    deleted: int = 0
    last_run: float = field(default=float("-inf"))


def aggregate_stats(parts: list[ExpiryCycleStats]) -> ExpiryCycleStats:
    """Fold per-stripe cycle stats into one engine-level report.

    Always returns a detached snapshot — even for one stripe — so the
    caller-visible semantics don't depend on the stripe count.
    """
    return ExpiryCycleStats(
        ticks=sum(p.ticks for p in parts),
        iterations=sum(p.iterations for p in parts),
        sampled=sum(p.sampled for p in parts),
        deleted=sum(p.deleted for p in parts),
        last_run=max(p.last_run for p in parts),
    )


class LazyExpiryCycle:
    """Redis' stock sampling expiry cycle (the Figure 3a culprit)."""

    name = "lazy"

    def __init__(self, index: ExpiresIndex, delete: Callable[[str], None], seed: int = 0) -> None:
        self._index = index
        self._delete = delete
        self._rng = random.Random(seed)
        self.stats = ExpiryCycleStats()

    def due(self, now: float) -> bool:
        return now - self.stats.last_run >= TICK_SECONDS

    def run(self, now: float) -> int:
        """One 100 ms tick; returns number of keys erased."""
        self.stats.last_run = now
        self.stats.ticks += 1
        erased = 0
        for _ in range(MAX_ITERATIONS_PER_TICK):
            self.stats.iterations += 1
            sampled = self._index.sample(SAMPLE_SIZE, self._rng)
            self.stats.sampled += len(sampled)
            expired = [k for k in sampled if self._index.is_expired(k, now)]
            for key in expired:
                self._delete(key)
            erased += len(expired)
            self.stats.deleted += len(expired)
            if len(expired) < REPEAT_THRESHOLD:
                break
        return erased


class HeapExpiryCycle:
    """Deadline-ordered expiry: the paper's §7.2 "efficient time-based
    deletion" research challenge, implemented.

    The strict cycle achieves timeliness by scanning the whole expires
    dictionary every 100 ms — O(n) per tick, which is what makes the
    paper's TTL feature cost ~20% of Redis' throughput.  Keeping a min-heap
    of (deadline, key) makes each tick O(k log n) for k actually-expired
    keys: same sub-second timeliness as strict, near-zero foreground cost.

    Deadline *changes* (EXPIRE on an existing key, PERSIST) are handled by
    lazy invalidation: the heap may hold stale entries, and each popped
    entry is checked against the authoritative :class:`ExpiresIndex`
    before deletion.
    """

    name = "heap"

    def __init__(self, index: ExpiresIndex, delete: Callable[[str], None], seed: int = 0) -> None:
        self._index = index
        self._delete = delete
        self._heap: list[tuple[float, str]] = []
        self.stats = ExpiryCycleStats()

    def schedule(self, key: str, deadline: float) -> None:
        """Record a (possibly updated) deadline for ``key``."""
        heapq.heappush(self._heap, (deadline, key))

    def due(self, now: float) -> bool:
        return now - self.stats.last_run >= TICK_SECONDS

    def run(self, now: float) -> int:
        self.stats.last_run = now
        self.stats.ticks += 1
        self.stats.iterations += 1
        erased = 0
        while self._heap and self._heap[0][0] <= now:
            deadline, key = heapq.heappop(self._heap)
            self.stats.sampled += 1
            current = self._index.deadline(key)
            if current is None or current != deadline:
                continue  # stale heap entry (deadline changed or key gone)
            if current <= now:
                self._delete(key)
                erased += 1
        self.stats.deleted += erased
        return erased


class StrictExpiryCycle:
    """The paper's modification: full scan of the expires dict per tick."""

    name = "strict"

    def __init__(self, index: ExpiresIndex, delete: Callable[[str], None], seed: int = 0) -> None:
        self._index = index
        self._delete = delete
        self.stats = ExpiryCycleStats()

    def due(self, now: float) -> bool:
        return now - self.stats.last_run >= TICK_SECONDS

    def run(self, now: float) -> int:
        self.stats.last_run = now
        self.stats.ticks += 1
        self.stats.iterations += 1
        expired = self._index.all_expired(now)
        self.stats.sampled += len(self._index)
        for key in expired:
            self._delete(key)
        self.stats.deleted += len(expired)
        return len(expired)
