"""Request-distribution generators used by YCSB and GDPRbench workloads.

These are faithful ports of the generators in the YCSB core package
(Cooper et al., SoCC 2010), which GDPRbench reuses:

* :class:`UniformGenerator` — every item equally likely.
* :class:`ZipfianGenerator` — the Gray et al. "quickly generating
  billion-record synthetic databases" rejection-free algorithm, constant
  ``theta`` (YCSB default 0.99).
* :class:`ScrambledZipfianGenerator` — zipfian popularity spread over the
  whole keyspace via FNV hashing, so the hot items are not clustered.
* :class:`LatestGenerator` — zipfian over recency (most recently inserted
  item is the most popular); used by YCSB workload D.
* :class:`HotspotGenerator` — fraction of operations hit a hot set.
* :class:`CounterGenerator` — monotonically increasing ids for inserts.

All generators draw from a caller-supplied :class:`random.Random` so every
experiment is reproducible from a seed.
"""

from __future__ import annotations

import random
import threading

from .errors import ConfigurationError

ZIPFIAN_CONSTANT = 0.99

_FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer, as used by YCSB's scrambler."""
    data = value & 0xFFFFFFFFFFFFFFFF
    digest = _FNV_OFFSET_BASIS_64
    for _ in range(8):
        octet = data & 0xFF
        data >>= 8
        digest = digest ^ octet
        digest = (digest * _FNV_PRIME_64) & 0xFFFFFFFFFFFFFFFF
    return digest


class IntegerGenerator:
    """Interface: produce the next integer in [lower, upper] of a scheme."""

    def next_value(self) -> int:
        raise NotImplementedError

    def last_value(self) -> int:
        raise NotImplementedError


class CounterGenerator(IntegerGenerator):
    """Monotonically increasing counter; thread-safe.

    Used to pick the key for YCSB ``insert`` operations so each insert gets
    a fresh id, and to track the highest id for the Latest distribution.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._lock = threading.Lock()

    def next_value(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def last_value(self) -> int:
        with self._lock:
            return self._next - 1


class UniformGenerator(IntegerGenerator):
    """Uniformly random integer in [lower, upper] inclusive."""

    def __init__(self, lower: int, upper: int, rng: random.Random | None = None) -> None:
        if upper < lower:
            raise ConfigurationError(f"uniform bounds inverted: [{lower}, {upper}]")
        self._lower = lower
        self._upper = upper
        self._rng = rng or random.Random()
        self._last = lower

    def next_value(self) -> int:
        self._last = self._rng.randint(self._lower, self._upper)
        return self._last

    def last_value(self) -> int:
        return self._last


class ZipfianGenerator(IntegerGenerator):
    """Zipf-distributed integers in [lower, upper]; item 0 is most popular.

    Implements the Gray et al. algorithm used by YCSB: O(1) per sample after
    an O(n)-free closed-form setup using the incomplete zeta approximation.
    """

    def __init__(
        self,
        lower: int,
        upper: int,
        theta: float = ZIPFIAN_CONSTANT,
        rng: random.Random | None = None,
    ) -> None:
        if upper < lower:
            raise ConfigurationError(f"zipfian bounds inverted: [{lower}, {upper}]")
        if not 0 < theta < 1:
            raise ConfigurationError("zipfian theta must be in (0, 1)")
        self._lower = lower
        self._items = upper - lower + 1
        self._theta = theta
        self._rng = rng or random.Random()
        self._zeta2 = self._zeta_static(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta_static(self._items, theta)
        self._eta = self._compute_eta()
        self._last = lower
        # Prime the generator the way YCSB does, so the very first sample
        # already honours the distribution.
        self.next_value()

    @staticmethod
    def _zeta_static(n: int, theta: float) -> float:
        # Exact for small n; Euler-Maclaurin style approximation for large n
        # keeps setup O(1)-ish while staying within ~1e-3 of the true zeta.
        if n <= 10000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10001))
        # integral of x^-theta from 10000 to n
        tail = ((n ** (1.0 - theta)) - (10000 ** (1.0 - theta))) / (1.0 - theta)
        return head + tail

    def _compute_eta(self) -> float:
        return (1 - (2.0 / self._items) ** (1 - self._theta)) / (1 - self._zeta2 / self._zetan)

    def next_value(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self._theta:
            rank = 1
        else:
            rank = int(self._items * ((self._eta * u - self._eta + 1) ** self._alpha))
            if rank >= self._items:  # numeric edge
                rank = self._items - 1
        self._last = self._lower + rank
        return self._last

    def last_value(self) -> int:
        return self._last


class ScrambledZipfianGenerator(IntegerGenerator):
    """Zipfian popularity scattered over the keyspace by FNV hashing.

    YCSB uses this for read-heavy workloads so that popular items are not
    adjacent.  The rank drawn from the underlying zipfian is hashed and
    folded back into [lower, upper].
    """

    def __init__(self, lower: int, upper: int, rng: random.Random | None = None) -> None:
        if upper < lower:
            raise ConfigurationError(f"scrambled-zipfian bounds inverted: [{lower}, {upper}]")
        self._lower = lower
        self._items = upper - lower + 1
        self._zipf = ZipfianGenerator(0, self._items - 1, rng=rng)
        self._last = lower

    def next_value(self) -> int:
        rank = self._zipf.next_value()
        self._last = self._lower + fnv1a_64(rank) % self._items
        return self._last

    def last_value(self) -> int:
        return self._last


class LatestGenerator(IntegerGenerator):
    """Zipfian over recency: the newest insert is the most popular item.

    Follows a :class:`CounterGenerator` that tracks the highest existing id.
    """

    def __init__(self, counter: CounterGenerator, rng: random.Random | None = None) -> None:
        self._counter = counter
        self._rng = rng or random.Random()
        self._last = 0
        # Cache a zipfian sized to the current keyspace; resize lazily.
        self._zipf_size = 0
        self._zipf: ZipfianGenerator | None = None

    def next_value(self) -> int:
        newest = self._counter.last_value()
        size = newest + 1
        if size <= 0:
            raise ConfigurationError("latest distribution over an empty keyspace")
        if self._zipf is None or size > self._zipf_size * 2 or size < self._zipf_size // 2:
            self._zipf = ZipfianGenerator(0, size - 1, rng=self._rng)
            self._zipf_size = size
        offset = self._zipf.next_value()
        if offset > newest:
            offset = newest
        self._last = newest - offset
        return self._last

    def last_value(self) -> int:
        return self._last


class HotspotGenerator(IntegerGenerator):
    """``hot_op_fraction`` of draws land in the first ``hot_set_fraction``."""

    def __init__(
        self,
        lower: int,
        upper: int,
        hot_set_fraction: float = 0.2,
        hot_op_fraction: float = 0.8,
        rng: random.Random | None = None,
    ) -> None:
        if not 0 <= hot_set_fraction <= 1 or not 0 <= hot_op_fraction <= 1:
            raise ConfigurationError("hotspot fractions must be in [0, 1]")
        self._lower = lower
        self._upper = upper
        items = upper - lower + 1
        self._hot_items = max(1, int(items * hot_set_fraction))
        self._hot_op_fraction = hot_op_fraction
        self._rng = rng or random.Random()
        self._last = lower

    def next_value(self) -> int:
        if self._rng.random() < self._hot_op_fraction:
            self._last = self._lower + self._rng.randrange(self._hot_items)
        else:
            self._last = self._lower + self._rng.randrange(self._upper - self._lower + 1)
        return self._last

    def last_value(self) -> int:
        return self._last


class DiscreteGenerator:
    """Weighted choice among named operations (the YCSB operation chooser)."""

    def __init__(self, rng: random.Random | None = None) -> None:
        self._values: list[tuple[str, float]] = []
        self._total = 0.0
        self._rng = rng or random.Random()
        self._last: str | None = None

    def add_value(self, value: str, weight: float) -> None:
        if weight < 0:
            raise ConfigurationError(f"negative weight for {value!r}")
        if weight > 0:
            self._values.append((value, weight))
            self._total += weight

    def next_value(self) -> str:
        if not self._values:
            raise ConfigurationError("discrete generator has no values")
        point = self._rng.random() * self._total
        acc = 0.0
        for value, weight in self._values:
            acc += weight
            if point < acc:
                self._last = value
                return value
        self._last = self._values[-1][0]
        return self._last

    def last_value(self) -> str | None:
        return self._last

    @property
    def weights(self) -> dict[str, float]:
        """Normalised weight of every value (sums to 1.0)."""
        if not self._total:
            return {}
        return {v: w / self._total for v, w in self._values}


def make_key_chooser(
    name: str,
    lower: int,
    upper: int,
    rng: random.Random | None = None,
    insert_counter: CounterGenerator | None = None,
) -> IntegerGenerator:
    """Factory mapping a distribution name from a workload file to a generator."""
    name = name.lower()
    if name == "uniform":
        return UniformGenerator(lower, upper, rng=rng)
    if name == "zipfian":
        return ScrambledZipfianGenerator(lower, upper, rng=rng)
    if name == "rawzipfian":
        return ZipfianGenerator(lower, upper, rng=rng)
    if name == "latest":
        if insert_counter is None:
            raise ConfigurationError("latest distribution needs an insert counter")
        return LatestGenerator(insert_counter, rng=rng)
    if name == "hotspot":
        return HotspotGenerator(lower, upper, rng=rng)
    raise ConfigurationError(f"unknown request distribution {name!r}")
