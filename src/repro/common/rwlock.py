"""A reader–writer lock for the per-table locking layers.

Many readers may hold the lock simultaneously; a writer holds it alone.
The lock is *writer-preferring*: once a writer is waiting, new readers
queue behind it, so a stream of SELECTs cannot starve a DELETE (the shape
of the paper's SELECT-heavy GDPR workloads makes reader starvation of
writers the realistic hazard).

The lock is **not reentrant** in either mode — a thread must not acquire
it again while already holding it (a reader re-entering while a writer
waits would deadlock by design of the preference rule).  Layers above
(:mod:`repro.minisql.transaction`) are structured so no code path nests
acquisitions of the same lock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Writer-preferring shared/exclusive lock."""

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- shared (read) side -------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive (write) side ---------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # -- context managers ----------------------------------------------------

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection (tests / metrics) -------------------------------------

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_held(self) -> bool:
        return self._writer
