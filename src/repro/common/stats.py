"""Latency / throughput statistics used by the benchmark runtime engine.

GDPRbench reuses YCSB's stats machinery (per-operation histograms plus an
overall throughput line); this module reimplements that: a fixed-bucket
microsecond histogram (cheap, mergeable across threads) and a per-workload
summary with the metrics GDPRbench reports — completion time foremost.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


class Histogram:
    """Log-scale latency histogram in microseconds.

    60 buckets cover 1us .. ~1100s with ~1.41x resolution; exact min/max
    and sum are tracked on the side so means are not quantised.
    """

    BUCKETS = 60
    _GROWTH = math.sqrt(2.0)

    def __init__(self) -> None:
        self._counts = [0] * self.BUCKETS
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    def record(self, latency_us: float) -> None:
        self.record_many(latency_us, 1)

    def record_many(self, latency_us: float, count: int) -> None:
        """Record ``count`` samples sharing one latency value.

        The batch-execution path apportions a pipeline's latency evenly
        across its operations, so per-sample record() calls would add
        identical values ``count`` times; this folds them into one update.
        """
        if latency_us < 0:
            raise ValueError("negative latency")
        self._n += count
        self._sum += latency_us * count
        self._min = min(self._min, latency_us)
        self._max = max(self._max, latency_us)
        bucket = 0 if latency_us < 1 else int(math.log(latency_us, self._GROWTH))
        self._counts[min(bucket, self.BUCKETS - 1)] += count

    def merge(self, other: "Histogram") -> None:
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self._n += other._n
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean_us(self) -> float:
        return self._sum / self._n if self._n else 0.0

    @property
    def min_us(self) -> float:
        return 0.0 if self._n == 0 else self._min

    @property
    def max_us(self) -> float:
        return self._max

    def percentile_us(self, pct: float) -> float:
        """Approximate percentile: upper edge of the bucket holding it."""
        if not 0 < pct <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self._n == 0:
            return 0.0
        target = math.ceil(self._n * pct / 100.0)
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= target:
                return self._GROWTH ** (i + 1)
        return self._max


@dataclass
class OperationStats:
    """Stats for one operation type (e.g. READ, delete-record-by-key)."""

    name: str
    histogram: Histogram = field(default_factory=Histogram)
    ok: int = 0
    failed: int = 0

    def record(self, latency_us: float, success: bool = True) -> None:
        self.histogram.record(latency_us)
        if success:
            self.ok += 1
        else:
            self.failed += 1

    def record_many(self, latency_us: float, ok: int, failed: int) -> None:
        self.histogram.record_many(latency_us, ok + failed)
        self.ok += ok
        self.failed += failed


class StatsCollector:
    """Thread-safe collection of per-operation stats for one workload run."""

    def __init__(self) -> None:
        self._ops: dict[str, OperationStats] = {}
        self._lock = threading.Lock()
        self._started: float | None = None
        self._finished: float | None = None

    def start(self, now: float) -> None:
        self._started = now

    def finish(self, now: float) -> None:
        self._finished = now

    def record(self, op: str, latency_us: float, success: bool = True) -> None:
        with self._lock:
            stats = self._ops.get(op)
            if stats is None:
                stats = self._ops[op] = OperationStats(op)
            stats.record(latency_us, success)

    def record_batch(self, op: str, latency_us: float, ok: int, failed: int = 0) -> None:
        """Record a pipelined batch: ``ok`` + ``failed`` operations of one
        type sharing an apportioned per-operation latency."""
        with self._lock:
            stats = self._ops.get(op)
            if stats is None:
                stats = self._ops[op] = OperationStats(op)
            stats.record_many(latency_us, ok, failed)

    @property
    def operations(self) -> dict[str, OperationStats]:
        return dict(self._ops)

    @property
    def total_ops(self) -> int:
        return sum(s.ok + s.failed for s in self._ops.values())

    @property
    def total_ok(self) -> int:
        return sum(s.ok for s in self._ops.values())

    @property
    def completion_time_s(self) -> float:
        """Wall-clock time from workload start to the last operation."""
        if self._started is None or self._finished is None:
            return 0.0
        return max(0.0, self._finished - self._started)

    @property
    def throughput_ops_s(self) -> float:
        elapsed = self.completion_time_s
        return self.total_ops / elapsed if elapsed > 0 else 0.0

    def overall_percentile_us(self, pct: float) -> float:
        """Percentile over *all* operations merged into one histogram.

        The per-op histograms are mergeable by construction (fixed shared
        buckets), so the overall p50/p99 a benchmark row reports is exact
        to bucket resolution, not an average of per-op percentiles.
        """
        merged = Histogram()
        with self._lock:
            for s in self._ops.values():
                merged.merge(s.histogram)
        return merged.percentile_us(pct)

    def summary(self) -> dict:
        """Plain-dict report, one row per operation plus totals."""
        per_op = {}
        for name, s in sorted(self._ops.items()):
            per_op[name] = {
                "count": s.ok + s.failed,
                "ok": s.ok,
                "failed": s.failed,
                "mean_us": round(s.histogram.mean_us, 2),
                "p50_us": round(s.histogram.percentile_us(50), 2),
                "p99_us": round(s.histogram.percentile_us(99), 2),
                "max_us": round(s.histogram.max_us, 2),
            }
        return {
            "operations": per_op,
            "total_ops": self.total_ops,
            "completion_time_s": round(self.completion_time_s, 6),
            "throughput_ops_s": round(self.throughput_ops_s, 2),
        }
