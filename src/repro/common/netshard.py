"""TCP transport for shard workers: length-prefixed pickled frames.

The router↔worker protocol in :mod:`repro.common.sharding` is strictly
one-reply-per-message over an object pipe.  This module carries the same
protocol over a TCP socket, so a shard worker can live on another host:

* a **frame** is a 4-byte big-endian length prefix followed by that many
  bytes of pickle — the same wire shape ``multiprocessing.Connection``
  uses, reimplemented here so both ends can be plain sockets;
* :class:`SocketConnection` adapts a connected socket to the
  ``send``/``recv``/``close`` surface the shard plumbing expects.  A
  clean peer close surfaces as ``EOFError`` and a corrupt stream as
  :class:`FrameError` (a ``ConnectionError``), so the router's existing
  ``except (EOFError, OSError)`` respawn/reconnect path covers both;
* :class:`ShardServer` wraps :func:`~repro.common.sharding.serve_shard`
  in an accept loop: **one connection at a time, one fresh engine per
  connection**.  The engine factory replays the shard's persistence file
  before serving, so a front that reconnects after a failure gets
  exactly the crash-respawn-replay semantics of the pipe transport.

``TCP_NODELAY`` is set on both ends: the protocol is strict
request/response, so Nagle batching would add a full delayed-ACK round
trip to every exchange and sink the router-tax bound the benchmarks
assert (tcp ≥ 0.5x pipe).
"""

from __future__ import annotations

import pickle
import select
import socket
import struct
import time

from .sharding import serve_shard

_HEADER = struct.Struct("!I")

#: frames beyond this are assumed to be a desynced/garbage length prefix
#: (the sharded protocol ships command batches, not bulk dumps this big)
MAX_FRAME_BYTES = 1 << 30


class FrameError(ConnectionError):
    """The byte stream is not a well-formed frame (truncation/garbage).

    Subclasses ``ConnectionError`` (hence ``OSError``) deliberately: a
    desynced stream is unrecoverable in place, so the router must treat
    it like a dead transport — drop the connection and respawn/reconnect.
    """


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            received = n - remaining
            if not chunks:
                raise EOFError  # clean close on a frame boundary
            raise FrameError(
                f"truncated frame: peer closed after {received}/{n} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, obj) -> None:
    """Pickle ``obj`` and send it as one length-prefixed frame."""
    payload = pickle.dumps(obj)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket):
    """Receive one frame; ``EOFError`` on clean close, ``FrameError`` on rot."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"implausible frame length {length} (garbage prefix?)"
        )
    payload = _recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"garbage frame: {exc}") from exc


class SocketConnection:
    """A connected TCP socket behind the duplex-pipe ``Connection`` surface."""

    __slots__ = ("_sock",)

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def send(self, obj) -> None:
        send_frame(self._sock, obj)

    def recv(self):
        return recv_frame(self._sock)

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a recv would not block (data or EOF pending) —
        the ``multiprocessing.Connection.poll`` surface, so the serve
        loop's graceful-shutdown poll works on both transports."""
        readable, _, _ = select.select([self._sock], [], [], timeout)
        return bool(readable)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()


def connect_shard(host: str, port: int, retries: int = 50,
                  delay: float = 0.1) -> SocketConnection:
    """Connect to a shard server, retrying while it binds/re-accepts.

    The retry loop covers both startup (the server process is still
    binding) and reconnect-after-crash (the server accepts the next
    connection only after the previous one's serve loop unwinds).
    """
    last: Exception | None = None
    for _ in range(retries):
        try:
            return SocketConnection(socket.create_connection((host, port)))
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise ConnectionError(
        f"shard server {host}:{port} unreachable after {retries} attempts"
    ) from last


class ShardServer:
    """One shard's TCP server: accept → fresh engine → serve → repeat.

    ``engine_factory`` constructs the shard's engine (replaying its
    persistence file) once per accepted connection, and
    :func:`serve_shard` closes it when the connection ends — so every
    reconnect sees exactly the state a pipe-transport respawn would see.
    Connections are served one at a time: the shard protocol already
    serialises exchanges behind the front's per-shard lock, so a second
    concurrent front would only interleave corruption.
    """

    def __init__(self, host: str, port: int, engine_factory, run_batch,
                 error_factory) -> None:
        self._engine_factory = engine_factory
        self._run_batch = run_batch
        self._error_factory = error_factory
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.host, self.port = self._listener.getsockname()[:2]
        self._closed = False

    def serve_one(self, should_stop=None) -> None:
        """Accept one connection and serve it to completion.

        ``should_stop`` forwards to :func:`serve_shard`'s graceful-
        shutdown poll: the in-flight request finishes and gets its
        reply, then the loop drains out and the engine closes (flushing
        its persistence) — how a SIGTERM'd external server exits without
        dropping acknowledged writes.
        """
        sock, _peer = self._listener.accept()
        conn = SocketConnection(sock)
        engine = self._engine_factory()
        # serve_shard closes the engine and the connection in its finally
        serve_shard(conn, engine, self._run_batch, self._error_factory,
                    should_stop=should_stop)

    def serve_forever(self, should_stop=None) -> None:
        """Accept/serve until the listener is closed (or ``should_stop``).

        A connection that dies mid-frame must not kill the server: its
        engine was already closed by ``serve_shard``'s finally, and the
        next accept builds a fresh one from the persistence file.
        """
        while not self._closed:
            if should_stop is not None and should_stop():
                return
            try:
                self.serve_one(should_stop=should_stop)
            except OSError:
                if self._closed:
                    return
                continue

    def close(self) -> None:
        self._closed = True
        try:
            # wake a thread blocked in accept(); close() alone leaves it
            # sleeping on the dead fd on Linux
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
