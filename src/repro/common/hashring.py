"""Consistent-hash ring: key placement with bounded movement on resharding.

The sharded fronts originally routed with ``crc32(key) % N`` — perfect
balance, but changing ``N`` remaps almost the whole keyspace (SNIPPETS.md
§10: the classic modulo-vs-ring trade).  This module replaces the modulo
with a consistent-hash ring so that ``add_shard``/``remove_shard`` move
only ~``1/N`` of the keys:

* every shard id projects to ``vnodes`` **virtual-node points** on a
  32-bit ring (md5 of ``"shard:<id>:vnode:<r>"`` — a *seeded, stable*
  hash, never Python's per-process ``hash()``), so placement is
  deterministic across processes and across time;
* a key hashes with the same ``crc32`` over the same canonicalized input
  the modulo router used, and is owned by the first vnode point at or
  clockwise-after its hash (wrapping past 2**32 to the smallest point);
* the ring is a **pure function of the live shard-id set**: it is always
  built by sorted-id insertion, so two processes holding the same id set
  agree on every placement no matter in which order shards were added.

:func:`plan_migration` diffs two rings into the minimal slot-move list —
the router walks it during online resharding, cutting over one slot at a
time (see ``docs/sharding.md``).
"""

from __future__ import annotations

import bisect
import hashlib
import zlib

#: the ring is the 32-bit hash space (matches ``zlib.crc32`` output)
RING_BITS = 32
RING_SIZE = 1 << RING_BITS

#: default virtual nodes per shard — enough that per-shard load sits
#: within ~±15% of fair share while keeping rings tiny (N*64 points)
DEFAULT_VNODES = 64


def key_point(text: str) -> int:
    """A key's position on the ring: crc32 of its canonical text.

    This is exactly the hash the modulo router fed into ``% N`` — the
    canonicalized key (minikv) / ``str(validated_pk)`` (minisql) — so
    switching router algorithms never changes the *input*, only the
    placement rule.
    """
    return zlib.crc32(text.encode())


def _vnode_point(shard_id: int, replica: int) -> int:
    """One shard replica's ring position (md5: stable across processes)."""
    digest = hashlib.md5(f"shard:{shard_id}:vnode:{replica}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def in_slot(point: int, lo: int, hi: int) -> bool:
    """Whether ``point`` lies in the ring slot ``(lo, hi]`` (wrapping).

    A slot is the arc *after* one vnode point up to and including the
    next; ``lo == hi`` denotes the full ring (a one-point ring's only
    slot).
    """
    if lo == hi:
        return True
    if lo < hi:
        return lo < point <= hi
    return point > lo or point <= hi


class HashRing:
    """An immutable ring over a set of shard ids.

    Built by sorted-id insertion so identical id sets yield identical
    rings regardless of construction order; point collisions between
    shards (p ≈ |points|²/2³³) resolve deterministically to the smaller
    shard id for the same reason.
    """

    __slots__ = ("shard_ids", "vnodes", "_points", "_owners")

    def __init__(self, shard_ids, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shard_ids = tuple(sorted(set(shard_ids)))
        if not self.shard_ids:
            raise ValueError("a hash ring needs at least one shard id")
        self.vnodes = vnodes
        taken: dict[int, int] = {}
        for shard_id in self.shard_ids:  # sorted: smaller id wins collisions
            for replica in range(vnodes):
                taken.setdefault(_vnode_point(shard_id, replica), shard_id)
        self._points = sorted(taken)
        self._owners = [taken[p] for p in self._points]

    def owner(self, point: int) -> int:
        """The shard owning ring position ``point`` (successor vnode)."""
        i = bisect.bisect_left(self._points, point % RING_SIZE)
        if i == len(self._points):
            i = 0  # wrap to the smallest point
        return self._owners[i]

    def owner_of_key(self, text: str) -> int:
        return self.owner(key_point(text))

    def slots(self) -> list[tuple[int, int, int]]:
        """Every ``(lo, hi, owner)`` slot: the arc ``(lo, hi]`` wrapping.

        Slot ``i`` runs from point ``i-1`` (exclusive) to point ``i``
        (inclusive); the first slot wraps from the last point.
        """
        out = []
        for i, hi in enumerate(self._points):
            lo = self._points[i - 1]  # i == 0 wraps to the last point
            out.append((lo, hi, self._owners[i]))
        return out

    def spread(self) -> dict[int, float]:
        """Fraction of the ring each shard owns (sums to 1.0)."""
        totals = dict.fromkeys(self.shard_ids, 0)
        for lo, hi, owner in self.slots():
            totals[owner] += (hi - lo) % RING_SIZE or RING_SIZE
        return {sid: arc / RING_SIZE for sid, arc in totals.items()}


def plan_migration(old: HashRing, new: HashRing) -> list[tuple[int, int, int, int]]:
    """The slot moves that turn ``old``'s placement into ``new``'s.

    Returns ``(lo, hi, src, dst)`` tuples — every maximal arc ``(lo, hi]``
    whose owner changes, with boundaries drawn from the union of both
    rings' vnode points so each task's source and destination are single
    shards.  Arcs whose owner is unchanged are absent: that is the whole
    point of consistent hashing (an N→N+1 ring move touches ~1/(N+1) of
    the space; the modulo router would touch ~N/(N+1)).
    """
    boundaries = sorted(set(old._points) | set(new._points))
    tasks: list[tuple[int, int, int, int]] = []
    for i, hi in enumerate(boundaries):
        lo = boundaries[i - 1]
        src, dst = old.owner(hi), new.owner(hi)
        if src == dst:
            continue
        if tasks and tasks[-1][1] == lo and tasks[-1][2:] == (src, dst):
            tasks[-1] = (tasks[-1][0], hi, src, dst)  # coalesce adjacent
        else:
            tasks.append((lo, hi, src, dst))
    return tasks
