"""Exception hierarchy shared by every subsystem in the reproduction.

Each engine raises subclasses of :class:`ReproError` so that callers (the
benchmark clients, the examples) can catch one family of exceptions without
knowing which substrate they are talking to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent options."""


# --------------------------------------------------------------------------
# Key-value engine (minikv) errors
# --------------------------------------------------------------------------

class KVError(ReproError):
    """Base class for errors raised by the minikv engine."""


class WrongTypeError(KVError):
    """Operation applied against a key holding the wrong kind of value.

    Mirrors Redis' ``WRONGTYPE`` reply.
    """


class AOFCorruptError(KVError):
    """The append-only file is truncated or malformed and cannot replay."""


# --------------------------------------------------------------------------
# Relational engine (minisql) errors
# --------------------------------------------------------------------------

class SQLError(ReproError):
    """Base class for errors raised by the minisql engine."""


class CatalogError(SQLError):
    """Unknown or duplicate table / column / index."""


class TypeMismatchError(SQLError):
    """A value does not match the declared column type."""


class ConstraintError(SQLError):
    """A uniqueness or not-null constraint was violated."""


class ParseError(SQLError):
    """The tiny SQL front-end could not parse a statement."""


# --------------------------------------------------------------------------
# GDPR layer errors
# --------------------------------------------------------------------------

class GDPRError(ReproError):
    """Base class for errors raised by the GDPR compliance layer."""


class RecordFormatError(GDPRError):
    """A personal-data record does not follow the GDPRbench wire format."""


class AccessDeniedError(GDPRError):
    """Metadata-based access control rejected the operation."""


class UnknownQueryError(GDPRError):
    """A GDPR query name is not part of the Section-3.3 taxonomy."""


# --------------------------------------------------------------------------
# Benchmark errors
# --------------------------------------------------------------------------

class BenchmarkError(ReproError):
    """Base class for errors raised by the benchmark harness."""


class WorkloadError(BenchmarkError):
    """A workload definition is malformed (weights, distributions...)."""
