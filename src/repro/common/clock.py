"""Clock abstraction used by every time-dependent component.

The engines (TTL expiry, audit batching, WAL fsync windows) never call
``time.time()`` directly; they take a :class:`Clock`.  Production code uses
:class:`SystemClock`; tests use :class:`VirtualClock`, which makes the lazy
Redis expiry cycle and the minisql TTL sweeper fully deterministic.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface: monotonically non-decreasing seconds since an epoch."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock backed by :func:`time.monotonic`."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A clock that only moves when told to.

    ``sleep()`` advances the clock instead of blocking, which lets tests
    fast-forward days of TTL expiry in microseconds.  Thread-safe so the
    benchmark runtime can share one instance across worker threads.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move the clock forward and return the new time."""
        if seconds < 0:
            raise ValueError("cannot move a clock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def set(self, instant: float) -> None:
        """Jump directly to ``instant`` (must not go backwards)."""
        with self._lock:
            if instant < self._now:
                raise ValueError("cannot move a clock backwards")
            self._now = float(instant)
