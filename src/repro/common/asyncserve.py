"""Asyncio shard serving: the frame protocol multiplexed on one event loop.

PR 7's :mod:`repro.common.netshard` carries the shard protocol over TCP
with **one thread per connection** (in practice: one connection at a
time per worker).  That shape cannot host the open-loop front ends the
benchmarks now model — thousands of mostly-idle client connections each
holding a thread.  This module serves the *same* wire protocol — the
4-byte big-endian length prefix, the pickled payload, the
:class:`~repro.common.netshard.FrameError` taxonomy for truncated or
garbage streams, and strictly one reply per message — from a single
``asyncio`` event loop, so connection count stops being a thread count:

* :func:`async_recv_frame` / :func:`async_send_frame` — the coroutine
  twins of ``recv_frame``/``send_frame``, byte-compatible with the
  blocking ends (a threaded front talks to an async server and vice
  versa);
* :class:`AsyncShardServer` — an accept loop over **one shared engine**:
  the engine replays its persistence file once at :meth:`~AsyncShardServer.start`
  and every connection multiplexes onto it.  (The threaded
  :class:`~repro.common.netshard.ShardServer` instead builds a fresh
  engine per connection — it only ever serves one at a time, so
  replay-per-accept *is* its recovery story.  With concurrent
  connections a shared engine is the only coherent choice: all fronts
  must see one state.)  A ``("stop",)`` message is therefore
  **connection-scoped** here: it flushes the engine's persistence and
  closes that connection, leaving the engine live for the others;
* :class:`AsyncShardConnection` + :func:`async_scatter` — the
  router-side async variant: per-connection exchanges serialised by an
  ``asyncio.Lock`` (one outstanding message per shard, the async
  analogue of the front's per-shard lock) and a scatter that launches
  every shard's exchange before awaiting any reply, so in-flight batch
  sub-requests interleave on the wire exactly like the threaded
  router's all-sends-before-first-receive discipline.

Request handling itself still runs the engine synchronously on the loop
(the engines are in-process Python); what the event loop buys is I/O
multiplexing — frame reads, frame writes, and idle connections cost no
threads, and replies to other connections are written while one
connection's next request is still in flight.
"""

from __future__ import annotations

import asyncio
import pickle
import socket

from .netshard import _HEADER, MAX_FRAME_BYTES, FrameError


async def async_send_frame(writer: asyncio.StreamWriter, obj) -> None:
    """Pickle ``obj`` and send it as one length-prefixed frame."""
    payload = pickle.dumps(obj)
    writer.write(_HEADER.pack(len(payload)) + payload)
    await writer.drain()


async def _read_exact(reader: asyncio.StreamReader, n: int) -> bytes:
    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError from None  # clean close on a frame boundary
        raise FrameError(
            f"truncated frame: peer closed after {len(exc.partial)}/{n} bytes"
        ) from None


async def async_recv_frame(reader: asyncio.StreamReader):
    """Receive one frame; ``EOFError`` on clean close, ``FrameError`` on rot."""
    header = await _read_exact(reader, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"implausible frame length {length} (garbage prefix?)"
        )
    payload = await _read_exact(reader, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"garbage frame: {exc}") from exc


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    sock = writer.get_extra_info("socket")
    if sock is not None:
        # strict request/response: Nagle would add a delayed-ACK round
        # trip per exchange, same rationale as the threaded transport
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


def _flush_engine(engine) -> None:
    """Flush whatever persistence the engine has (AOF or WAL + csvlog)."""
    for name in ("flush_aof", "flush_wal", "flush_csvlog"):
        flush = getattr(engine, name, None)
        if flush is not None:
            flush()


class AsyncShardServer:
    """One shard worker serving any number of connections from one loop.

    ``engine_factory`` runs once, at :meth:`start` — the engine replays
    its persistence file and then serves every connection the loop
    accepts.  Each connection gets the strict one-reply-per-message
    protocol of :func:`~repro.common.sharding.serve_shard`: ``("call",
    method, args, kwargs)``, ``("batch", calls)`` via ``run_batch``,
    per-message error capture (an engine exception becomes an
    ``("err", exc)`` reply; an unpicklable reply degrades through
    ``error_factory`` instead of desyncing the stream), and
    connection-scoped ``("stop",)`` — flush persistence, acknowledge,
    close this connection, keep serving the rest.

    :meth:`shutdown` is the graceful exit: stop accepting, let the
    currently-executing request finish (trivially true — requests run on
    the loop, and shutdown *is* loop code), flush each connection's
    buffered replies on close, await every handler, and close the
    engine so its AOF/WAL hits disk.
    """

    def __init__(self, engine_factory, run_batch, error_factory,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._engine_factory = engine_factory
        self._run_batch = run_batch
        self._error_factory = error_factory
        self._requested = (host, port)
        self._server: asyncio.AbstractServer | None = None
        self._engine = None
        self._tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self.connections_served = 0
        #: set each time a connection finishes (powers --once serving)
        self.connection_done = asyncio.Event()
        self.host: str | None = None
        self.port: int | None = None

    async def start(self) -> None:
        """Replay persistence (once) and start accepting connections."""
        self._engine = self._engine_factory()
        self._server = await asyncio.start_server(
            self._handle, self._requested[0], self._requested[1]
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        _set_nodelay(writer)
        self._tasks.add(asyncio.current_task())
        self._writers.add(writer)
        try:
            while True:
                try:
                    message = await async_recv_frame(reader)
                except (EOFError, FrameError, OSError):
                    return  # front vanished or stream rotted: drop it
                kind = message[0]
                if kind == "stop":
                    # connection-scoped: this front is done, others are not
                    _flush_engine(self._engine)
                    await async_send_frame(writer, ("ok", None))
                    return
                try:
                    if kind == "call":
                        _, method, args, kwargs = message
                        reply = ("ok", getattr(self._engine, method)(*args, **kwargs))
                    else:  # "batch"
                        reply = ("ok", self._run_batch(self._engine, message[1]))
                except Exception as exc:
                    reply = ("err", exc)
                try:
                    payload = pickle.dumps(reply)
                except Exception:
                    # unpicklable result/exception: degrade, never desync
                    payload = pickle.dumps(("err", self._error_factory(
                        f"unserialisable reply: {reply!r:.200}"
                    )))
                writer.write(_HEADER.pack(len(payload)) + payload)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    return
        finally:
            self._writers.discard(writer)
            self._tasks.discard(asyncio.current_task())
            writer.close()
            self.connections_served += 1
            self.connection_done.set()

    async def shutdown(self) -> None:
        """Graceful stop: drain in-flight replies, then flush + close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Closing a StreamWriter flushes its buffered replies first, and
        # feeds EOF to the handler blocked on its next recv.
        for writer in list(self._writers):
            writer.close()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._engine is not None:
            self._engine.close()  # flushes AOF/WAL
            self._engine = None


class AsyncShardConnection:
    """Router-side async shard connection: one outstanding exchange.

    The per-connection ``asyncio.Lock`` plays the role of the threaded
    front's per-shard lock — the protocol is strictly one reply per
    message, so concurrent tasks must interleave at message granularity.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        _set_nodelay(writer)
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int, retries: int = 50,
                      delay: float = 0.1) -> "AsyncShardConnection":
        """Connect to a shard server, retrying while it binds/re-accepts."""
        last: Exception | None = None
        for _ in range(retries):
            try:
                reader, writer = await asyncio.open_connection(host, port)
                return cls(reader, writer)
            except OSError as exc:
                last = exc
                await asyncio.sleep(delay)
        raise ConnectionError(
            f"shard server {host}:{port} unreachable after {retries} attempts"
        ) from last

    async def exchange(self, message: tuple) -> tuple:
        """One send + one receive, serialised against concurrent tasks."""
        async with self._lock:
            await async_send_frame(self._writer, message)
            return await async_recv_frame(self._reader)

    async def call(self, method: str, *args, **kwargs):
        """One engine command; raises the shard-side exception on err."""
        status, payload = await self.exchange(("call", method, args, kwargs))
        if status == "err":
            raise payload
        return payload

    async def batch(self, calls: list):
        """One ``(method, args, kwargs)`` batch through ``run_batch``."""
        status, payload = await self.exchange(("batch", calls))
        if status == "err":
            raise payload
        return payload

    async def stop(self) -> None:
        """Connection-scoped stop: flush + goodbye, then close our end."""
        try:
            await self.exchange(("stop",))
        finally:
            await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def async_scatter(requests: list) -> list:
    """Scatter ``(connection, message)`` pairs; gather replies in order.

    The async twin of the threaded router's scatter: every exchange task
    launches before any reply is awaited, so the sub-batches of several
    in-flight scatters interleave on the wire instead of queueing behind
    one another.  Every request gets exactly one reply even when some
    are errors; the first error is raised after the gather completes,
    matching the threaded discipline.
    """
    replies = await asyncio.gather(
        *(conn.exchange(message) for conn, message in requests)
    )
    first_error: Exception | None = None
    payloads = []
    for status, payload in replies:
        if status == "err":
            first_error = first_error or payload
        payloads.append(payload)
    if first_error is not None:
        raise first_error
    return payloads
