"""Shared multi-process shard plumbing: worker loop + front-side router.

Both engines escape the GIL the same way — hash-partition the store
across worker processes, each running a full in-process engine, behind a
front that routes commands and scatter/gathers batches.  minikv grew the
machinery first (PR 4); this module is that machinery hoisted so the
sharded minisql deployment is the *same* implementation with an engine
plugged in, not a parallel copy:

* :func:`serve_shard` — the worker side: the strictly one-reply-per-
  message protocol loop.  Messages are ``("call", method, args, kwargs)``
  (one engine command), ``("batch", [(method, args, kwargs), ...])``
  (executed by the engine-specific ``run_batch`` hook: an engine pipeline
  for minikv, one transaction for minisql), and ``("stop",)`` (flush +
  close + exit).  A worker never sends unsolicited data, so the front can
  always resynchronise by counting replies.
* :class:`ShardRouter` — the front side: worker lifecycle (start,
  crash-respawn-replay-retry, graceful :meth:`~ShardRouter.restart_shard`
  bounce, :meth:`~ShardRouter.close`), per-shard connection locks (one
  outstanding exchange per shard), and the deadlock-free scatter/gather
  (:meth:`~ShardRouter._scatter`: locks in ascending shard order, all
  sends before the first receive, every send matched with exactly one
  receive even when replies are errors).

The protocol is transport-agnostic: anything with ``send``/``recv``/
``close`` carries it.  Three transports exist —

* ``transport="pipe"`` (default): a ``multiprocessing`` duplex pipe to a
  local worker process — the original deployment, byte-identical.
* ``transport="tcp"`` with no addresses: the router still spawns local
  worker processes, but each binds an ephemeral ``127.0.0.1`` port and
  the exchange crosses a real socket (length-prefixed pickled frames,
  :mod:`repro.common.netshard`) — the benchmarkable router-tax config.
* ``transport="tcp"`` with ``addresses``: the workers are **external**
  ``tools/shard_server.py`` processes, possibly on other hosts; the
  router only connects.  "Respawn" becomes "reconnect": the server
  builds a fresh engine per connection (replaying the shard's
  persistence file), so recovery semantics match the pipe transport.

Placement is a consistent-hash ring (:mod:`repro.common.hashring`) over
the **live shard-id set**, not ``hash % N``: ids are allocated once and
never reused, and :meth:`~ShardRouter.add_shard` /
:meth:`~ShardRouter.remove_shard` reshard *online* by streaming only the
ring slots whose owner changes — each slot cut over under a brief
exclusive hold on the topology lock while traffic to every other slot
keeps flowing.  The live topology (ids, id counter, pending migration)
persists next to the data files at ``<base>.topology`` so a crash in the
middle of a migration repairs itself on reopen (the slot move is
copy-before-delete, hence idempotent to re-run).

Engine modules subclass :class:`ShardRouter` with their command surface,
set :attr:`~ShardRouter.worker_target` to a module-level worker function
(so it pickles under the ``spawn`` start method), implement
:meth:`~ShardRouter._shard_config`, and derive their engine-flavoured
:class:`ShardConnectionError` subclass.  Durability is per shard by
construction: each worker's persistence file lives at :func:`shard_path`
(``<base>.shard<i>``) and replays before serving.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading

from .errors import ConfigurationError, ReproError
from .hashring import DEFAULT_VNODES, HashRing, in_slot, plan_migration
from .rwlock import RWLock

#: transports :class:`ShardRouter` accepts
TRANSPORTS = ("pipe", "tcp")


class ShardConnectionError(ReproError):
    """A shard worker could not be reached even after a respawn.

    Engine modules subclass this next to their own error family (e.g.
    ``KVError``) so callers can catch either hierarchy.
    """


def shard_path(base_path: str, index: int) -> str:
    """Per-shard persistence file derived from the deployment's base path."""
    return f"{base_path}.shard{index}"


def topology_path(base_path: str) -> str:
    """The deployment's topology file (live shard ids + migration marker)."""
    return f"{base_path}.topology"


def parse_address(address) -> tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` → a ``(host, int(port))`` pair."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigurationError(
                f"shard address {address!r} is not 'host:port'"
            )
        return host, int(port)
    host, port = address
    return str(host), int(port)


def serve_shard(conn, engine, run_batch, error_factory,
                should_stop=None) -> None:
    """One shard worker's serve loop: strictly one reply per message.

    ``engine`` is the already-constructed in-process engine (its
    constructor replayed this shard's persistence file); ``run_batch``
    maps a ``("batch", calls)`` message to a per-slot result list with
    failures captured per slot; ``error_factory`` builds the engine
    family's exception for a reply that cannot cross the transport.

    ``should_stop`` (optional zero-arg callable) is the graceful-
    shutdown hook: it is polled **between** messages — the current
    request always gets its reply first, then the loop drains out, and
    the ``finally`` closes the engine so its persistence flushes.  Both
    connection flavours (``multiprocessing`` pipes and
    :class:`~repro.common.netshard.SocketConnection`) expose the
    ``poll(timeout)`` this needs.
    """
    try:
        while True:
            if should_stop is not None:
                while not conn.poll(0.2):
                    if should_stop():
                        return  # drained: last reply already sent
            try:
                message = conn.recv()
            except EOFError:
                return  # front vanished; engine.close() still runs below
            kind = message[0]
            if kind == "stop":
                engine.close()
                conn.send(("ok", None))
                return
            try:
                if kind == "call":
                    _, method, args, kwargs = message
                    reply = ("ok", getattr(engine, method)(*args, **kwargs))
                else:  # "batch"
                    reply = ("ok", run_batch(engine, message[1]))
            except Exception as exc:
                reply = ("err", exc)
            try:
                conn.send(reply)
            except Exception:
                # unpicklable result/exception: degrade, never desync
                conn.send(("err", error_factory(
                    f"unserialisable reply: {reply!r:.200}"
                )))
    finally:
        engine.close()
        conn.close()


def _tcp_worker_entry(bootstrap, target, config) -> None:
    """A locally-spawned TCP worker: bind, report the port, serve one front.

    The worker owns one connection for its whole life — when the serve
    loop returns (graceful stop, front EOF, or a desynced stream) the
    process exits, exactly like a pipe worker, so crash recovery stays
    "terminate + respawn + replay" on both transports.
    """
    import socket

    from .netshard import SocketConnection

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    bootstrap.send(listener.getsockname()[1])
    bootstrap.close()
    sock, _peer = listener.accept()
    listener.close()
    target(SocketConnection(sock), config)


class Shard:
    """Front-side handle for one worker: connection + lock (+ process).

    The lock serialises request/response exchanges on the connection —
    one outstanding message per shard — so concurrent client threads
    interleave at message granularity, exactly like stripe locks.
    ``process`` is ``None`` for external (addressed) TCP shards: their
    lifetime belongs to ``tools/shard_server.py``, not the router.
    """

    __slots__ = ("index", "config", "address", "process", "conn", "lock")

    def __init__(self, index: int, config, address=None) -> None:
        self.index = index
        self.config = config
        self.address = address
        self.process = None
        self.conn = None
        self.lock = threading.Lock()


class ShardRouter:
    """Worker lifecycle + ring routing + transport shared by both fronts.

    Subclasses provide :attr:`worker_target` (a module-level function
    taking ``(conn, config)``), :attr:`worker_name` (process-name prefix,
    so leak checks can find strays), :attr:`error_class` (their
    :class:`ShardConnectionError` subclass), and
    :meth:`_shard_config` (the engine config for one shard id).  The
    router is thread-safe: each shard connection carries one exchange at
    a time, fan-outs acquire shard locks in ascending id order (the same
    deadlock-free discipline the in-process stripe locks use), and every
    exchange holds the topology lock shared — so a reshard's per-slot
    exclusive hold briefly drains traffic, cuts one slot over, and lets
    traffic flow again.
    """

    #: module-level worker function, ``staticmethod`` in the subclass
    worker_target = None
    #: process-name prefix: workers are named ``<worker_name>-<index>``
    worker_name = "shard"
    #: the engine-flavoured :class:`ShardConnectionError` subclass
    error_class = ShardConnectionError

    def __init__(self, shard_count: int, *, start_method: str | None = None,
                 transport: str = "pipe", addresses=None,
                 ring_vnodes: int | None = None,
                 base_path: str | None = None) -> None:
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown shard transport {transport!r}; choose from {TRANSPORTS}"
            )
        if addresses is not None and transport != "tcp":
            raise ConfigurationError(
                "shard_addresses requires transport='tcp'"
            )
        if start_method is None:
            # fork starts workers in milliseconds and is available on the
            # platforms we target; spawn is the portable fallback
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._transport = transport
        self._closed = False
        #: shared by every exchange, held exclusively per reshard slot
        self._topology_lock = RWLock()
        #: serialises add_shard/remove_shard against each other
        self._admin_lock = threading.Lock()
        #: slots already cut over mid-reshard: ``(lo, hi, new_owner)``
        self._moved_slots: list[tuple[int, int, int]] = []
        self._topology_path = (
            topology_path(base_path) if base_path is not None else None
        )

        doc = self._load_topology()
        if doc is not None:
            # the persisted topology wins over the config: a resharded
            # deployment's id set (and its ring's vnode count — placement
            # is a fact about the data files) came from real migrations
            shard_ids = [int(i) for i in doc["shard_ids"]]
            self._next_id = int(doc["next_id"])
            self._ring_vnodes = int(doc["vnodes"])
            saved = doc.get("addresses") or {}
            self._addresses = {
                int(i): parse_address(a) for i, a in saved.items()
            } or None
            pending = doc.get("migration")
        else:
            shard_ids = list(range(shard_count))
            self._next_id = shard_count
            self._ring_vnodes = (
                ring_vnodes if ring_vnodes is not None else DEFAULT_VNODES
            )
            if addresses is not None:
                addresses = [parse_address(a) for a in addresses]
                if len(addresses) != shard_count:
                    raise ConfigurationError(
                        f"shard_addresses has {len(addresses)} entries for "
                        f"{shard_count} shards"
                    )
                self._addresses = dict(zip(shard_ids, addresses))
            else:
                self._addresses = None
            pending = None

        start_ids = sorted(
            set(shard_ids)
            | (set(pending["from"]) | set(pending["to"]) if pending else set())
        )
        self._shards: dict[int, Shard] = {}
        for sid in start_ids:
            shard = Shard(sid, self._shard_config(sid),
                          (self._addresses or {}).get(sid))
            self._start(shard)
            self._shards[sid] = shard
        self._ring = HashRing(
            pending["from"] if pending else shard_ids, self._ring_vnodes
        )
        if pending:
            self._repair_migration(
                [int(i) for i in pending["from"]],
                [int(i) for i in pending["to"]],
            )

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _shard_config(self, shard_id: int):
        """The engine config shard ``shard_id``'s worker runs."""
        raise NotImplementedError

    def _shard_files(self, shard_id: int) -> list[str]:
        """Persistence files owned by one shard (unlinked after removal)."""
        return []

    def _on_shard_added(self, shard_id: int) -> None:
        """Bootstrap a freshly-added empty shard (e.g. clone the catalog)."""

    def _before_shard_removed(self, shard_id: int, surviving_ids) -> None:
        """Move any non-ring-placed state off a departing shard."""

    # ------------------------------------------------------------------
    # Topology persistence
    # ------------------------------------------------------------------

    def _load_topology(self) -> dict | None:
        if self._topology_path is None or not os.path.exists(self._topology_path):
            return None
        with open(self._topology_path, encoding="utf-8") as handle:
            return json.load(handle)

    def _save_topology(self, shard_ids, migration: dict | None) -> None:
        if self._topology_path is None:
            return
        doc = {
            "version": 1,
            "shard_ids": sorted(int(i) for i in shard_ids),
            "next_id": self._next_id,
            "vnodes": self._ring_vnodes,
            "addresses": (
                {str(i): f"{h}:{p}" for i, (h, p) in self._addresses.items()}
                if self._addresses else None
            ),
            "migration": migration,
        }
        tmp = f"{self._topology_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._topology_path)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _start(self, shard: Shard) -> None:
        if self._transport == "tcp":
            from .netshard import connect_shard

            if shard.address is not None:
                # external server: connecting *is* starting (the server
                # builds a fresh engine per accepted connection)
                shard.process = None
                shard.conn = connect_shard(*shard.address)
                return
            bootstrap_recv, bootstrap_send = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_tcp_worker_entry,
                args=(bootstrap_send, type(self).worker_target, shard.config),
                name=f"{self.worker_name}-{shard.index}",
                daemon=True,
            )
            process.start()
            bootstrap_send.close()
            try:
                port = bootstrap_recv.recv()
            except EOFError:
                process.join(timeout=5)
                raise self.error_class(
                    f"shard {shard.index} tcp worker exited before binding"
                ) from None
            finally:
                bootstrap_recv.close()
            shard.process = process
            shard.conn = connect_shard("127.0.0.1", port)
            return
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=type(self).worker_target,
            args=(child_conn, shard.config),
            name=f"{self.worker_name}-{shard.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end: worker death -> EOF
        shard.process = process
        shard.conn = parent_conn

    def _respawn(self, shard: Shard) -> None:
        """Replace a dead worker; the replacement replays its shard's log.

        For an external TCP shard this is a *reconnect*: the server
        accepts the next connection with a freshly-constructed engine,
        which replayed the shard's persistence file — the same recovery
        the local respawn performs.
        """
        if self._closed:
            # Never resurrect workers after close(): the deployment's
            # data directory may already be gone, and a silently
            # respawned empty shard would answer wrongly instead of
            # failing loudly.
            raise self.error_class("sharded engine is closed")
        try:
            shard.conn.close()
        except OSError:
            pass
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=5)
        self._start(shard)

    def restart_shard(self, index: int) -> None:
        """Deliberately bounce one worker (stop + respawn + log replay).

        Unlike crash recovery, a deliberate bounce asks the worker to
        stop gracefully first, so it flushes its persistence buffer —
        under an ``everysec`` flush policy a hard kill here would
        silently drop acknowledged writes still sitting in the buffer.
        """
        with self._topology_lock.read_locked():
            shard = self._shards[index]
            with shard.lock:
                try:
                    shard.conn.send(("stop",))
                    shard.conn.recv()
                except (EOFError, OSError):
                    pass  # already dead: fall through to the crash path
                self._respawn(shard)

    def _stop_shard(self, shard: Shard) -> None:
        """Graceful stop (flush + close) and reap, one shard."""
        with shard.lock:
            try:
                shard.conn.send(("stop",))
                shard.conn.recv()
            except (EOFError, OSError):
                pass
            try:
                shard.conn.close()
            except OSError:
                pass
        if shard.process is not None:
            shard.process.join(timeout=5)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _exchange(self, shard: Shard, message: tuple) -> tuple:
        """One send+receive on ``shard``'s connection (caller holds its lock).

        Raises ``EOFError``/``OSError`` on transport failure — the
        caller decides the recovery policy.
        """
        if self._closed:
            raise self.error_class("sharded engine is closed")
        shard.conn.send(message)
        return shard.conn.recv()

    def _exchange_after_respawn(self, shard: Shard, message: tuple) -> tuple:
        """Crash recovery: respawn (log replay) + one retried exchange.

        The retry makes commands at-least-once across a worker crash;
        a second transport failure is surfaced as an ``("err", ...)``
        reply for the caller to raise.
        """
        self._respawn(shard)
        try:
            return self._exchange(shard, message)
        except (EOFError, OSError):
            return ("err", self.error_class(
                f"shard {shard.index} worker died again on the retried "
                f"{message[0]!r}"
            ))

    def _request(self, shard: Shard, message: tuple):
        """One exchange with crash recovery (caller holds ``shard.lock``)."""
        try:
            status, payload = self._exchange(shard, message)
        except (EOFError, OSError):
            status, payload = self._exchange_after_respawn(shard, message)
        if status == "err":
            raise payload
        return payload

    def _rpc(self, shard_id: int, method: str, *args, **kwargs):
        """One engine command on one shard, **without** the topology lock.

        Only the reshard machinery calls this directly (it already holds
        the topology lock exclusively); everything else goes through
        :meth:`_call` / :meth:`_call_point`.
        """
        shard = self._shards[shard_id]
        with shard.lock:
            return self._request(shard, ("call", method, args, kwargs))

    def _call(self, index: int, method: str, *args, **kwargs):
        """One engine command on one shard (lock held for the exchange)."""
        with self._topology_lock.read_locked():
            return self._rpc(index, method, *args, **kwargs)

    def _call_point(self, point: int, method: str, *args, **kwargs):
        """A keyed command routed by ring position *under* the topology
        lock, so the owner cannot change between routing and exchange —
        this is what makes a reshard's per-slot cutover linearizable for
        the single-key surface."""
        with self._topology_lock.read_locked():
            return self._rpc(self._owner(point), method, *args, **kwargs)

    def _owner(self, point: int) -> int:
        """The live owner of a ring position (mid-reshard overlay aware)."""
        for lo, hi, dst in self._moved_slots:
            if in_slot(point, lo, hi):
                return dst
        return self._ring.owner(point)

    def _scatter(self, requests: list[tuple[int, tuple]]) -> dict[int, object]:
        """Send one message per shard, gather every reply; parallel workers.

        Locks are taken in ascending shard order (deadlock-free); all
        sends complete before the first receive, so the involved workers
        execute concurrently.  Every send is matched with exactly one
        receive even when a reply is an error — the connections stay in
        sync — and the first error is raised after the gather completes.
        """
        with self._topology_lock.read_locked():
            return self._scatter_unlocked(requests)

    def _scatter_unlocked(self, requests: list[tuple[int, tuple]]) -> dict[int, object]:
        if self._closed:
            raise self.error_class("sharded engine is closed")
        requests = sorted(requests)
        shards = [self._shards[index] for index, _ in requests]
        for shard in shards:
            shard.lock.acquire()
        try:
            sent: list[tuple[int, Shard, tuple]] = []
            gathered: dict[int, object] = {}
            first_error: Exception | None = None
            for (index, message), shard in zip(requests, shards):
                try:
                    shard.conn.send(message)
                except (EOFError, OSError):
                    try:
                        self._respawn(shard)
                        shard.conn.send(message)
                    except (EOFError, OSError):
                        # keep going: shards already sent to are still
                        # owed exactly one reply each, and must get
                        # their receive before anything raises
                        first_error = first_error or self.error_class(
                            f"shard {shard.index} worker died again on the "
                            f"retried {message[0]!r}"
                        )
                        continue
                sent.append((index, shard, message))
            for index, shard, message in sent:
                try:
                    status, payload = shard.conn.recv()
                except (EOFError, OSError):
                    status, payload = self._exchange_after_respawn(shard, message)
                if status == "err":
                    first_error = first_error or payload
                else:
                    gathered[index] = payload
            if first_error is not None:
                raise first_error
            return gathered
        finally:
            for shard in reversed(shards):
                shard.lock.release()

    def _fanout(self, method: str, args: tuple = (),
                kwargs: dict | None = None) -> dict[int, object]:
        """Run one command on every live shard; per-shard results by id."""
        with self._topology_lock.read_locked():
            return self._scatter_unlocked([
                (index, ("call", method, args, kwargs or {}))
                for index in sorted(self._shards)
            ])

    # ------------------------------------------------------------------
    # Online resharding
    # ------------------------------------------------------------------

    def add_shard(self, address=None) -> dict:
        """Grow the deployment by one shard, migrating only ~1/N of keys.

        Allocates a never-reused shard id, starts its worker (or, on the
        addressed TCP transport, connects to ``address``), persists a
        migration marker, then streams every ring slot whose owner
        changes — each slot cut over under a brief exclusive hold while
        traffic to the rest of the ring keeps flowing.  Returns movement
        stats (``keys_moved``, ``slots_moved``, ``shard_id``) — the
        fig12m experiment's measurement.
        """
        with self._admin_lock:
            if self._closed:
                raise self.error_class("sharded engine is closed")
            old_ids = sorted(self._shards)
            new_id = self._next_id
            self._next_id += 1
            new_ids = old_ids + [new_id]
            if self._addresses is not None:
                if address is None:
                    raise ConfigurationError(
                        "this deployment runs addressed tcp shards: "
                        "add_shard needs the new shard server's address"
                    )
                self._addresses[new_id] = parse_address(address)
            elif address is not None:
                raise ConfigurationError(
                    "address given but this deployment spawns its own workers"
                )
            self._save_topology(
                old_ids, migration={"from": old_ids, "to": new_ids}
            )
            shard = Shard(new_id, self._shard_config(new_id),
                          (self._addresses or {}).get(new_id))
            with self._topology_lock.write_locked():
                self._start(shard)
                self._shards[new_id] = shard
            self._on_shard_added(new_id)
            stats = self._reshard(old_ids, new_ids)
            self._save_topology(new_ids, migration=None)
            stats["shard_id"] = new_id
            return stats

    def remove_shard(self, shard_id: int) -> dict:
        """Drain one shard onto the ring's survivors, then retire it.

        The departing shard's slots stream to their new owners (copy,
        cut over, no need to delete from a worker that is about to be
        stopped), the worker stops gracefully, and its persistence files
        are unlinked — the id is never reused, so a stale file could
        never be resurrected anyway.
        """
        with self._admin_lock:
            if self._closed:
                raise self.error_class("sharded engine is closed")
            old_ids = sorted(self._shards)
            if shard_id not in self._shards:
                raise self.error_class(f"no such shard id {shard_id}")
            if len(old_ids) == 1:
                raise self.error_class("cannot remove the last shard")
            new_ids = [i for i in old_ids if i != shard_id]
            self._save_topology(
                old_ids, migration={"from": old_ids, "to": new_ids}
            )
            self._before_shard_removed(shard_id, new_ids)
            stats = self._reshard(old_ids, new_ids)
            with self._topology_lock.write_locked():
                shard = self._shards.pop(shard_id)
            self._stop_shard(shard)
            if self._addresses is not None:
                self._addresses.pop(shard_id, None)
            self._save_topology(new_ids, migration=None)
            for path in self._shard_files(shard_id):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            stats["shard_id"] = shard_id
            return stats

    def _reshard(self, old_ids, new_ids) -> dict:
        """Stream every changed ring slot, one brief cutover at a time."""
        old_ring = HashRing(old_ids, self._ring_vnodes)
        new_ring = HashRing(new_ids, self._ring_vnodes)
        tasks = plan_migration(old_ring, new_ring)
        survivors = set(new_ids)
        keys_moved = slots_moved = 0
        for lo, hi, src, dst in tasks:
            with self._topology_lock.write_locked():
                keys_moved += self._migrate_slot(
                    lo, hi, src, dst, drop=src in survivors
                )
                self._moved_slots.append((lo, hi, dst))
            slots_moved += 1
        with self._topology_lock.write_locked():
            self._ring = new_ring
            self._moved_slots = []
        return {"keys_moved": keys_moved, "slots_moved": slots_moved}

    def _migrate_slot(self, lo: int, hi: int, src: int, dst: int,
                      drop: bool = True) -> int:
        """Move one ring slot's keys; copy-before-delete, so re-runnable.

        The dump reads the source engine's *live* state under its own
        locks — acknowledged writes that only just reached the source's
        AOF/WAL buffer are included by construction, which is the
        catch-up step — and the apply goes through the destination's
        public write surface, so the destination's own log records the
        arrivals durably before the source forgets them.
        """
        payload = self._rpc(src, "migrate_dump", lo, hi)
        moved = self._rpc(dst, "migrate_apply", payload)
        if drop and moved:
            self._rpc(src, "migrate_drop", payload)
        return moved

    def _repair_migration(self, from_ids, to_ids) -> None:
        """Finish a migration a crash interrupted (constructor path).

        Every slot move is copy-before-delete and every apply is
        delete-before-insert, so re-running the whole plan converges on
        the target placement no matter where the crash fell.
        """
        for sid in sorted(set(to_ids) - set(from_ids)):
            self._on_shard_added(sid)
        for sid in sorted(set(from_ids) - set(to_ids)):
            self._before_shard_removed(sid, to_ids)
        self._reshard(from_ids, to_ids)
        for sid in sorted(set(from_ids) - set(to_ids)):
            shard = self._shards.pop(sid)
            self._stop_shard(shard)
            if self._addresses is not None:
                self._addresses.pop(sid, None)
            for path in self._shard_files(sid):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        self._save_topology(to_ids, migration=None)

    # ------------------------------------------------------------------
    # Introspection + lifecycle
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """The live shard ids, ascending (ids are never reused)."""
        return tuple(sorted(self._shards))

    @property
    def _anchor_id(self) -> int:
        """The smallest live id: home for state that is not ring-placed."""
        return min(self._shards)

    def close(self) -> None:
        """Stop every worker (each flushes + closes its persistence first)."""
        if self._closed:
            return
        with self._topology_lock.write_locked():
            if self._closed:
                return
            self._closed = True
        for index in sorted(self._shards):
            self._stop_shard(self._shards[index])

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()
