"""Shared multi-process shard plumbing: worker loop + front-side router.

Both engines escape the GIL the same way — hash-partition the store
across worker processes, each running a full in-process engine, behind a
front that routes commands and scatter/gathers batches.  minikv grew the
machinery first (PR 4); this module is that machinery hoisted so the
sharded minisql deployment is the *same* implementation with an engine
plugged in, not a parallel copy:

* :func:`serve_shard` — the worker side: the strictly one-reply-per-
  message protocol loop.  Messages are ``("call", method, args, kwargs)``
  (one engine command), ``("batch", [(method, args, kwargs), ...])``
  (executed by the engine-specific ``run_batch`` hook: an engine pipeline
  for minikv, one transaction for minisql), and ``("stop",)`` (flush +
  close + exit).  A worker never sends unsolicited data, so the front can
  always resynchronise by counting replies.
* :class:`ShardRouter` — the front side: worker lifecycle (start,
  crash-respawn-replay-retry, graceful :meth:`~ShardRouter.restart_shard`
  bounce, :meth:`~ShardRouter.close`), per-shard pipe locks (one
  outstanding exchange per shard), and the deadlock-free scatter/gather
  (:meth:`~ShardRouter._scatter`: locks in ascending shard order, all
  sends before the first receive, every send matched with exactly one
  receive even when replies are errors).

Engine modules subclass :class:`ShardRouter` with their command surface,
set :attr:`~ShardRouter.worker_target` to a module-level worker function
(so it pickles under the ``spawn`` start method), and derive their
engine-flavoured :class:`ShardConnectionError` subclass.  Durability is
per shard by construction: each worker's persistence file lives at
:func:`shard_path` (``<base>.shard<i>``) and replays before serving.
"""

from __future__ import annotations

import multiprocessing
import threading

from .errors import ReproError


class ShardConnectionError(ReproError):
    """A shard worker could not be reached even after a respawn.

    Engine modules subclass this next to their own error family (e.g.
    ``KVError``) so callers can catch either hierarchy.
    """


def shard_path(base_path: str, index: int) -> str:
    """Per-shard persistence file derived from the deployment's base path."""
    return f"{base_path}.shard{index}"


def serve_shard(conn, engine, run_batch, error_factory) -> None:
    """One shard worker's serve loop: strictly one reply per message.

    ``engine`` is the already-constructed in-process engine (its
    constructor replayed this shard's persistence file); ``run_batch``
    maps a ``("batch", calls)`` message to a per-slot result list with
    failures captured per slot; ``error_factory`` builds the engine
    family's exception for a reply that cannot cross the pipe.
    """
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return  # front vanished; engine.close() still runs below
            kind = message[0]
            if kind == "stop":
                engine.close()
                conn.send(("ok", None))
                return
            try:
                if kind == "call":
                    _, method, args, kwargs = message
                    reply = ("ok", getattr(engine, method)(*args, **kwargs))
                else:  # "batch"
                    reply = ("ok", run_batch(engine, message[1]))
            except Exception as exc:
                reply = ("err", exc)
            try:
                conn.send(reply)
            except Exception:
                # unpicklable result/exception: degrade, never desync
                conn.send(("err", error_factory(
                    f"unserialisable reply: {reply!r:.200}"
                )))
    finally:
        engine.close()
        conn.close()


class Shard:
    """Front-side handle for one worker: process + duplex pipe + lock.

    The lock serialises request/response exchanges on the pipe — one
    outstanding message per shard — so concurrent client threads
    interleave at message granularity, exactly like stripe locks.
    """

    __slots__ = ("index", "config", "process", "conn", "lock")

    def __init__(self, index: int, config) -> None:
        self.index = index
        self.config = config
        self.process = None
        self.conn = None
        self.lock = threading.Lock()


class ShardRouter:
    """Worker lifecycle + routing transport shared by both shard fronts.

    Subclasses provide :attr:`worker_target` (a module-level function
    taking ``(conn, config)``), :attr:`worker_name` (process-name prefix,
    so leak checks can find strays), :attr:`error_class` (their
    :class:`ShardConnectionError` subclass), and the per-shard configs.
    The router is thread-safe: each shard pipe carries one exchange at a
    time, and fan-outs acquire shard locks in ascending index order — the
    same deadlock-free discipline the in-process stripe locks use.
    """

    #: module-level worker function, ``staticmethod`` in the subclass
    worker_target = None
    #: process-name prefix: workers are named ``<worker_name>-<index>``
    worker_name = "shard"
    #: the engine-flavoured :class:`ShardConnectionError` subclass
    error_class = ShardConnectionError

    def __init__(self, shard_configs, start_method: str | None = None) -> None:
        if start_method is None:
            # fork starts workers in milliseconds and is available on the
            # platforms we target; spawn is the portable fallback
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._nshards = len(shard_configs)
        self._closed = False
        self._shards = [
            Shard(index, config) for index, config in enumerate(shard_configs)
        ]
        for shard in self._shards:
            self._start(shard)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _start(self, shard: Shard) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=type(self).worker_target,
            args=(child_conn, shard.config),
            name=f"{self.worker_name}-{shard.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end: worker death -> EOF
        shard.process = process
        shard.conn = parent_conn

    def _respawn(self, shard: Shard) -> None:
        """Replace a dead worker; the replacement replays its shard's log."""
        if self._closed:
            # Never resurrect workers after close(): the deployment's
            # data directory may already be gone, and a silently
            # respawned empty shard would answer wrongly instead of
            # failing loudly.
            raise self.error_class("sharded engine is closed")
        try:
            shard.conn.close()
        except OSError:
            pass
        if shard.process.is_alive():
            shard.process.terminate()
        shard.process.join(timeout=5)
        self._start(shard)

    def restart_shard(self, index: int) -> None:
        """Deliberately bounce one worker (stop + respawn + log replay).

        Unlike crash recovery, a deliberate bounce asks the worker to
        stop gracefully first, so it flushes its persistence buffer —
        under an ``everysec`` flush policy a hard kill here would
        silently drop acknowledged writes still sitting in the buffer.
        """
        shard = self._shards[index]
        with shard.lock:
            try:
                shard.conn.send(("stop",))
                shard.conn.recv()
            except (EOFError, OSError):
                pass  # already dead: fall through to the crash path
            self._respawn(shard)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _exchange(self, shard: Shard, message: tuple) -> tuple:
        """One send+receive on ``shard``'s pipe (caller holds its lock).

        Raises ``EOFError``/``OSError`` on transport failure — the
        caller decides the recovery policy.
        """
        if self._closed:
            raise self.error_class("sharded engine is closed")
        shard.conn.send(message)
        return shard.conn.recv()

    def _exchange_after_respawn(self, shard: Shard, message: tuple) -> tuple:
        """Crash recovery: respawn (log replay) + one retried exchange.

        The retry makes commands at-least-once across a worker crash;
        a second transport failure is surfaced as an ``("err", ...)``
        reply for the caller to raise.
        """
        self._respawn(shard)
        try:
            return self._exchange(shard, message)
        except (EOFError, OSError):
            return ("err", self.error_class(
                f"shard {shard.index} worker died again on the retried "
                f"{message[0]!r}"
            ))

    def _request(self, shard: Shard, message: tuple):
        """One exchange with crash recovery (caller holds ``shard.lock``)."""
        try:
            status, payload = self._exchange(shard, message)
        except (EOFError, OSError):
            status, payload = self._exchange_after_respawn(shard, message)
        if status == "err":
            raise payload
        return payload

    def _call(self, index: int, method: str, *args, **kwargs):
        """One engine command on one shard (lock held for the exchange)."""
        shard = self._shards[index]
        with shard.lock:
            return self._request(shard, ("call", method, args, kwargs))

    def _scatter(self, requests: list[tuple[int, tuple]]) -> dict[int, object]:
        """Send one message per shard, gather every reply; parallel workers.

        Locks are taken in ascending shard order (deadlock-free); all
        sends complete before the first receive, so the involved workers
        execute concurrently.  Every send is matched with exactly one
        receive even when a reply is an error — the pipes stay in sync —
        and the first error is raised after the gather completes.
        """
        if self._closed:
            raise self.error_class("sharded engine is closed")
        requests = sorted(requests)
        shards = [self._shards[index] for index, _ in requests]
        for shard in shards:
            shard.lock.acquire()
        try:
            sent: list[tuple[int, Shard, tuple]] = []
            gathered: dict[int, object] = {}
            first_error: Exception | None = None
            for (index, message), shard in zip(requests, shards):
                try:
                    shard.conn.send(message)
                except (EOFError, OSError):
                    try:
                        self._respawn(shard)
                        shard.conn.send(message)
                    except (EOFError, OSError):
                        # keep going: shards already sent to are still
                        # owed exactly one reply each, and must get
                        # their receive before anything raises
                        first_error = first_error or self.error_class(
                            f"shard {shard.index} worker died again on the "
                            f"retried {message[0]!r}"
                        )
                        continue
                sent.append((index, shard, message))
            for index, shard, message in sent:
                try:
                    status, payload = shard.conn.recv()
                except (EOFError, OSError):
                    status, payload = self._exchange_after_respawn(shard, message)
                if status == "err":
                    first_error = first_error or payload
                else:
                    gathered[index] = payload
            if first_error is not None:
                raise first_error
            return gathered
        finally:
            for shard in reversed(shards):
                shard.lock.release()

    def _fanout(self, method: str, args: tuple = (),
                kwargs: dict | None = None) -> dict[int, object]:
        """Run one command on every shard; per-shard results by index."""
        return self._scatter([
            (index, ("call", method, args, kwargs or {}))
            for index in range(self._nshards)
        ])

    # ------------------------------------------------------------------
    # Introspection + lifecycle
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._nshards

    def close(self) -> None:
        """Stop every worker (each flushes + closes its persistence first)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            with shard.lock:
                try:
                    shard.conn.send(("stop",))
                    shard.conn.recv()
                except (EOFError, OSError):
                    pass
                try:
                    shard.conn.close()
                except OSError:
                    pass
            shard.process.join(timeout=5)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()
