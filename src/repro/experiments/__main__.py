"""CLI for the experiment harnesses.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments all        # run everything
    python -m repro.experiments fig3a fig6 # run a subset

Exits non-zero if any experiment's shape checks fail.
"""

from __future__ import annotations

import sys
import time

from . import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    if not argv:
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            print(f"  {name}")
        print("\nrun with: python -m repro.experiments <name...|all>")
        return 0
    names = list(ALL_EXPERIMENTS) if argv == ["all"] else argv
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"choose from {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    failures = 0
    for name in names:
        started = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"({elapsed:.1f}s)\n")
        if not result.shape_ok:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) failed their shape checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
