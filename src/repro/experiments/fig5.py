"""Figure 5 + Table 3 — GDPRbench on compliant Redis and PostgreSQL.

The paper loads 100K personal records and runs 10K operations for each of
the four GDPRbench workloads against (a) compliant Redis, (b) compliant
PostgreSQL, and (c) PostgreSQL with secondary indices on all metadata.
Findings: the processor workload is fastest (heavy key-based skew), the
controller slowest; PostgreSQL is an order of magnitude faster than Redis;
metadata indices improve PostgreSQL further; and (Table 3) the space
factor is 3.5x by content, rising to ~5.95x with all metadata indexed.
"""

from __future__ import annotations

from repro.bench.metrics import SpaceReport, space_report
from repro.bench.records import RecordCorpusConfig
from repro.bench.session import GDPRBenchConfig, GDPRBenchSession
from repro.clients.base import FeatureSet

from .base import ExperimentResult

CONFIGS = (
    ("redis", False),
    ("postgres", False),
    ("postgres-metadata-index", True),
)

WORKLOAD_ORDER = ("controller", "customer", "processor", "regulator")


def run_config(
    label: str,
    indexed: bool,
    records: int,
    operations: int,
    threads: int,
    seed: int,
) -> tuple[dict, SpaceReport]:
    engine = "redis" if label == "redis" else "postgres"
    config = GDPRBenchConfig(
        engine=engine,
        features=FeatureSet.full(metadata_indexing=indexed),
        corpus=RecordCorpusConfig(record_count=records, user_count=max(10, records // 10)),
        operation_count=operations,
        threads=threads,
        seed=seed,
    )
    with GDPRBenchSession(config) as session:
        session.load()
        space = space_report(session.client)
        uses_index = False
        if engine == "postgres":
            from repro.minisql.expr import Cmp
            plan = session.client.db.explain("personal_records", Cmp("usr", "=", "u0"))
            uses_index = plan.startswith("IndexScan")
        reports = {name: session.run(name, measure_space=False) for name in WORKLOAD_ORDER}
        times = {name: r.completion_time_s for name, r in reports.items()}
        correctness = {name: r.correctness_pct for name, r in reports.items()}
    return {"times": times, "correctness": correctness, "uses_index": uses_index}, space


def run(
    records: int = 4000,
    operations: int = 300,
    threads: int = 8,
    seed: int = 11,
) -> ExperimentResult:
    rows = []
    times_by_config: dict = {}
    spaces: dict = {}
    index_usage: dict = {}
    for label, indexed in CONFIGS:
        result, space = run_config(label, indexed, records, operations, threads, seed)
        times_by_config[label] = result["times"]
        spaces[label] = space
        index_usage[label] = result["uses_index"]
        row = {"config": label}
        for name in WORKLOAD_ORDER:
            row[f"{name}_s"] = round(result["times"][name], 3)
        row["min_correct_pct"] = round(min(result["correctness"].values()), 2)
        row["space_factor"] = round(space.space_factor, 2)
        rows.append(row)

    redis = times_by_config["redis"]
    pg = times_by_config["postgres"]
    pg_idx = times_by_config["postgres-metadata-index"]
    redis_total = sum(redis.values())
    pg_total = sum(pg.values())
    pg_idx_total = sum(pg_idx.values())
    fastest_two = sorted(redis.values())[:2]
    checks = [
        # The paper reports processor fastest with all others 2-4x slower;
        # at laptop scale processor/customer are within noise of each other
        # (both are ~20% O(n) operations), so the robust claims checked are
        # processor-among-fastest and controller-clearly-slowest.
        ("Redis: processor is among the two fastest workloads",
         redis["processor"] <= fastest_two[-1] + 1e-9),
        ("Redis: controller is the slowest workload",
         redis["controller"] >= max(redis.values()) - 1e-9),
        ("Redis: controller is multiple-x slower than processor (paper: 2-4x)",
         redis["controller"] >= 2 * redis["processor"]),
        ("PostgreSQL beats Redis overall (paper: order of magnitude)",
         pg_total < redis_total / 2),
        # The paper reports index-driven improvement on all workloads (with
        # the controller gain partly annulled by index maintenance).  At
        # laptop scale the absolute read-side saving sits inside run-to-run
        # noise, so the checks are: the indexed configuration really does
        # serve metadata queries from indices, and it is not slower beyond
        # noise.  The *scaling* benefit of the indices is asserted by the
        # Figure 8 experiment, where it is unambiguous.
        ("indexed configuration serves metadata queries via index scans",
         index_usage["postgres-metadata-index"] and not index_usage["postgres"]),
        ("indexed read-side completion within noise of (or better than) baseline",
         (pg_idx["customer"] + pg_idx["processor"] + pg_idx["regulator"])
         < 1.2 * (pg["customer"] + pg["processor"] + pg["regulator"])),
        ("all configurations pass correctness (>= 99%)",
         all(row["min_correct_pct"] >= 99.0 for row in rows)),
        ("Table 3: default space factor exceeds 3x (metadata explosion)",
         spaces["redis"].space_factor > 3.0 and spaces["postgres"].space_factor > 3.0),
        ("Table 3: indexing all metadata raises the space factor",
         spaces["postgres-metadata-index"].space_factor
         > spaces["postgres"].space_factor * 1.3),
    ]
    return ExperimentResult(
        experiment="fig5",
        title="GDPRbench completion time per workload (plus Table 3 space factors)",
        paper_expectation=(
            "processor fastest / controller slowest on Redis; PostgreSQL an order "
            "of magnitude faster than Redis; metadata indices improve PostgreSQL "
            "further; space factor 3.5x default, 5.95x with all metadata indexed"
        ),
        rows=rows,
        shape_checks=checks,
    )
