"""Figures 7 and 8 — effect of scale on traditional vs GDPR workloads.

The experiment models a company acquiring new customers: the database
grows, but the benchmark issues the *same number of operations* about the
original customers at every scale.

* Figure 7a/8a: YCSB workload C (100% point reads) — completion time stays
  flat across orders of magnitude of DB growth on both engines.
* Figure 7b: GDPRbench customer workload on Redis — completion time grows
  linearly with DB size, because every metadata-conditioned query is O(n).
* Figure 8b: same on PostgreSQL with metadata indices — growth is muted
  (index scans), though index maintenance still shows at larger scales.
"""

from __future__ import annotations

import os
import threading

from repro.bench import ycsb as ycsb_mod
from repro.bench.gdpr_workloads import CUSTOMER, make_operations
from repro.bench.records import RecordCorpusConfig, generate_corpus
from repro.bench.runtime import run_thread_sweep, run_workload
from repro.bench.session import YCSBSession, YCSBSessionConfig
from repro.bench.ycsb import YCSBConfig
from repro.clients import make_client
from repro.clients.base import FeatureSet
from repro.minisql.expr import Cmp

from .base import ExperimentResult

DEFAULT_YCSB_SCALES = (1000, 4000, 16000)
DEFAULT_GDPR_SCALES = (500, 1000, 2000, 4000)

#: The two Redis execution models compared by the thread-scaling sweep:
#: the paper's single event loop vs the striped + pipelined hot path.
REDIS_SCALING_CONFIGS = (
    ("single-lock", {"stripes": 1}, 1),
    ("striped+pipelined", {"stripes": 16}, 128),
)

#: The three minisql execution models: the seed's single global lock,
#: per-table reader-writer locking + transaction-batched statements, and
#: MVCC snapshot reads (lock-free readers, writer-only table locks).
SQL_SCALING_CONFIGS = (
    ("global-lock", {"locking": "global"}, 1),
    ("rw+batched", {"locking": "table-rw"}, 128),
    ("mvcc+batched", {"locking": "mvcc"}, 128),
)

#: The shard-count sweep (fig10s): the in-process engine vs the
#: multi-process sharded deployment at 2 and 4 worker processes.  Every
#: point uses the same batch size so the sweep isolates process
#: parallelism — the pipelining win is PR 1's, already banked.
REDIS_SHARD_CONFIGS = (
    ("1-shard(in-process)", {"shards": 1, "stripes": 1}, 128),
    ("2-shards", {"shards": 2}, 128),
    ("4-shards", {"shards": 4}, 128),
)

#: The SQL twin (fig11q): the in-process Database facade vs the
#: multi-process sharded minisql deployment, same batch size everywhere
#: so the sweep isolates process parallelism — statement batching is
#: PR 2's win, already banked.
SQL_SHARD_CONFIGS = (
    ("1-shard(in-process)", {"shards": 1}, 128),
    ("2-shards", {"shards": 2}, 128),
    ("4-shards", {"shards": 4}, 128),
)

#: CPU-tiered shard-scaling floor, shared by fig10s and the throughput
#: regression harness (one definition, no drift): process sharding buys
#: parallelism, so the asserted minimum depends on the cores available.
#: Every GitHub-hosted CI runner has >= 4 vCPUs and asserts the full
#: 2x; a single-core host cannot parallelise anything, so there the
#: floor only bounds the shard router's IPC tax (>= 0.6x of the
#: in-process engine).
SHARD_FLOOR_TIERS = ((4, 2.0), (2, 1.2), (1, 0.6))


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def shard_floor_min(cores: int | None = None) -> float:
    """The asserted shard-scaling minimum for a host with ``cores``."""
    if cores is None:
        cores = usable_cores()
    return next(floor for tier, floor in SHARD_FLOOR_TIERS if cores >= tier)


def ycsb_c_completion(engine: str, record_count: int, operations: int,
                      threads: int, seed: int) -> float:
    """Seconds to run ``operations`` point reads at a given DB size."""
    config = YCSBSessionConfig(
        engine=engine,
        features=FeatureSet.full(metadata_indexing=(engine == "postgres")),
        ycsb=YCSBConfig(record_count=record_count, operation_count=operations, seed=seed),
        threads=threads,
    )
    with YCSBSession(config) as session:
        session.load()
        report = session.run("C")
        return report.completion_time_s


def gdpr_customer_completion(engine: str, record_count: int, operations: int,
                             threads: int, seed: int) -> float:
    """Seconds to run the customer workload at a given personal-data size."""
    corpus = RecordCorpusConfig(record_count=record_count, user_count=max(10, record_count // 10))
    client = make_client(engine, FeatureSet.full(metadata_indexing=(engine == "postgres")))
    try:
        client.load_records(generate_corpus(corpus))
        ops = make_operations(CUSTOMER, corpus, operations, seed=seed)
        report = run_workload(client, ops, threads=threads, workload_name="customer")
        return report.completion_time_s
    finally:
        client.close()


def run_engine(
    engine: str,
    ycsb_scales=DEFAULT_YCSB_SCALES,
    gdpr_scales=DEFAULT_GDPR_SCALES,
    ycsb_operations: int = 1000,
    gdpr_operations: int = 100,
    threads: int = 4,
    seed: int = 17,
) -> ExperimentResult:
    figure = "fig7" if engine == "redis" else "fig8"
    rows = []
    ycsb_times = []
    for scale in ycsb_scales:
        t = ycsb_c_completion(engine, scale, ycsb_operations, threads, seed)
        ycsb_times.append(t)
        rows.append({"series": "ycsb-C", "records": scale, "completion_s": round(t, 4)})
    gdpr_times = []
    for scale in gdpr_scales:
        t = gdpr_customer_completion(engine, scale, gdpr_operations, threads, seed)
        gdpr_times.append(t)
        rows.append({"series": "gdpr-customer", "records": scale, "completion_s": round(t, 4)})

    scale_ratio = gdpr_scales[-1] / gdpr_scales[0]
    gdpr_growth = gdpr_times[-1] / max(gdpr_times[0], 1e-9)
    ycsb_growth = ycsb_times[-1] / max(ycsb_times[0], 1e-9)
    checks = [
        (f"YCSB-C completion stays roughly flat across {ycsb_scales[0]}->"
         f"{ycsb_scales[-1]} records (<3x growth)", ycsb_growth < 3.0),
    ]
    if engine == "redis":
        # "Linearly increases with DB size" (Fig 7b): completion grows
        # monotonically, substantially, and with a roughly constant
        # per-record slope.  (A fixed cost floor from the 80% key-based
        # operations keeps the end-to-end ratio below the raw scale ratio.)
        slopes = [
            (t2 - t1) / (n2 - n1)
            for (n1, t1), (n2, t2) in zip(
                zip(gdpr_scales, gdpr_times), zip(gdpr_scales[1:], gdpr_times[1:])
            )
        ]
        checks.extend([
            ("Redis GDPR customer completion grows monotonically with DB size",
             all(b > a for a, b in zip(gdpr_times, gdpr_times[1:]))),
            (f"Redis GDPR completion grows substantially (>= 2.5x over a "
             f"{scale_ratio:.0f}x DB growth)", gdpr_growth >= 2.5),
            ("growth is linear: per-record slope roughly constant (max/min < 4)",
             min(slopes) > 0 and max(slopes) / min(slopes) < 4.0),
        ])
    else:
        # Figure 8b: with metadata indices the customer workload's queries
        # are index scans, so growth is muted — the paper's curve rises
        # only moderately, and at laptop scale it is close to flat.
        checks.append(
            ("PostgreSQL (indexed) GDPR growth is muted "
             f"(< {scale_ratio / 2:.0f}x over a {scale_ratio:.0f}x DB growth)",
             gdpr_growth < scale_ratio / 2)
        )
    return ExperimentResult(
        experiment=figure,
        title=f"Effect of scale on {engine}: YCSB-C vs GDPR customer workload",
        paper_expectation=(
            "YCSB completion is flat as DB volume grows (Figures 7a/8a); GDPR "
            "customer completion grows linearly with DB size on Redis (7b) and "
            "only moderately on PostgreSQL with metadata indices (8b)"
        ),
        rows=rows,
        shape_checks=checks,
    )


def _thread_scaling_sweep(
    engine: str,
    configs,
    thread_counts,
    record_count: int,
    operations: int,
    seed: int,
):
    """Shared YCSB-C thread sweep over (label, client_kwargs, batch_size)
    engine configurations; returns (rows, throughput by (label, threads))."""
    ycsb_config = YCSBConfig(
        record_count=record_count, operation_count=operations,
        field_count=1, field_length=16, seed=seed,
    )
    spec = ycsb_mod.WORKLOADS["C"]

    def loaded_client_factory(client_kwargs):
        def factory():
            client = make_client(engine, FeatureSet.none(), **client_kwargs)
            ycsb_mod.run_load(client, ycsb_config)
            return client
        return factory

    def operations_factory(client):
        return ycsb_mod.transaction_operations(
            spec, ycsb_config, insert_start=ycsb_config.record_count
        )

    rows = []
    throughput: dict[tuple[str, int], float] = {}
    for label, client_kwargs, batch_size in configs:
        reports = run_thread_sweep(
            loaded_client_factory(client_kwargs),
            operations_factory,
            thread_counts=thread_counts,
            batch_size=batch_size,
            workload_name=f"ycsb-C-{label}",
        )
        for threads, report in zip(thread_counts, reports):
            throughput[(label, threads)] = report.throughput_ops_s
            rows.append({
                "series": label,
                "threads": threads,
                "ops_s": round(report.throughput_ops_s),
                "correctness_pct": round(report.correctness_pct, 2),
            })
    return rows, throughput


def redis_thread_scaling(
    thread_counts=(1, 2, 4, 8),
    record_count: int = 2000,
    operations: int = 6000,
    seed: int = 17,
) -> ExperimentResult:
    """Thread-count sweep: single-lock Redis model vs striped + pipelined.

    The paper drives Redis with many client threads (Fig. 7 runs);
    against one event loop added threads only add contention.  This sweep
    runs the same YCSB-C stream (redis-benchmark-style small records, so
    protocol/locking overhead isn't masked by payload serialisation)
    against both execution models across a thread sweep.
    """
    rows, throughput = _thread_scaling_sweep(
        "redis", REDIS_SCALING_CONFIGS, thread_counts,
        record_count, operations, seed,
    )
    top = thread_counts[-1]
    striped_top = throughput[("striped+pipelined", top)]
    single_top = throughput[("single-lock", top)]
    checks = [
        ("every sweep point completed 100% correct",
         all(row["correctness_pct"] == 100.0 for row in rows)),
        (f"striped+pipelined sustains >= 1.3x single-lock at {top} threads "
         "(lock striping + batched round-trips)",
         striped_top >= 1.3 * single_top),
        # Generous bound: the claim is "no real scaling", and same-config
        # jitter across thread counts stays well under 2x, so this stays
        # robust on noisy CI runners.
        (f"single-lock gains no real scaling from threads (1 -> {top} "
         "grows < 2x): one event loop serialises added clients",
         throughput[("single-lock", top)]
         < 2.0 * throughput[("single-lock", thread_counts[0])]),
    ]
    return ExperimentResult(
        experiment="fig7-threads",
        title="Redis thread scaling: single-lock vs striped+pipelined minikv",
        paper_expectation=(
            "Added benchmark threads cannot speed up a single Redis event "
            "loop (the paper's Fig. 7 setup); lock striping plus command "
            "pipelining lifts the same workload substantially"
        ),
        rows=rows,
        shape_checks=checks,
    )


def sql_thread_scaling(
    thread_counts=(1, 2, 4, 8),
    record_count: int = 2000,
    operations: int = 6000,
    seed: int = 17,
) -> ExperimentResult:
    """Thread-count sweep: global-lock minisql vs reader-writer + batched.

    The SQL twin of :func:`redis_thread_scaling` (the ROADMAP's "extend
    pipelining to the SQL client" item): the same read-heavy YCSB-C stream
    against the seed's single global lock and against per-table
    reader-writer locking with transaction-batched statement execution
    (one lock acquisition, one WAL group commit, and one wire round-trip
    per batch through the shared ``GDPRPipeline`` contract).
    """
    rows, throughput = _thread_scaling_sweep(
        "postgres", SQL_SCALING_CONFIGS, thread_counts,
        record_count, operations, seed,
    )
    top = thread_counts[-1]
    batched_top = throughput[("rw+batched", top)]
    global_top = throughput[("global-lock", top)]
    mvcc_top = throughput[("mvcc+batched", top)]
    checks = [
        ("every sweep point completed 100% correct",
         all(row["correctness_pct"] == 100.0 for row in rows)),
        (f"rw+batched sustains >= 1.3x global-lock at {top} threads "
         "(shared read locks + transaction-batched statements)",
         batched_top >= 1.3 * global_top),
        (f"mvcc+batched sustains >= 1.3x global-lock at {top} threads "
         "(snapshot reads take no locks at all)",
         mvcc_top >= 1.3 * global_top),
        (f"global-lock gains no real scaling from threads (1 -> {top} "
         "grows < 2x): one lock serialises every statement",
         throughput[("global-lock", top)]
         < 2.0 * throughput[("global-lock", thread_counts[0])]),
    ]
    return ExperimentResult(
        experiment="fig8-threads",
        title="SQL thread scaling: global-lock vs reader-writer + batched minisql",
        paper_expectation=(
            "The seed engine serialises every statement behind one lock, so "
            "added benchmark threads cannot help; per-table reader-writer "
            "locking plus pipelined statement batches lifts the same "
            "SELECT-heavy workload substantially"
        ),
        rows=rows,
        shape_checks=checks,
    )


def _shard_scaling_sweep(
    engine: str,
    shard_configs,
    threads: int,
    record_count: int,
    operations: int,
    seed: int,
):
    """Shared full-GDPR YCSB-C shard sweep; returns (rows, CPU-tiered checks).

    Runs the same stream against the in-process engine and the 2- and
    4-worker sharded deployments.  With every GDPR retrofit armed the
    per-operation cost is engine-dominated, which is exactly the work
    hash-sharding spreads across worker processes; on a multi-core host
    the sharded points scale with the worker count, while on a single
    core the sweep can only demonstrate that the shard router's IPC tax
    stays bounded (there is no second core to win).  The shape checks
    are therefore CPU-tiered, mirroring the throughput-regression floors.
    """
    rows = []
    throughput: dict[str, float] = {}
    for label, client_kwargs, batch_size in shard_configs:
        config = YCSBSessionConfig(
            engine=engine,
            features=FeatureSet.full(),
            ycsb=YCSBConfig(
                record_count=record_count, operation_count=operations,
                field_count=1, field_length=16, seed=seed,
            ),
            threads=threads,
            batch_size=batch_size,
            client_kwargs=dict(client_kwargs),
        )
        with YCSBSession(config) as session:
            session.load()
            report = session.run("C")
        throughput[label] = report.throughput_ops_s
        rows.append({
            "series": label,
            "threads": threads,
            "shards": client_kwargs.get("shards", 1),
            "ops_s": round(report.throughput_ops_s),
            "correctness_pct": round(report.correctness_pct, 2),
        })
    cores = usable_cores()
    floor = shard_floor_min(cores)
    baseline = shard_configs[0][0]
    top = shard_configs[-1][0]
    checks = [
        ("every sweep point completed 100% correct",
         all(row["correctness_pct"] == 100.0 for row in rows)),
        (f"{top} sustains >= {floor}x {baseline} at {threads} threads on "
         f"{cores} usable core(s) (full 2x floor needs 4+ cores; a single "
         "core can only bound the router's IPC tax)",
         throughput[top] >= floor * throughput[baseline]),
    ]
    return rows, checks


def redis_shard_scaling(
    shard_configs=REDIS_SHARD_CONFIGS,
    threads: int = 8,
    record_count: int = 500,
    operations: int = 2000,
    seed: int = 42,
) -> ExperimentResult:
    """Shard-count sweep (fig10s): the minikv GIL escape, measured."""
    rows, checks = _shard_scaling_sweep(
        "redis", shard_configs, threads, record_count, operations, seed,
    )
    return ExperimentResult(
        experiment="fig10s",
        title="Shard scaling: in-process minikv vs multi-process sharded workers",
        paper_expectation=(
            "One Python process serialises all engine bytecode on the GIL, "
            "so GDPR-feature-heavy operations cannot scale past one core; "
            "hash-sharding the keyspace across worker processes spreads "
            "strict-TTL scans, audit logging, and cipher work, scaling "
            "throughput with the worker count on multi-core hosts"
        ),
        rows=rows,
        shape_checks=checks,
    )


def sql_shard_scaling(
    shard_configs=SQL_SHARD_CONFIGS,
    threads: int = 8,
    record_count: int = 500,
    operations: int = 1000,
    seed: int = 42,
) -> ExperimentResult:
    """Shard-count sweep (fig11q): the minisql GIL escape, measured.

    The SQL twin of :func:`redis_shard_scaling`: the same full-GDPR
    YCSB-C stream against the in-process ``Database`` facade and against
    2- and 4-worker :class:`~repro.minisql.sharded.ShardedDatabase`
    deployments.  Under the full feature set every statement pays index
    maintenance, audit logging with response payloads, and at-rest
    cipher work inside the engine — the work primary-key sharding
    spreads across worker processes.
    """
    rows, checks = _shard_scaling_sweep(
        "postgres", shard_configs, threads, record_count, operations, seed,
    )
    return ExperimentResult(
        experiment="fig11q",
        title="SQL shard scaling: in-process Database vs multi-process sharded workers",
        paper_expectation=(
            "Every minisql configuration — MVCC included — executes all "
            "engine bytecode on one GIL, so GDPR-feature-heavy statements "
            "cannot scale past one core; hash-partitioning each table's "
            "rows by primary key across worker processes spreads statement "
            "execution, audit logging, and cipher work, scaling throughput "
            "with the worker count on multi-core hosts"
        ),
        rows=rows,
        shape_checks=checks,
    )


def readers_vs_purge_throughput(
    locking: str,
    threads: int = 8,
    record_count: int = 2000,
    operations: int = 2000,
    batch_size: int = 128,
    slab: int = 100,
    seed: int = 42,
) -> float:
    """Reader ops/s while a TTL purge cycle hammers the same table.

    The paper's central contention scenario, distilled: ``threads``
    benchmark threads run a read-heavy YCSB-C stream against the
    usertable while one controller thread continuously (1) expires a slab
    of rows, (2) purges everything expired — the ``delete-record-by-ttl``
    shape, a write-locked scan — (3) reloads the slab in one transaction,
    and (4) vacuums the dead versions.  Under lock-based modes every
    purge statement stalls the whole read fleet; under ``mvcc`` the
    readers keep streaming their snapshots and only share CPU.

    Reader-side maintenance is disarmed (sweeper interval pushed out,
    vacuum run by the purger) so the measurement isolates reader-vs-purge
    lock contention rather than which thread happens to run maintenance.
    """
    features = FeatureSet(access_control=False, timely_deletion=True)
    config = YCSBSessionConfig(
        engine="postgres",
        features=features,
        ycsb=YCSBConfig(
            record_count=record_count, operation_count=operations,
            field_count=1, field_length=16, seed=seed,
        ),
        threads=threads,
        batch_size=batch_size,
        client_kwargs={"locking": locking},
    )
    with YCSBSession(config) as session:
        session.load()
        client = session.client
        db = client.db
        # the purger thread owns all purge + vacuum duty for the scenario:
        # push out the sweeper AND autovacuum, else a reader thread's
        # maintenance hook grabs write locks and the measurement mixes
        # "who ran maintenance" into the reader-vs-purge contention story
        db._sweepers["usertable"].interval = float("inf")
        db.AUTOVACUUM_THRESHOLD = float("inf")
        slab_hi = f"user{slab:010d}"
        slab_rows = db.select("usertable", Cmp("key", "<", slab_hi))
        stop = threading.Event()
        purger_error: list[BaseException] = []

        def purger() -> None:
            now = client.clock.now
            try:
                while not stop.is_set():
                    db.update("usertable", {"expiry": now() - 1.0},
                              Cmp("key", "<", slab_hi))
                    db.delete("usertable", Cmp("expiry", "<=", now()))  # the TTL purge
                    with db.transaction(write=("usertable",)) as txn:   # churn reload
                        for row in slab_rows:
                            txn.insert("usertable", dict(row))
                    db.vacuum("usertable")
            except BaseException as exc:
                # A dead purger would silently turn the scenario into an
                # uncontended read run; surface the failure to the caller.
                purger_error.append(exc)

        worker = threading.Thread(target=purger, daemon=True)
        worker.start()
        try:
            report = session.run("C")
        finally:
            stop.set()
            worker.join()
        if purger_error:
            raise purger_error[0]
        if report.correctness_pct != 100.0:
            raise AssertionError(
                f"mixed scenario lost correctness: {report.correctness_pct}%"
            )
        return report.throughput_ops_s


def sql_readers_vs_purge(
    record_count: int = 2000,
    operations: int = 2000,
    threads: int = 8,
) -> ExperimentResult:
    """Mixed readers-vs-purge: reader-writer locking vs MVCC snapshots.

    The PR 3 tentpole's headline figure: GDPR's timely-deletion purges are
    write-heavy scans, and the paper shows they crush read throughput on
    lock-based engines.  MVCC snapshot reads remove the collision
    entirely — readers never wait on the purge, the purge never waits on
    readers.
    """
    rows = []
    throughput = {}
    for locking in ("table-rw", "mvcc"):
        ops_s = readers_vs_purge_throughput(
            locking, threads=threads,
            record_count=record_count, operations=operations,
        )
        throughput[locking] = ops_s
        rows.append({
            "series": f"{locking}+purge",
            "threads": threads,
            "ops_s": round(ops_s),
        })
    checks = [
        (f"mvcc sustains >= 2x reader-writer locking at {threads} threads "
         "while a TTL purge cycle runs (snapshot reads never block)",
         throughput["mvcc"] >= 2.0 * throughput["table-rw"]),
    ]
    return ExperimentResult(
        experiment="fig9-purge",
        title="Readers vs TTL purge: per-table rw locking vs MVCC snapshots",
        paper_expectation=(
            "GDPR metadata purges contend with the OLTP read stream and "
            "collapse throughput under lock-based execution (the paper's "
            "central finding); snapshot-isolated reads coexist with the "
            "purge and keep streaming"
        ),
        rows=rows,
        shape_checks=checks,
    )


def run_fig7(**kwargs) -> ExperimentResult:
    return run_engine("redis", **kwargs)


def run_fig8(**kwargs) -> ExperimentResult:
    return run_engine("postgres", **kwargs)
