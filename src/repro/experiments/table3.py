"""Table 3 — storage space overhead of GDPR metadata (metadata explosion).

The paper loads the GDPRbench corpus and reports, for Redis, PostgreSQL
and PostgreSQL-with-metadata-indices, the ratio of total database size to
personal-data size: 3.5x for both engines by content, rising to 5.95x when
secondary indices are created for all metadata fields.
"""

from __future__ import annotations

from repro.bench.metrics import space_report
from repro.bench.records import RecordCorpusConfig, generate_corpus, logical_space_factor
from repro.clients import make_client
from repro.clients.base import FeatureSet

from .base import ExperimentResult

CONFIGS = (
    ("redis", "redis", False),
    ("postgres", "postgres", False),
    ("postgres-metadata-index", "postgres", True),
)


def run(records: int = 2000, seed: int = 42) -> ExperimentResult:
    corpus = RecordCorpusConfig(record_count=records, seed=seed)
    population = generate_corpus(corpus)
    rows = []
    factors = {}
    for label, engine, indexed in CONFIGS:
        client = make_client(engine, FeatureSet.full(metadata_indexing=indexed))
        try:
            client.load_records(population)
            report = space_report(client)
        finally:
            client.close()
        factors[label] = report.space_factor
        rows.append(
            {
                "config": label,
                "personal_data_kb": round(report.personal_data_bytes / 1024, 2),
                "total_content_kb": round(report.content_bytes / 1024, 2),
                "space_factor": round(report.space_factor, 2),
                "physical_factor": round(report.physical_factor, 2),
            }
        )
    corpus_factor = logical_space_factor(population)
    checks = [
        ("metadata explosion: default space factor > 3x on both engines",
         factors["redis"] > 3.0 and factors["postgres"] > 3.0),
        ("redis and postgres agree on the content factor (same corpus)",
         abs(factors["redis"] - factors["postgres"]) < 0.01),
        ("indexing all metadata raises the factor substantially (>= 1.3x)",
         factors["postgres-metadata-index"] >= 1.3 * factors["postgres"]),
        ("measured factor matches the corpus' definitional factor",
         abs(factors["redis"] - corpus_factor) < 0.05),
    ]
    return ExperimentResult(
        experiment="table3",
        title="Storage space overhead (metadata explosion)",
        paper_expectation=(
            "10 MB personal data -> 35 MB total (3.5x) on both Redis and "
            "PostgreSQL; secondary indices on all metadata fields raise it "
            "to 5.95x"
        ),
        rows=rows,
        shape_checks=checks,
    )
