"""Shared scaffolding for the per-figure experiment modules.

Every experiment module exposes ``run(...) -> ExperimentResult`` with
laptop-friendly default scales.  A result carries the regenerated rows,
the paper's qualitative expectation, and a check() that asserts the
*shape* of the result (who wins, what grows) — not absolute numbers,
since the substrate is a simulator rather than the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Rows regenerated for one paper figure/table."""

    experiment: str
    title: str
    paper_expectation: str
    rows: list
    shape_checks: list = field(default_factory=list)  # [(description, bool)]

    @property
    def shape_ok(self) -> bool:
        return all(ok for _, ok in self.shape_checks)

    def check(self) -> None:
        """Raise AssertionError naming the first failed shape check."""
        for description, ok in self.shape_checks:
            assert ok, f"{self.experiment}: shape check failed: {description}"

    def render(self) -> str:
        """Plain-text table in the spirit of the paper's figure."""
        lines = [f"== {self.experiment}: {self.title} ==",
                 f"paper: {self.paper_expectation}"]
        if self.rows:
            headers = list(self.rows[0].keys())
            widths = {
                h: max(len(h), *(len(_fmt(row.get(h))) for row in self.rows))
                for h in headers
            }
            lines.append("  ".join(h.ljust(widths[h]) for h in headers))
            for row in self.rows:
                lines.append(
                    "  ".join(_fmt(row.get(h)).ljust(widths[h]) for h in headers)
                )
        marker = "OK" if self.shape_ok else "MISMATCH"
        lines.append(f"shape: {marker}")
        for description, ok in self.shape_checks:
            lines.append(f"  [{'x' if ok else ' '}] {description}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
