"""Figure 4 — overhead of each GDPR security feature on YCSB workloads.

The paper runs YCSB A-F against Redis (4a) and PostgreSQL (4b), each
configured with one GDPR feature at a time — encryption (LUKS+TLS), timely
deletion (TTL), audit logging — and then all combined, reporting
throughput normalised to the no-security baseline:

* Redis: encryption ~-10%, TTL ~-20%, logging ~-70%, combined ~-80% (5x);
* PostgreSQL: encryption/TTL 10-20%, logging 30-40%, combined slows to
  50-60% of baseline (~2x).

Workload E (scan-heavy) is included, so the full A-F row matches the
paper's x-axis.
"""

from __future__ import annotations

import statistics

from repro.bench.session import YCSBSession, YCSBSessionConfig
from repro.bench.ycsb import YCSBConfig
from repro.clients.base import FeatureSet

from .base import ExperimentResult

FEATURE_CONFIGS = {
    "baseline": FeatureSet.none(),
    "encrypt": FeatureSet(encryption=True, access_control=False),
    "ttl": FeatureSet(timely_deletion=True, access_control=False),
    "log": FeatureSet(monitoring=True, access_control=False),
    "combined": FeatureSet(
        encryption=True, timely_deletion=True, monitoring=True, access_control=False
    ),
}

DEFAULT_WORKLOADS = ("A", "B", "C", "D", "E", "F")


def throughputs(engine: str, workloads, records: int, operations: int,
                threads: int, seed: int, repeats: int = 3) -> tuple[dict, int]:
    """(ops/sec for every (feature, workload) cell, total errored ops).

    The five feature configurations are measured in **interleaved rounds**
    (every configuration runs each workload once per round) and each cell
    is its median per-round ratio to the baseline's same round, rescaled
    by the baseline median.  A burst of scheduler noise therefore lands
    inside one round — skewing one ratio sample the median discards —
    instead of depressing one configuration's whole measurement window,
    the failure mode that made the disjoint-window comparison checks
    (e.g. "logging costs more than encryption") flaky on busy runners.
    """
    sessions = {}
    failures = 0
    try:
        for feature_name, features in FEATURE_CONFIGS.items():
            config = YCSBSessionConfig(
                engine=engine,
                features=features,
                ycsb=YCSBConfig(record_count=records, operation_count=operations, seed=seed),
                threads=threads,
            )
            sessions[feature_name] = session = YCSBSession(config)
            session.load()
        raw: dict[tuple[str, str], list[float]] = {}
        for workload in workloads:
            for _ in range(repeats):
                for feature_name, session in sessions.items():
                    report = session.run(workload)
                    failures += report.failed
                    raw.setdefault((feature_name, workload), []).append(
                        report.throughput_ops_s
                    )
    finally:
        for session in sessions.values():
            session.close()
    out: dict = {}
    for workload in workloads:
        base_rounds = raw[("baseline", workload)]
        base = statistics.median(base_rounds)
        out[("baseline", workload)] = base
        for feature_name in FEATURE_CONFIGS:
            if feature_name == "baseline":
                continue
            ratio = statistics.median([
                ops / base_ops
                for ops, base_ops in zip(raw[(feature_name, workload)], base_rounds)
            ])
            out[(feature_name, workload)] = base * ratio
    return out, failures


def run(
    engine: str = "redis",
    workloads=DEFAULT_WORKLOADS,
    records: int = 2000,
    operations: int = 2000,
    threads: int = 1,
    seed: int = 7,
) -> ExperimentResult:
    # threads=1 by default: the paper measures per-operation feature cost
    # on a 40-core server; under CPython's GIL, multi-threaded CPU-bound
    # runs add scheduler noise without adding parallelism, so the stable
    # per-op measurement is single-threaded (documented in DESIGN.md).
    cells, failures = throughputs(engine, workloads, records, operations, threads, seed)
    rows = []
    for workload in workloads:
        base = cells[("baseline", workload)]
        row = {"workload": workload, "baseline_ops_s": round(base, 1)}
        for feature in ("encrypt", "ttl", "log", "combined"):
            row[f"{feature}_pct"] = round(100.0 * cells[(feature, workload)] / base, 1)
        rows.append(row)

    def mean(feature: str) -> float:
        return sum(row[f"{feature}_pct"] for row in rows) / len(rows)

    combined_mean = mean("combined")
    log_mean = mean("log")
    encrypt_mean = mean("encrypt")
    common = [("no operation errored in any configuration", failures == 0)]
    if engine == "redis":
        checks = common + [
            ("every feature costs throughput (combined mean < 90% of baseline)",
             combined_mean < 90.0),
            ("logging is the dominant overhead", log_mean < encrypt_mean and log_mean < mean("ttl")),
            ("combined is the slowest configuration", combined_mean <= min(encrypt_mean, mean("ttl"), log_mean) + 1e-9),
            ("combined Redis suffers a multi-x slowdown (mean <= 50% of baseline)",
             combined_mean <= 50.0),
        ]
    else:
        checks = common + [
            ("every feature costs throughput (combined mean < 90% of baseline)",
             combined_mean < 90.0),
            ("logging costs more than encryption", log_mean < encrypt_mean),
            ("combined is the slowest configuration", combined_mean <= min(encrypt_mean, mean("ttl"), log_mean) + 1e-9),
            ("PostgreSQL's combined slowdown is milder than Redis-style collapse "
             "(mean >= 25% of baseline)", combined_mean >= 25.0),
        ]
    return ExperimentResult(
        experiment=f"fig4{'a' if engine == 'redis' else 'b'}",
        title=f"GDPR feature overheads on YCSB ({engine})",
        paper_expectation=(
            "Redis: encryption ~10% cost, TTL ~20%, logging ~70%, combined ~80% "
            "(5x slowdown); PostgreSQL: encryption/TTL 10-20%, logging 30-40%, "
            "combined 50-60% of baseline (~2x)"
        ),
        rows=rows,
        shape_checks=checks,
    )
