"""Figure 3a — Redis' delay in erasing expired keys beyond their TTL.

The paper populates Redis with keys whose TTLs are 20% short-term
(5 minutes) and 80% long-term (5 days), waits out the 5 minutes, then
measures how long the stock lazy expiry cycle takes to fully erase the
expired keys: hours at 128K keys, growing with total volume.  Their
modified (strict) algorithm erases everything within sub-second latency.

We reproduce the experiment on minikv with a virtual clock: simulated time
advances 100 ms per expiry tick, so hours of Redis wall-clock take
milliseconds to simulate while exercising the identical algorithm.
"""

from __future__ import annotations

from repro.common.clock import VirtualClock
from repro.minikv.engine import MiniKV, MiniKVConfig
from repro.minikv.expiry import TICK_SECONDS

from .base import ExperimentResult

SHORT_TTL = 300.0          # 5 minutes, the paper's short-term keys
LONG_TTL = 5 * 86400.0     # 5 days
SHORT_FRACTION = 0.2

#: paper's x-axis is 1K..128K total records; default scale trimmed for CI
DEFAULT_COUNTS = (1000, 2000, 4000, 8000, 16000)


def erasure_delay(total_keys: int, strict: bool, seed: int = 3, max_hours: float = 24.0) -> float:
    """Simulated seconds after the deadline until every expired key is gone."""
    clock = VirtualClock()
    kv = MiniKV(MiniKVConfig(strict_ttl=strict, expiry_seed=seed), clock=clock)
    for i in range(total_keys):
        ttl = SHORT_TTL if i % int(1 / SHORT_FRACTION) == 0 else LONG_TTL
        kv.set(f"k{i}", b"v", ttl=ttl)
    clock.advance(SHORT_TTL + TICK_SECONDS)  # the short-term keys just expired
    deadline = clock.now()
    budget_ticks = int(max_hours * 3600 / TICK_SECONDS)
    for _ in range(budget_ticks):
        kv.cron()
        if not kv._expires.all_expired(clock.now()):
            return clock.now() - deadline
        clock.advance(TICK_SECONDS)
    return clock.now() - deadline  # budget exhausted (reported as-is)


def run(counts=DEFAULT_COUNTS, seed: int = 3) -> ExperimentResult:
    rows = []
    for total in counts:
        lazy = erasure_delay(total, strict=False, seed=seed)
        strict = erasure_delay(total, strict=True, seed=seed)
        rows.append(
            {
                "total_keys": total,
                "expired_keys": total // int(1 / SHORT_FRACTION),
                "lazy_erasure_s": round(lazy, 1),
                "lazy_erasure_min": round(lazy / 60, 2),
                "strict_erasure_s": round(strict, 3),
            }
        )
    lazy_series = [row["lazy_erasure_s"] for row in rows]
    strict_series = [row["strict_erasure_s"] for row in rows]
    checks = [
        (
            "lazy erasure delay grows with total keys (monotone, >=4x end to end)",
            all(b > a for a, b in zip(lazy_series, lazy_series[1:]))
            and lazy_series[-1] >= 4 * lazy_series[0],
        ),
        (
            "strict erasure is sub-second at every scale",
            all(s < 1.0 for s in strict_series),
        ),
        (
            "lazy is orders of magnitude slower than strict at the largest scale",
            lazy_series[-1] > 100 * max(strict_series[-1], 1e-9),
        ),
    ]
    return ExperimentResult(
        experiment="fig3a",
        title="Redis TTL erasure delay: lazy sampling vs strict scan",
        paper_expectation=(
            "stock Redis takes minutes-to-hours to erase expired keys, growing "
            "with DB size (~3h at 128K keys); the modified strict algorithm "
            "erases all expired keys within sub-second latency"
        ),
        rows=rows,
        shape_checks=checks,
    )
