"""One module per paper figure/table; each exposes ``run() -> ExperimentResult``.

==========  =====================================================  ==============
Experiment  Paper artefact                                         Module
==========  =====================================================  ==============
fig3a       Redis TTL erasure delay (lazy vs strict)               ``fig3a``
fig3b       PostgreSQL TPS vs secondary indices                    ``fig3b``
fig4a/4b    GDPR feature overheads on YCSB (redis / postgres)      ``fig4``
fig5        GDPRbench completion times, three configurations       ``fig5``
table3      Storage space overhead (metadata explosion)            ``table3``
fig6        YCSB vs GDPRbench representative throughput            ``fig6``
fig7        Effect of scale, Redis (YCSB-C flat, customer linear)  ``scale``
fig7t       Redis thread scaling, single-lock vs striped+pipelined ``scale``
fig8        Effect of scale, PostgreSQL (muted growth)             ``scale``
fig8t       SQL thread scaling, global-lock vs rw/mvcc batched     ``scale``
fig9p       Readers vs TTL purge, rw locking vs MVCC snapshots     ``scale``
fig10s      Shard scaling, in-process vs multi-process minikv      ``scale``
fig11q      SQL shard scaling, in-process vs sharded minisql       ``scale``
fig12m      Online resharding movement, hash ring vs modulo        ``migration``
==========  =====================================================  ==============
"""

from . import fig3a, fig3b, fig4, fig5, fig6, migration, scale, table3
from .base import ExperimentResult

ALL_EXPERIMENTS = {
    "fig3a": fig3a.run,
    "fig3b": fig3b.run,
    "fig4a": lambda **kw: fig4.run(engine="redis", **kw),
    "fig4b": lambda **kw: fig4.run(engine="postgres", **kw),
    "fig5": fig5.run,
    "table3": table3.run,
    "fig6": fig6.run,
    "fig7": scale.run_fig7,
    "fig7t": scale.redis_thread_scaling,
    "fig8": scale.run_fig8,
    "fig8t": scale.sql_thread_scaling,
    "fig9p": scale.sql_readers_vs_purge,
    "fig10s": scale.redis_shard_scaling,
    "fig11q": scale.sql_shard_scaling,
    "fig12m": migration.run,
}

__all__ = ["ExperimentResult", "ALL_EXPERIMENTS", "fig3a", "fig3b", "fig4",
           "fig5", "fig6", "migration", "scale", "table3"]
