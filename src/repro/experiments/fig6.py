"""Figure 6 — representative throughput: YCSB vs GDPRbench, both engines.

Under identical hardware/software/configuration, the paper shows Redis and
PostgreSQL reaching ~10^4 ops/sec on YCSB while GDPR workloads run 2-4
orders of magnitude slower (Redis worst).  We reproduce the four bars:
YCSB-on-Redis, GDPRbench-on-Redis, YCSB-on-PostgreSQL,
GDPRbench-on-PostgreSQL, with every system in its compliant configuration.
"""

from __future__ import annotations

from repro.bench.records import RecordCorpusConfig
from repro.bench.session import (
    GDPRBenchConfig,
    GDPRBenchSession,
    YCSBSession,
    YCSBSessionConfig,
)
from repro.bench.ycsb import YCSBConfig
from repro.clients.base import FeatureSet

from .base import ExperimentResult

WORKLOAD_ORDER = ("controller", "customer", "processor", "regulator")


def _ycsb_throughput(engine: str, records: int, operations: int, threads: int, seed: int) -> float:
    config = YCSBSessionConfig(
        engine=engine,
        features=FeatureSet.full(metadata_indexing=(engine == "postgres")),
        ycsb=YCSBConfig(record_count=records, operation_count=operations, seed=seed),
        threads=threads,
    )
    with YCSBSession(config) as session:
        session.load()
        report = session.run("A")  # representative mixed workload
        return report.throughput_ops_s


def _gdpr_throughput(engine: str, records: int, operations: int, threads: int, seed: int) -> float:
    config = GDPRBenchConfig(
        engine=engine,
        features=FeatureSet.full(metadata_indexing=(engine == "postgres")),
        corpus=RecordCorpusConfig(record_count=records, user_count=max(10, records // 10)),
        operation_count=operations,
        threads=threads,
        seed=seed,
    )
    with GDPRBenchSession(config) as session:
        session.load()
        total_ops = 0
        total_time = 0.0
        for name in WORKLOAD_ORDER:
            report = session.run(name, measure_space=False)
            total_ops += report.operations
            total_time += report.completion_time_s
        return total_ops / total_time if total_time > 0 else 0.0


def run(
    records: int = 2000,
    ycsb_operations: int = 2000,
    gdpr_operations: int = 200,
    threads: int = 4,
    seed: int = 13,
) -> ExperimentResult:
    bars = {}
    for engine in ("redis", "postgres"):
        bars[f"ycsb-{engine}"] = _ycsb_throughput(engine, records, ycsb_operations, threads, seed)
        bars[f"gdpr-{engine}"] = _gdpr_throughput(engine, records, gdpr_operations, threads, seed)
    rows = [
        {"series": name, "throughput_ops_s": round(value, 1)}
        for name, value in bars.items()
    ]
    redis_gap = bars["ycsb-redis"] / max(bars["gdpr-redis"], 1e-9)
    pg_gap = bars["ycsb-postgres"] / max(bars["gdpr-postgres"], 1e-9)
    checks = [
        # The paper's 4-orders gap needs its 100K-record corpus; at laptop
        # scale the gap sits at ~25-60x and grows with records (Figure 7),
        # so the check uses a conservative floor.
        ("GDPR workloads are far slower than YCSB on Redis (>= 15x gap)",
         redis_gap >= 15.0),
        ("GDPR workloads are far slower than YCSB on PostgreSQL (>= 5x gap)",
         pg_gap >= 5.0),
        ("the GDPR gap is worse on Redis than on PostgreSQL",
         redis_gap > pg_gap),
        ("PostgreSQL's GDPR throughput beats Redis' GDPR throughput",
         bars["gdpr-postgres"] > bars["gdpr-redis"]),
    ]
    return ExperimentResult(
        experiment="fig6",
        title="Representative throughput: YCSB vs GDPRbench",
        paper_expectation=(
            "YCSB runs at ~10^4 ops/s on both systems; GDPR workloads are 2-3 "
            "orders of magnitude slower on PostgreSQL and ~4 orders slower on "
            "Redis under identical conditions"
        ),
        rows=rows,
        shape_checks=checks,
    )
