"""Figure 3b — PostgreSQL throughput vs number of secondary indices.

The paper runs pgbench (TPC-B-like: update a row by primary key) on a
15 GB database and shows throughput falling to ~33% of baseline once two
secondary indices (purpose, user-id) exist, because every write must
maintain every index.

We reproduce the shape with minisql: an accounts table updated by primary
key while 0, 1 or 2 metadata B-trees are attached.  minisql updates
re-index the whole row (no HOT optimisation, like the paper's 9.5-era
worst case), so index count directly multiplies write work.
"""

from __future__ import annotations

import random
import statistics
import time

from repro.minisql.database import Database, MiniSQLConfig
from repro.minisql.expr import Cmp
from repro.minisql.schema import Column
from repro.minisql.types import INTEGER, TEXT

from .base import ExperimentResult

DEFAULT_ROWS = 5000
DEFAULT_OPS = 4000
_PURPOSES = ("ads", "2fa", "analytics", "billing")


def _build(rows: int, indices: int, seed: int) -> Database:
    db = Database(MiniSQLConfig())
    db.create_table(
        "accounts",
        [
            Column("aid", INTEGER, nullable=False),
            Column("abalance", INTEGER, nullable=False),
            Column("purpose", TEXT),
            Column("userid", TEXT),
            Column("filler", TEXT),
        ],
        primary_key="aid",
    )
    rng = random.Random(seed)
    for i in range(rows):
        db.insert(
            "accounts",
            {
                "aid": i,
                "abalance": 0,
                "purpose": rng.choice(_PURPOSES),
                "userid": f"u{i % 100:05d}",
                "filler": "x" * 84,   # pgbench pads rows to ~100 bytes
            },
        )
    if indices >= 1:
        db.create_index("idx_purpose", "accounts", "purpose")
    if indices >= 2:
        db.create_index("idx_userid", "accounts", "userid")
    return db


def transactions_per_second(rows: int, ops: int, indices: int, seed: int = 5,
                            repeats: int = 5) -> float:
    """pgbench-style update-by-pk throughput with k secondary indices.

    Best of ``repeats`` timed rounds on one warmed database, which filters
    out allocator and scheduler noise the way pgbench's steady-state
    reporting does.
    """
    db = _build(rows, indices, seed)
    rng = random.Random(seed + 1)
    targets = [rng.randrange(rows) for _ in range(ops)]
    deltas = [rng.randint(-5000, 5000) for _ in range(ops)]
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        for aid, delta in zip(targets, deltas):
            db.update("accounts", {"abalance": delta}, Cmp("aid", "=", aid))
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, ops / elapsed)
    db.close()
    return best


def run(rows: int = DEFAULT_ROWS, ops: int = DEFAULT_OPS, seed: int = 5,
        repeats: int = 5) -> ExperimentResult:
    # The three configurations are timed in *interleaved* rounds and the
    # shape ratios are medians of per-round ratios: a burst of scheduler
    # noise lands inside one round (skewing one ratio sample, which the
    # median discards) instead of depressing one configuration's whole
    # measurement window — the failure mode that made disjoint-window
    # best-of measurements flaky on busy CI runners.
    dbs = {indices: _build(rows, indices, seed) for indices in (0, 1, 2)}
    rng = random.Random(seed + 1)
    targets = [rng.randrange(rows) for _ in range(ops)]
    deltas = [rng.randint(-5000, 5000) for _ in range(ops)]
    rounds: dict[int, list[float]] = {0: [], 1: [], 2: []}
    for _ in range(repeats):
        for indices in (0, 1, 2):
            db = dbs[indices]
            started = time.perf_counter()
            for aid, delta in zip(targets, deltas):
                db.update("accounts", {"abalance": delta}, Cmp("aid", "=", aid))
            elapsed = time.perf_counter() - started
            rounds[indices].append(ops / elapsed if elapsed > 0 else 0.0)
    for db in dbs.values():
        db.close()

    # displayed tps values derive from the same medians as the ratios, so
    # the two table columns can never contradict each other
    base_tps = statistics.median(rounds[0])
    rel = {
        0: 1.0,
        **{
            indices: statistics.median([
                one / base for one, base in zip(rounds[indices], rounds[0])
            ])
            for indices in (1, 2)
        },
    }
    table = [
        {
            "secondary_indices": indices,
            "tps": round(base_tps * rel[indices], 1),
            "relative_pct": round(100.0 * rel[indices], 1),
        }
        for indices in (0, 1, 2)
    ]
    checks = [
        # Noise-tolerant monotonicity: each index costs real throughput
        # against baseline, and the second index never *helps* (beyond a
        # few percent of timer noise).
        ("one secondary index costs significant throughput (<90% of baseline)",
         rel[1] < 0.9),
        ("two secondary indices cost significant throughput (<85% of baseline)",
         rel[2] < 0.85),
        ("adding the second index does not improve throughput (within 8% noise)",
         rel[2] <= rel[1] * 1.08),
    ]
    return ExperimentResult(
        experiment="fig3b",
        title="PostgreSQL transactions/sec vs number of secondary indices",
        paper_expectation=(
            "pgbench throughput drops significantly as secondary indices are "
            "introduced; two metadata indices (purpose, user-id) reduce "
            "PostgreSQL to ~33% of original throughput"
        ),
        rows=table,
        shape_checks=checks,
    )
