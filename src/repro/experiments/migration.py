"""Extension figure — resharding movement: consistent hashing vs modulo.

PR 7 replaces the sharded fronts' modulo key routing with a consistent
hash ring so the deployment can grow and shrink online.  This experiment
measures the property that justifies the ring: growing N shards to N+1
moves only the keys inside the ring slots the new shard claims (~1/(N+1)
of the keyspace), where modulo placement would remap almost everything
(the fraction of keys with ``h % N != h % (N+1)`` tends to N/(N+1)).

The harness loads a live :class:`~repro.minikv.ShardedMiniKV`, calls
:meth:`add_shard` for real — streaming slot migration, per-slot cutover,
the production path — and records ``keys_moved`` as reported by the
migration itself.  The modulo column is *computed* over the same key set
(the modulo router no longer exists to run), which is exactly the
remap count a modulo deployment would pay.
"""

from __future__ import annotations

from repro.common.hashring import key_point
from repro.minikv import MiniKVConfig, ShardedMiniKV

from .base import ExperimentResult


def run(
    record_count: int = 4000,
    shards: int = 3,
    value_bytes: int = 16,
) -> ExperimentResult:
    """Grow ``shards`` -> ``shards + 1`` online and count moved keys."""
    keys = [f"user{i}" for i in range(record_count)]
    value = b"x" * value_bytes

    with ShardedMiniKV(MiniKVConfig(shards=shards)) as kv:
        pipe = kv.pipeline()
        for key in keys:
            pipe.set(key, value)
        pipe.execute()
        before = kv.dbsize()
        stats = kv.add_shard()
        after = kv.dbsize()
        shards_after = kv.shard_count
        sample_ok = all(
            kv.get(key) == value for key in keys[:: max(1, record_count // 64)]
        )

    ring_moved = stats["keys_moved"]
    modulo_moved = sum(
        1 for key in keys
        if key_point(key) % shards != key_point(key) % (shards + 1)
    )
    rows = [
        {
            "strategy": "hash-ring (measured)",
            "shards_before": shards,
            "shards_after": shards + 1,
            "keys_moved": ring_moved,
            "moved_pct": round(100.0 * ring_moved / record_count, 1),
            "slots_moved": stats["slots_moved"],
        },
        {
            "strategy": "modulo (computed)",
            "shards_before": shards,
            "shards_after": shards + 1,
            "keys_moved": modulo_moved,
            "moved_pct": round(100.0 * modulo_moved / record_count, 1),
            "slots_moved": None,
        },
    ]
    checks = [
        ("online add_shard loses no keys", before == after == record_count),
        ("spot reads return the loaded values after cutover", sample_ok),
        (f"deployment grew to {shards + 1} shards", shards_after == shards + 1),
        ("ring migration moves some keys (the new shard owns real slots)",
         ring_moved > 0),
        ("modulo would remap >= 2x the keys the ring moved",
         modulo_moved >= 2 * ring_moved),
    ]
    return ExperimentResult(
        experiment="fig12m",
        title="Online resharding: keys moved, consistent hash ring vs modulo",
        paper_expectation=(
            "Modulo placement remaps ~N/(N+1) of all keys when a shard is "
            "added, forcing a near-total reshuffle; consistent hashing "
            "bounds movement to the slots the new shard claims (~1/(N+1) "
            "of the keyspace), so elastic scaling touches a small, "
            "proportional slice of the data"
        ),
        rows=rows,
        shape_checks=checks,
    )
