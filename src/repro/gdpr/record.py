"""Personal-data records with their seven GDPR metadata attributes.

Section 4.2.1 of the paper fixes the record shape GDPRbench uses::

    <Key>;<Data>;PUR=...;TTL=...;USR=...;OBJ=...;DEC=...;SHR=...;SRC=...;

``ph-1x4b;123-456-7890;PUR=ads,2fa;TTL=365days;USR=neo;OBJ=;DEC=;SHR=;
SRC=first-party;`` — a variable-length unique key, variable-length personal
data, then seven attributes (three-letter names), each single-valued,
list-valued, or empty.  All fields are ASCII; ``;`` and ``,`` are reserved
as separators.  The paper renders empty attributes as ``∅``; on the wire we
emit the ASCII empty string and accept both.

This module is the metadata-explosion phenomenon made concrete: a 10-byte
datum carries ~25 bytes of mandatory metadata (Table 3's 3.5x space factor
starts here).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import RecordFormatError

#: Attribute order on the wire (Section 4.2.1 example).
ATTRIBUTE_NAMES = ("PUR", "TTL", "USR", "OBJ", "DEC", "SHR", "SRC")

#: GDPR articles that give rise to each attribute (Table 1).
ATTRIBUTE_ARTICLES = {
    "PUR": ("5(1b)", "13", "14"),
    "TTL": ("5(1e)", "13(2a)", "17"),
    "USR": ("15",),
    "OBJ": ("21",),
    "DEC": ("15(1)", "22"),
    "SHR": ("13", "14"),
    "SRC": ("13", "14"),
}

_EMPTY_MARKS = ("", "∅")  # ASCII empty and the paper's ∅

_SECONDS_PER = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "min": 60.0,
    "mins": 60.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "day": 86400.0,
    "days": 86400.0,
}


def format_ttl(seconds: float) -> str:
    """Render a TTL the way the paper does (``365days``, ``5min``...)."""
    if seconds < 0:
        raise RecordFormatError(f"negative TTL {seconds!r}")
    if seconds % 86400 == 0 and seconds >= 86400:
        return f"{int(seconds // 86400)}days"
    if seconds % 3600 == 0 and seconds >= 3600:
        return f"{int(seconds // 3600)}hours"
    if seconds % 60 == 0 and seconds >= 60:
        return f"{int(seconds // 60)}min"
    if seconds == int(seconds):
        return f"{int(seconds)}s"
    return f"{seconds}s"


def parse_ttl(text: str) -> float:
    """Parse ``365days`` / ``5min`` / ``300s`` into seconds."""
    text = text.strip()
    if not text:
        raise RecordFormatError("empty TTL")
    digits = ""
    idx = 0
    while idx < len(text) and (text[idx].isdigit() or text[idx] == "."):
        digits += text[idx]
        idx += 1
    unit = text[idx:].strip().lower() or "s"
    if not digits:
        raise RecordFormatError(f"malformed TTL {text!r}")
    if unit not in _SECONDS_PER:
        raise RecordFormatError(f"unknown TTL unit {unit!r}")
    return float(digits) * _SECONDS_PER[unit]


def _check_ascii_field(name: str, value: str, allow_comma: bool = False) -> None:
    if not value.isascii():
        raise RecordFormatError(f"{name} must be ASCII: {value!r}")
    if ";" in value:
        raise RecordFormatError(f"{name} may not contain ';': {value!r}")
    if not allow_comma and "," in value:
        raise RecordFormatError(f"{name} may not contain ',': {value!r}")


@dataclass(frozen=True)
class PersonalRecord:
    """One personal-data item plus its seven GDPR metadata attributes."""

    key: str
    data: str
    purposes: tuple = ()
    ttl_seconds: float = 0.0
    user: str = ""
    objections: tuple = ()
    decisions: tuple = ()
    shared_with: tuple = ()
    source: str = "first-party"

    def __post_init__(self):
        if not self.key:
            raise RecordFormatError("record key must be non-empty")
        _check_ascii_field("key", self.key)
        _check_ascii_field("data", self.data)
        _check_ascii_field("USR", self.user)
        _check_ascii_field("SRC", self.source)
        for attr, values in (
            ("PUR", self.purposes),
            ("OBJ", self.objections),
            ("DEC", self.decisions),
            ("SHR", self.shared_with),
        ):
            if not isinstance(values, tuple):
                raise RecordFormatError(f"{attr} must be a tuple, got {values!r}")
            for value in values:
                _check_ascii_field(attr, value)
        if self.ttl_seconds < 0:
            raise RecordFormatError("TTL must be >= 0")

    # -- attribute access -------------------------------------------------

    def metadata(self) -> dict[str, object]:
        """The seven attributes as a name -> value dict."""
        return {
            "PUR": self.purposes,
            "TTL": self.ttl_seconds,
            "USR": self.user,
            "OBJ": self.objections,
            "DEC": self.decisions,
            "SHR": self.shared_with,
            "SRC": self.source,
        }

    def with_metadata(self, **updates) -> "PersonalRecord":
        """Copy with attribute changes (``purposes=(...)``, ``user=...``)."""
        return replace(self, **updates)

    def objects_to(self, purpose: str) -> bool:
        """True if this record's owner objected to ``purpose`` (G 21)."""
        return purpose in self.objections

    def allows_purpose(self, purpose: str) -> bool:
        """G 5(1b) + G 21: purpose must be declared and not objected to."""
        return purpose in self.purposes and not self.objects_to(purpose)

    # -- sizes (Table 3 accounting) ----------------------------------------

    def data_bytes(self) -> int:
        """Bytes of personal data proper (the Table 3 denominator)."""
        return len(self.data.encode())

    def metadata_bytes(self) -> int:
        """Bytes of metadata attribute payload (values, not labels)."""
        total = len(format_ttl(self.ttl_seconds).encode())
        total += len(self.user.encode()) + len(self.source.encode())
        for values in (self.purposes, self.objections, self.decisions, self.shared_with):
            total += sum(len(v.encode()) for v in values)
        return total

    # -- wire format --------------------------------------------------------

    def to_wire(self) -> str:
        """Serialise to the Section-4.2.1 record format."""
        parts = [self.key, self.data]
        rendered = {
            "PUR": ",".join(self.purposes),
            "TTL": format_ttl(self.ttl_seconds),
            "USR": self.user,
            "OBJ": ",".join(self.objections),
            "DEC": ",".join(self.decisions),
            "SHR": ",".join(self.shared_with),
            "SRC": self.source,
        }
        for name in ATTRIBUTE_NAMES:
            parts.append(f"{name}={rendered[name]}")
        return ";".join(parts) + ";"

    @classmethod
    def from_wire(cls, wire: str) -> "PersonalRecord":
        """Parse the Section-4.2.1 record format (tolerating the paper's ∅)."""
        if not wire.endswith(";"):
            raise RecordFormatError("record must end with ';'")
        parts = wire[:-1].split(";")
        if len(parts) != 2 + len(ATTRIBUTE_NAMES):
            raise RecordFormatError(
                f"expected {2 + len(ATTRIBUTE_NAMES)} fields, got {len(parts)}"
            )
        key, data = parts[0], parts[1]
        attrs: dict[str, str] = {}
        for chunk, expected in zip(parts[2:], ATTRIBUTE_NAMES):
            if "=" not in chunk:
                raise RecordFormatError(f"attribute {chunk!r} missing '='")
            name, _, value = chunk.partition("=")
            if name != expected:
                raise RecordFormatError(
                    f"attribute order violation: expected {expected}, got {name}"
                )
            attrs[name] = value

        def as_list(text: str) -> tuple:
            if text in _EMPTY_MARKS:
                return ()
            return tuple(text.split(","))

        def as_scalar(text: str) -> str:
            return "" if text in _EMPTY_MARKS else text

        return cls(
            key=key,
            data=data,
            purposes=as_list(attrs["PUR"]),
            ttl_seconds=parse_ttl(attrs["TTL"]),
            user=as_scalar(attrs["USR"]),
            objections=as_list(attrs["OBJ"]),
            decisions=as_list(attrs["DEC"]),
            shared_with=as_list(attrs["SHR"]),
            source=as_scalar(attrs["SRC"]),
        )
