"""Table 1 of the paper as a machine-readable registry.

Maps the key GDPR articles to the database-system *attributes* (metadata
that must be stored) and *actions* (capabilities the engine must support).
The registry drives GET-SYSTEM-FEATURES responses and the compliance
scoring used by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Action(Enum):
    """The five security-centric capabilities of Section 3.2."""

    TIMELY_DELETION = "timely_deletion"
    MONITOR_AND_LOG = "monitoring"
    METADATA_INDEXING = "metadata_indexing"
    ENCRYPTION = "encryption"
    ACCESS_CONTROL = "access_control"


@dataclass(frozen=True)
class ArticleRequirement:
    """One row of Table 1."""

    article: str
    title: str
    regulates: str
    attributes: tuple  # GDPR metadata attributes involved ('' rows = none)
    actions: tuple     # Action members required


_A = ArticleRequirement

#: Table 1, row for row.
TABLE_1: tuple = (
    _A("5(1b)", "Purpose limitation", "Collect data for explicit purposes",
       ("PUR",), (Action.METADATA_INDEXING,)),
    _A("5(1e)", "Storage limitation", "Do not store data indefinitely",
       ("TTL",), (Action.TIMELY_DELETION,)),
    _A("13", "Information to be provided [collection]",
       "Inform customers about all the GDPR metadata associated with their data",
       ("PUR", "TTL", "SRC", "SHR"), (Action.METADATA_INDEXING,)),
    _A("14", "Information to be provided [third-party]",
       "Inform customers about all the GDPR metadata associated with their data",
       ("PUR", "TTL", "SRC", "SHR"), (Action.METADATA_INDEXING,)),
    _A("15", "Right of access by users", "Allow customers to access all their data",
       ("USR",), (Action.METADATA_INDEXING,)),
    _A("17", "Right to be forgotten", "Allow customers to erase their data",
       ("TTL",), (Action.TIMELY_DELETION,)),
    _A("21", "Right to object", "Do not use data for any objected reasons",
       ("OBJ",), (Action.METADATA_INDEXING,)),
    _A("22", "Automated individual decision-making",
       "Allow customers to withdraw from fully algorithmic decision-making",
       ("DEC",), (Action.METADATA_INDEXING,)),
    _A("25", "Data protection by design and default",
       "Safeguard and restrict access to data", (), (Action.ACCESS_CONTROL,)),
    _A("28", "Processor", "Do not grant unlimited access to data",
       (), (Action.ACCESS_CONTROL,)),
    _A("30", "Records of processing activity",
       "Audit all operations on personal data", ("audit",), (Action.MONITOR_AND_LOG,)),
    _A("32", "Security of processing", "Implement appropriate data security",
       (), (Action.ENCRYPTION,)),
    _A("33", "Notification of personal data breach",
       "Share audit trails from affected systems", ("audit",), (Action.MONITOR_AND_LOG,)),
)


def requirements_for_action(action: Action) -> list[ArticleRequirement]:
    return [row for row in TABLE_1 if action in row.actions]


def articles_for_attribute(attribute: str) -> list[str]:
    return [row.article for row in TABLE_1 if attribute in row.attributes]


@dataclass(frozen=True)
class ComplianceReport:
    """GET-SYSTEM-FEATURES output: which capabilities a deployment has."""

    features: dict

    @property
    def supported(self) -> list[Action]:
        return [a for a in Action if self.features.get(a.value, False)]

    @property
    def missing(self) -> list[Action]:
        return [a for a in Action if not self.features.get(a.value, False)]

    @property
    def satisfied_articles(self) -> list[str]:
        """Articles whose required actions are all supported."""
        supported = set(self.supported)
        return [
            row.article for row in TABLE_1 if set(row.actions) <= supported
        ]

    @property
    def unsatisfied_articles(self) -> list[str]:
        supported = set(self.supported)
        return [
            row.article for row in TABLE_1 if not set(row.actions) <= supported
        ]

    def score(self) -> float:
        """Fraction of Table-1 articles whose actions are supported."""
        return len(self.satisfied_articles) / len(TABLE_1)


def evaluate_features(features: dict) -> ComplianceReport:
    """Build a report from an engine's ``gdpr_features`` dict."""
    return ComplianceReport(features=dict(features))
