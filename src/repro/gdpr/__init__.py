"""GDPR layer: record model, query taxonomy, compliance registry, ACL, audit."""

from .acl import AccessController, Principal
from .audit import AuditEvent, breach_report, events_from_aof, events_from_csvlog
from .compliance import (
    Action,
    ArticleRequirement,
    ComplianceReport,
    TABLE_1,
    articles_for_attribute,
    evaluate_features,
    requirements_for_action,
)
from .queries import (
    FAMILIES,
    GDPRQuery,
    QUERY_SPECS,
    QuerySpec,
    Role,
    queries_for_role,
    query_spec,
    role_may_issue,
)
from .record import (
    ATTRIBUTE_ARTICLES,
    ATTRIBUTE_NAMES,
    PersonalRecord,
    format_ttl,
    parse_ttl,
)

__all__ = [
    "PersonalRecord",
    "ATTRIBUTE_NAMES",
    "ATTRIBUTE_ARTICLES",
    "format_ttl",
    "parse_ttl",
    "Role",
    "GDPRQuery",
    "QuerySpec",
    "QUERY_SPECS",
    "FAMILIES",
    "query_spec",
    "queries_for_role",
    "role_may_issue",
    "Action",
    "ArticleRequirement",
    "TABLE_1",
    "ComplianceReport",
    "evaluate_features",
    "requirements_for_action",
    "articles_for_attribute",
    "AccessController",
    "Principal",
    "AuditEvent",
    "events_from_csvlog",
    "events_from_aof",
    "breach_report",
]
