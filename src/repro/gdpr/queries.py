"""The GDPR query taxonomy from Section 3.3 of the paper.

GDPR's articles collectively allow four entities to perform seven families
of operations against the personal-data store.  Every operation a client
stub must implement is named here, together with which roles may issue it
(Figure 1's arrows) and which GDPR articles authorise it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import UnknownQueryError


class Role(Enum):
    """The four GDPR entities that interface with the datastore."""

    CONTROLLER = "controller"
    CUSTOMER = "customer"
    PROCESSOR = "processor"
    REGULATOR = "regulator"


@dataclass(frozen=True)
class QuerySpec:
    """One operation of the taxonomy."""

    name: str
    family: str
    articles: tuple
    roles: tuple  # roles allowed to issue it (Figure 1)
    description: str


_Q = QuerySpec
_ALL = (Role.CONTROLLER, Role.CUSTOMER, Role.PROCESSOR, Role.REGULATOR)

#: Section 3.3, verbatim taxonomy.  ``verify-deletion`` is the regulator
#: probe GDPRbench adds to the regulator workload (Table 2a).
QUERY_SPECS: tuple = (
    _Q("create-record", "CREATE-RECORD", ("24",), (Role.CONTROLLER,),
       "controller inserts a personal record with its metadata"),
    _Q("delete-record-by-key", "DELETE-RECORD", ("17",),
       (Role.CONTROLLER, Role.CUSTOMER),
       "customer requests erasure of one record"),
    _Q("delete-record-by-pur", "DELETE-RECORD", ("5(1b)",), (Role.CONTROLLER,),
       "controller deletes records of a completed purpose"),
    _Q("delete-record-by-ttl", "DELETE-RECORD", ("5(1e)",), (Role.CONTROLLER,),
       "controller purges expired records"),
    _Q("delete-record-by-usr", "DELETE-RECORD", ("17",), (Role.CONTROLLER,),
       "controller cleans up all records of one customer"),
    _Q("read-data-by-key", "READ-DATA", ("28",), (Role.PROCESSOR, Role.CUSTOMER),
       "processor reads an individual data item"),
    _Q("read-data-by-pur", "READ-DATA", ("28",), (Role.PROCESSOR,),
       "processor reads items matching a purpose"),
    _Q("read-data-by-usr", "READ-DATA", ("20",), (Role.CUSTOMER,),
       "customer extracts all their data (portability)"),
    _Q("read-data-by-obj", "READ-DATA", ("21(3)",), (Role.PROCESSOR,),
       "processor reads items not objecting to a usage"),
    _Q("read-data-by-dec", "READ-DATA", ("22",), (Role.PROCESSOR,),
       "processor reads items open to automated decision-making"),
    _Q("read-metadata-by-key", "READ-METADATA", ("15",), (Role.CUSTOMER, Role.REGULATOR),
       "customer inspects the metadata of one record"),
    _Q("read-metadata-by-usr", "READ-METADATA", ("15",), (Role.CUSTOMER, Role.REGULATOR),
       "regulator runs a user-specific investigation"),
    _Q("read-metadata-by-shr", "READ-METADATA", ("13(1)",), (Role.REGULATOR,),
       "regulator investigates third-party sharing"),
    _Q("update-data-by-key", "UPDATE-DATA", ("16",), (Role.CUSTOMER,),
       "customer rectifies inaccurate personal data"),
    _Q("update-metadata-by-key", "UPDATE-METADATA", ("18(1)", "7(3)", "22(3)"),
       (Role.CUSTOMER, Role.CONTROLLER, Role.PROCESSOR),
       "customer changes objections / consents on one record"),
    _Q("update-metadata-by-pur", "UPDATE-METADATA", ("13(3)",), (Role.CONTROLLER,),
       "controller updates metadata for a group by purpose"),
    _Q("update-metadata-by-usr", "UPDATE-METADATA", ("13(3)",), (Role.CONTROLLER,),
       "controller updates metadata for a customer's records"),
    _Q("update-metadata-by-shr", "UPDATE-METADATA", ("13(3)",), (Role.CONTROLLER,),
       "controller updates third-party sharing lists"),
    _Q("get-system-logs", "GET-SYSTEM", ("33", "34"), (Role.REGULATOR,),
       "regulator pulls audit log entries by time range"),
    _Q("get-system-features", "GET-SYSTEM", ("24", "25"), (Role.REGULATOR,),
       "regulator lists supported security capabilities"),
    _Q("verify-deletion", "GET-SYSTEM", ("5(2)", "17"), (Role.REGULATOR,),
       "regulator verifies an erased record is gone"),
)

_BY_NAME = {spec.name: spec for spec in QUERY_SPECS}

FAMILIES = tuple(sorted({spec.family for spec in QUERY_SPECS}))


def query_spec(name: str) -> QuerySpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise UnknownQueryError(f"unknown GDPR query {name!r}") from None


def queries_for_role(role: Role) -> list[QuerySpec]:
    return [spec for spec in QUERY_SPECS if role in spec.roles]


def role_may_issue(role: Role, name: str) -> bool:
    return role in query_spec(name).roles


@dataclass(frozen=True)
class GDPRQuery:
    """A concrete query instance: taxonomy name + arguments."""

    name: str
    args: dict = field(default_factory=dict)

    def __post_init__(self):
        query_spec(self.name)  # raises UnknownQueryError

    @property
    def spec(self) -> QuerySpec:
        return query_spec(self.name)
