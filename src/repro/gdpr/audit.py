"""Audit-trail access for regulators (G 30, G 33, G 34).

Both engines already *produce* the audit trail (minikv piggybacks on the
AOF, minisql on the csvlog).  This module gives the regulator-facing side:
a uniform :class:`AuditEvent` shape, parsers for both log formats, and the
time-range query GET-SYSTEM-LOGS needs ("investigate system logs based on
time ranges", Section 3.3).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.minikv.aof import decode_entries
from repro.minisql.csvlog import CSVLogger


@dataclass(frozen=True)
class AuditEvent:
    """One logged interaction with the personal-data store."""

    timestamp: float | None  # None when the source log has no timestamps
    operation: str
    target: str
    detail: str = ""
    rows: int = 0


def events_from_csvlog(logger: CSVLogger, start: float | None = None, end: float | None = None) -> list[AuditEvent]:
    """Parse minisql csvlog lines into events, optionally time-bounded."""
    lo = float("-inf") if start is None else start
    hi = float("inf") if end is None else end
    events = []
    for line in logger.lines_between(lo, hi):
        parts = split_csv_line(line)
        if len(parts) != 5:
            continue
        ts, kind, table, detail, rows = parts
        try:
            events.append(
                AuditEvent(
                    timestamp=float(ts),
                    operation=kind,
                    target=table,
                    detail=detail,
                    rows=int(rows),
                )
            )
        except ValueError:
            continue
    return events


#: Tail window read per GET-SYSTEM-LOGS call.  Regulators inspect recent
#: activity; re-parsing an unbounded audit file per query would make the
#: benchmark quadratic in its own log.
TAIL_WINDOW_BYTES = 1 << 16


def events_from_aof(path: str, limit: int | None = None, cipher=None) -> list[AuditEvent]:
    """Parse recent minikv AOF entries into events (AOF has no timestamps).

    Reads only the trailing :data:`TAIL_WINDOW_BYTES` of the file and
    resynchronises on the first entry marker, so the cost per call is
    bounded regardless of audit-trail size.  ``cipher`` decrypts an
    encrypted AOF at the window's absolute file offset (the dm-crypt model
    allows decrypting any window independently).
    """
    if not os.path.exists(path):
        return []
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        if size > TAIL_WINDOW_BYTES:
            offset = size - TAIL_WINDOW_BYTES
            handle.seek(offset)
            data = handle.read()
            if cipher is not None:
                data = cipher.apply(data, offset)
        else:
            data = handle.read()
            if cipher is not None:
                data = cipher.apply(data, 0)
            if data[:1] == b"*":
                data = b"\n" + data  # uniform resync handling below

    # Resync: entries start with '*' at the beginning of a line, but a '*'
    # can also occur inside a value payload, so try successive candidates
    # until one parses.
    entries: list[list[bytes]] = []
    search_from = 0
    while True:
        sync = data.find(b"\n*", search_from)
        if sync == -1:
            break
        candidate = data[sync + 1:]
        try:
            entries = list(decode_entries(candidate))
            break
        except Exception:
            search_from = sync + 1

    events = []
    for entry in entries:
        if not entry:
            continue
        operation = entry[0].decode(errors="replace")
        target = entry[1].decode(errors="replace") if len(entry) > 1 else ""
        events.append(AuditEvent(timestamp=None, operation=operation, target=target))
    if limit is not None:
        return events[-limit:]
    return events


def split_csv_line(line: str) -> list[str]:
    """Minimal CSV splitter matching csvlog's escaping."""
    fields = []
    current = []
    in_quotes = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_quotes:
            if ch == '"':
                if i + 1 < len(line) and line[i + 1] == '"':
                    current.append('"')
                    i += 1
                else:
                    in_quotes = False
            else:
                current.append(ch)
        elif ch == '"':
            in_quotes = True
        elif ch == ",":
            fields.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    fields.append("".join(current))
    return fields


def breach_report(events: list[AuditEvent], affected_users: set[str]) -> dict:
    """G 33(3a): approximate counts for a breach notification.

    Given the audit window's events and the set of user ids believed
    affected, report the figures a controller must notify within 72 hours.
    """
    touched = [e for e in events if e.operation in ("SELECT", "GET", "HGETALL", "HGET", "SCAN", "KEYS")]
    return {
        "events_in_window": len(events),
        "read_events_in_window": len(touched),
        "approximate_affected_users": len(affected_users),
    }
