"""Metadata-based access control, enforced in the client stubs.

The paper defers access control to the DBMS client for both systems
("we extend the Redis client in GDPRbench to enforce metadata-based access
rights", Section 5.1; likewise for PostgreSQL, Section 5.2).  This module
is that enforcement layer:

* **role gate** — an operation must be permitted for the caller's role by
  the Section-3.3 taxonomy (Figure 1's arrows);
* **record gate** — per-record metadata checks: a customer may only touch
  records whose USR matches their identity (G 15-18, 20-22); a processor
  may only read records whose purposes cover its declared purpose and
  whose owner has not objected (G 28(3c), G 21); regulators read metadata
  and logs but never personal data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AccessDeniedError

from .queries import Role, query_spec, role_may_issue
from .record import PersonalRecord


@dataclass(frozen=True)
class Principal:
    """Who is issuing the operation.

    ``identity`` is the customer id for CUSTOMER principals and the
    processor's registered purpose for PROCESSOR principals when relevant.
    """

    role: Role
    identity: str = ""

    @classmethod
    def controller(cls) -> "Principal":
        return cls(Role.CONTROLLER)

    @classmethod
    def customer(cls, user: str) -> "Principal":
        return cls(Role.CUSTOMER, user)

    @classmethod
    def processor(cls, purpose: str = "") -> "Principal":
        return cls(Role.PROCESSOR, purpose)

    @classmethod
    def regulator(cls) -> "Principal":
        return cls(Role.REGULATOR)


class AccessController:
    """Role + metadata gatekeeper used by every client stub."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.checks = 0
        self.denials = 0

    def _deny(self, message: str) -> None:
        self.denials += 1
        raise AccessDeniedError(message)

    # -- operation gate ------------------------------------------------------

    def check_operation(self, principal: Principal, query_name: str) -> None:
        """Role gate: may this role issue this query at all?"""
        if not self.enabled:
            return
        self.checks += 1
        spec = query_spec(query_name)  # raises UnknownQueryError
        if not role_may_issue(principal.role, query_name):
            self._deny(
                f"role {principal.role.value} may not issue {spec.name} "
                f"(allowed: {[r.value for r in spec.roles]})"
            )

    # -- record gates --------------------------------------------------------

    def check_record_access(
        self,
        principal: Principal,
        record: PersonalRecord,
        write: bool = False,
    ) -> None:
        """Record gate for data-path operations."""
        if not self.enabled:
            return
        self.checks += 1
        role = principal.role
        if role is Role.CONTROLLER:
            return  # controller manages the full lifecycle (Figure 1)
        if role is Role.CUSTOMER:
            if record.user != principal.identity:
                self._deny(
                    f"customer {principal.identity!r} may not access record "
                    f"{record.key!r} owned by {record.user!r}"
                )
            return
        if role is Role.PROCESSOR:
            if write:
                self._deny("processors have read-only access to personal data")
            if principal.identity:
                if not record.allows_purpose(principal.identity):
                    self._deny(
                        f"record {record.key!r} does not permit purpose "
                        f"{principal.identity!r} (G 28(3c) / G 21)"
                    )
            return
        if role is Role.REGULATOR:
            self._deny("regulators may not access personal data, only metadata")

    def check_metadata_access(self, principal: Principal, record: PersonalRecord) -> None:
        """Record gate for metadata reads (G 15 / regulator investigations)."""
        if not self.enabled:
            return
        self.checks += 1
        role = principal.role
        if role in (Role.CONTROLLER, Role.REGULATOR):
            return
        if role is Role.CUSTOMER:
            if record.user != principal.identity:
                self._deny(
                    f"customer {principal.identity!r} may not read metadata of "
                    f"record {record.key!r} owned by {record.user!r}"
                )
            return
        self._deny(f"role {role.value} may not read GDPR metadata")
