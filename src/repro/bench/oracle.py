"""Exact-oracle correctness checking for single-threaded GDPRbench runs.

Section 4.2.3 defines correctness as "the percentage of query responses
that match the results expected by the benchmark".  Under concurrency the
expected result of a query is racy, so the default validators check
invariants; in single-threaded mode we can do what GDPRbench itself does:
maintain a shadow copy of the personal-data store and compare every
response against it exactly.

:class:`ShadowStore` mirrors the client operations in plain Python;
:func:`run_with_oracle` executes a workload single-threaded, applying each
operation to both the real client and the shadow, and reports exact
correctness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.gdpr.record import PersonalRecord

from .runtime import RunReport
from repro.common.stats import StatsCollector


class ShadowStore:
    """A dict-of-records model of the personal-data store."""

    def __init__(self, clock=None) -> None:
        self._records: dict[str, PersonalRecord] = {}
        self._expiry: dict[str, float] = {}
        self._clock = clock
        self._now = 0.0

    def _time(self) -> float:
        return self._clock.now() if self._clock is not None else self._now

    # -- load/create -------------------------------------------------------

    def load(self, records) -> None:
        for record in records:
            self.create(record)

    def create(self, record: PersonalRecord) -> bool:
        self._records[record.key] = record
        self._expiry[record.key] = self._time() + record.ttl_seconds
        return True

    # -- reads ----------------------------------------------------------------

    def read_data_by_key(self, key: str):
        record = self._records.get(key)
        return None if record is None else record.data

    def read_data_by_pur(self, purpose: str):
        return sorted(
            (r.key, r.data) for r in self._records.values() if purpose in r.purposes
        )

    def read_data_by_usr(self, user: str):
        return sorted(
            (r.key, r.data) for r in self._records.values() if r.user == user
        )

    def read_data_by_obj(self, purpose: str):
        return sorted(
            (r.key, r.data)
            for r in self._records.values()
            if purpose not in r.objections
        )

    def read_data_by_dec(self, decision: str):
        return sorted(
            (r.key, r.data) for r in self._records.values() if decision in r.decisions
        )

    def read_metadata_by_key(self, key: str):
        record = self._records.get(key)
        return None if record is None else record.metadata()

    def read_metadata_by_usr(self, user: str):
        return sorted(
            ((r.key, r.metadata()) for r in self._records.values() if r.user == user),
            key=lambda pair: pair[0],
        )

    def read_metadata_by_shr(self, party: str):
        return sorted(
            ((r.key, r.metadata()) for r in self._records.values()
             if party in r.shared_with),
            key=lambda pair: pair[0],
        )

    # -- updates ---------------------------------------------------------------

    _FIELD_FOR = {
        "PUR": "purposes",
        "USR": "user",
        "OBJ": "objections",
        "DEC": "decisions",
        "SHR": "shared_with",
        "SRC": "source",
    }

    def update_data_by_key(self, key: str, data: str) -> int:
        record = self._records.get(key)
        if record is None:
            return 0
        self._records[key] = record.with_metadata(data=data)
        return 1

    def _apply_metadata(self, key: str, attribute: str, value) -> None:
        record = self._records[key]
        attribute = attribute.upper()
        if attribute == "TTL":
            self._records[key] = record.with_metadata(ttl_seconds=float(value))
            self._expiry[key] = self._time() + float(value)
        else:
            self._records[key] = record.with_metadata(
                **{self._FIELD_FOR[attribute]: value}
            )

    def update_metadata_by_key(self, key: str, attribute: str, value) -> int:
        if key not in self._records:
            return 0
        self._apply_metadata(key, attribute, value)
        return 1

    def _update_where(self, keep, attribute: str, value) -> int:
        keys = [k for k, r in self._records.items() if keep(r)]
        for key in keys:
            self._apply_metadata(key, attribute, value)
        return len(keys)

    def update_metadata_by_pur(self, purpose, attribute, value) -> int:
        return self._update_where(lambda r: purpose in r.purposes, attribute, value)

    def update_metadata_by_usr(self, user, attribute, value) -> int:
        return self._update_where(lambda r: r.user == user, attribute, value)

    def update_metadata_by_shr(self, party, attribute, value) -> int:
        return self._update_where(lambda r: party in r.shared_with, attribute, value)

    # -- deletes ---------------------------------------------------------------

    def delete_record_by_key(self, key: str) -> int:
        if self._records.pop(key, None) is None:
            return 0
        self._expiry.pop(key, None)
        return 1

    def _delete_where(self, keep) -> int:
        victims = [k for k, r in self._records.items() if keep(r)]
        for key in victims:
            del self._records[key]
            self._expiry.pop(key, None)
        return len(victims)

    def delete_record_by_pur(self, purpose: str) -> int:
        return self._delete_where(lambda r: purpose in r.purposes)

    def delete_record_by_usr(self, user: str) -> int:
        return self._delete_where(lambda r: r.user == user)

    def delete_record_by_ttl(self) -> int:
        now = self._time()
        victims = [k for k, deadline in self._expiry.items() if deadline <= now]
        for key in victims:
            del self._records[key]
            del self._expiry[key]
        return len(victims)

    def record_exists(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class OracleMismatch:
    """One response that diverged from the shadow's expectation."""

    operation: str
    expected: object
    actual: object


def _canonical(value):
    """Order-insensitive comparison form for list responses."""
    if isinstance(value, list):
        return sorted(value, key=repr)
    return value


class OracleValidator:
    """Pairs a client operation with its shadow expectation."""

    def __init__(self, shadow: ShadowStore) -> None:
        self.shadow = shadow
        self.mismatches: list[OracleMismatch] = []
        self.checked = 0

    def check(self, op_name: str, args: tuple, actual) -> bool:
        """Apply the shadow op, compare responses, record divergence."""
        method = getattr(self.shadow, op_name.replace("-", "_"), None)
        if method is None:
            return True  # no shadow model for this op (e.g. get-system-logs)
        expected = method(*args)
        self.checked += 1
        if _canonical(expected) != _canonical(actual):
            self.mismatches.append(OracleMismatch(op_name, expected, actual))
            return False
        return True


#: client operations the oracle models exactly, keyed by taxonomy name,
#: mapping to (client-callable name, shadow-callable name).
_EXACT_OPS = {
    "read-data-by-key", "read-data-by-pur", "read-data-by-usr",
    "read-data-by-obj", "read-data-by-dec",
    "read-metadata-by-key", "read-metadata-by-usr", "read-metadata-by-shr",
    "update-data-by-key", "update-metadata-by-key", "update-metadata-by-pur",
    "update-metadata-by-usr", "update-metadata-by-shr",
    "delete-record-by-key", "delete-record-by-pur", "delete-record-by-usr",
}


def run_with_oracle(client, shadow: ShadowStore, calls) -> RunReport:
    """Run (op_name, args, execute) triples single-threaded with the oracle.

    ``calls`` is an iterable of ``(op_name, args, execute)`` where
    ``execute(client)`` performs the operation and ``args`` are the
    semantic arguments the shadow needs.  Returns a RunReport whose
    correctness counts exact response matches.
    """
    validator = OracleValidator(shadow)
    stats = StatsCollector()
    correct = 0
    failed = 0
    total = 0
    stats.start(0.0)
    began = time.perf_counter()
    for op_name, args, execute in calls:
        total += 1
        started = time.perf_counter()
        try:
            actual = execute(client)
            error = False
        except Exception:
            actual = None
            error = True
        stats.record(op_name, (time.perf_counter() - started) * 1e6, success=not error)
        if error:
            failed += 1
            continue
        if op_name in _EXACT_OPS:
            if validator.check(op_name, args, actual):
                correct += 1
        else:
            correct += 1
    elapsed = time.perf_counter() - began
    stats.finish(elapsed)
    report = RunReport(
        workload="oracle",
        engine=getattr(client, "engine_name", "unknown"),
        operations=total,
        correct=correct,
        failed=failed,
        completion_time_s=elapsed,
        stats=stats,
    )
    report.oracle_mismatches = validator.mismatches  # type: ignore[attr-defined]
    return report
