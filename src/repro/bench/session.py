"""High-level benchmark sessions: load a corpus, run workloads, report.

This is the piece a user scripts against (and what the experiment modules
call): choose an engine + feature set, load the personal-data corpus, then
run any of the four GDPR workloads or a YCSB mix under a thread count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clients import FeatureSet, make_client

from . import ycsb as ycsb_mod
from .gdpr_workloads import CORE_WORKLOADS, GDPRWorkloadSpec, make_operations
from .records import RecordCorpusConfig, generate_corpus, logical_space_factor
from .runtime import RunReport, run_workload


@dataclass
class GDPRBenchConfig:
    """One GDPRbench invocation (paper defaults, scaled by the caller)."""

    engine: str = "redis"
    features: FeatureSet = field(default_factory=FeatureSet.full)
    corpus: RecordCorpusConfig = field(default_factory=RecordCorpusConfig)
    operation_count: int = 1000
    threads: int = 8       # the paper runs GDPRbench with 8 threads
    seed: int = 11
    #: command-pipelining batch per worker (1 = one round trip per op).
    #: With >1 the batchable GDPR operations (``read-data-by-*``,
    #: ``delete-record-by-ttl``, metadata updates, ...) run through the
    #: shared :class:`~repro.clients.base.GDPRPipeline` contract.
    batch_size: int = 1
    #: extra client-constructor knobs (e.g. ``stripes``/``client_indices``)
    client_kwargs: dict = field(default_factory=dict)


class GDPRBenchSession:
    """Owns a client and a loaded corpus; runs workloads on demand."""

    def __init__(self, config: GDPRBenchConfig, client=None) -> None:
        self.config = config
        self.client = client or make_client(
            config.engine, config.features, **config.client_kwargs
        )
        self.records = generate_corpus(config.corpus)
        self.loaded = False

    def load(self) -> int:
        count = self.client.load_records(self.records)
        self.loaded = True
        return count

    def run(self, workload: str | GDPRWorkloadSpec, measure_space: bool = True) -> RunReport:
        if not self.loaded:
            self.load()
        spec = CORE_WORKLOADS[workload] if isinstance(workload, str) else workload
        operations = make_operations(
            spec, self.config.corpus, self.config.operation_count, seed=self.config.seed
        )
        return run_workload(
            self.client,
            operations,
            threads=self.config.threads,
            workload_name=spec.name,
            measure_space=measure_space,
            batch_size=self.config.batch_size,
        )

    def run_all(self) -> dict[str, RunReport]:
        """All four core workloads, in the paper's presentation order."""
        return {
            name: self.run(name)
            for name in ("controller", "customer", "processor", "regulator")
        }

    def logical_space_factor(self) -> float:
        return logical_space_factor(self.records)

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "GDPRBenchSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class YCSBSessionConfig:
    """One YCSB invocation (Section 6.1 uses 16 threads, 2M/2M)."""

    engine: str = "redis"
    features: FeatureSet = field(default_factory=FeatureSet.none)
    ycsb: ycsb_mod.YCSBConfig = field(default_factory=ycsb_mod.YCSBConfig)
    threads: int = 16
    #: command-pipelining batch per worker (1 = one round trip per op)
    batch_size: int = 1
    #: extra client-constructor knobs (e.g. ``stripes``/``aof_batch_size``
    #: for the lock-striped minikv engine)
    client_kwargs: dict = field(default_factory=dict)


class YCSBSession:
    """Loads the usertable then runs any of workloads A-F."""

    def __init__(self, config: YCSBSessionConfig, client=None) -> None:
        self.config = config
        self.client = client or make_client(
            config.engine, config.features, **config.client_kwargs
        )
        self.loaded = False
        self._next_insert_key = config.ycsb.record_count

    def load(self) -> RunReport:
        operations = ycsb_mod.load_operations(self.config.ycsb)
        report = run_workload(
            self.client, operations, threads=self.config.threads,
            workload_name="load", batch_size=self.config.batch_size,
        )
        self.loaded = True
        return report

    def run(self, workload: str) -> RunReport:
        if not self.loaded:
            self.load()
        spec = ycsb_mod.WORKLOADS[workload.upper()]
        operations = ycsb_mod.transaction_operations(
            spec, self.config.ycsb, insert_start=self._next_insert_key
        )
        # Reserve key space for this run's inserts so back-to-back workloads
        # on one database never collide on the primary key.
        inserts = sum(1 for op in operations if op.name == "insert")
        self._next_insert_key += inserts
        return run_workload(
            self.client, operations, threads=self.config.threads,
            workload_name=f"ycsb-{spec.name}", batch_size=self.config.batch_size,
        )

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "YCSBSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
