"""High-level benchmark sessions: load a corpus, run workloads, report.

This is the piece a user scripts against (and what the experiment modules
call): choose an engine + feature set, load the personal-data corpus, then
run any of the four GDPR workloads or a YCSB mix under a thread count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clients import FeatureSet, make_client

from . import ycsb as ycsb_mod
from .gdpr_workloads import CORE_WORKLOADS, GDPRWorkloadSpec, make_operations
from .records import RecordCorpusConfig, generate_corpus, logical_space_factor
from .runtime import RunReport, run_workload


@dataclass
class GDPRBenchConfig:
    """One GDPRbench invocation (paper defaults, scaled by the caller).

    Every default reproduces the paper's GDPRbench setup; the
    non-default settings opt into this repo's scaling retrofits.
    """

    #: Default ``"redis"`` — which engine stub :func:`make_client`
    #: builds (``"redis"`` = minikv, ``"postgres"`` = minisql).
    engine: str = "redis"
    #: Default :meth:`FeatureSet.full` — all GDPR retrofits armed, the
    #: paper's "GDPR-compliant configuration" bars.
    features: FeatureSet = field(default_factory=FeatureSet.full)
    #: Default :class:`RecordCorpusConfig` defaults — the deterministic
    #: personal-record corpus loaded before any workload runs.
    corpus: RecordCorpusConfig = field(default_factory=RecordCorpusConfig)
    #: Default ``1000`` — operations generated per workload run.
    operation_count: int = 1000
    #: Default ``8`` — the paper runs GDPRbench with 8 client threads.
    threads: int = 8
    #: Default ``11`` — seed for the deterministic operation stream.
    seed: int = 11
    #: Default ``1`` — one wire round-trip per operation, the paper's
    #: execution model.  >1 enables command pipelining: each worker
    #: drains up to this many consecutive batchable operations
    #: (``read-data-by-*``, ``delete-record-by-ttl``, metadata updates,
    #: ...) onto one :class:`~repro.clients.base.GDPRPipeline` and
    #: executes them as a single round-trip; non-batchable operations
    #: flush the pending batch and run singly, preserving issue order.
    batch_size: int = 1
    #: Default ``{}`` — extra client-constructor knobs forwarded
    #: verbatim (e.g. ``stripes``/``shards``/``client_indices`` for the
    #: redis stub, ``locking``/``wal_batch_size`` for the SQL stub).
    client_kwargs: dict = field(default_factory=dict)


class GDPRBenchSession:
    """Owns a client and a loaded corpus; runs workloads on demand.

    :meth:`run` lazily loads the corpus on first use, regenerates the
    deterministic operation stream for the requested workload, and
    delegates to :func:`~repro.bench.runtime.run_workload` with the
    config's ``threads`` and ``batch_size`` — so pipelining behaves
    identically whether a workload is driven here or directly through
    the runtime.  The session owns its client: :meth:`close` (or the
    context manager) releases engine resources, including any sharded
    worker processes.
    """

    def __init__(self, config: GDPRBenchConfig, client=None) -> None:
        self.config = config
        self.client = client or make_client(
            config.engine, config.features, **config.client_kwargs
        )
        self.records = generate_corpus(config.corpus)
        self.loaded = False

    def load(self) -> int:
        count = self.client.load_records(self.records)
        self.loaded = True
        return count

    def run(self, workload: str | GDPRWorkloadSpec, measure_space: bool = True) -> RunReport:
        if not self.loaded:
            self.load()
        spec = CORE_WORKLOADS[workload] if isinstance(workload, str) else workload
        operations = make_operations(
            spec, self.config.corpus, self.config.operation_count, seed=self.config.seed
        )
        return run_workload(
            self.client,
            operations,
            threads=self.config.threads,
            workload_name=spec.name,
            measure_space=measure_space,
            batch_size=self.config.batch_size,
        )

    def run_all(self) -> dict[str, RunReport]:
        """All four core workloads, in the paper's presentation order."""
        return {
            name: self.run(name)
            for name in ("controller", "customer", "processor", "regulator")
        }

    def logical_space_factor(self) -> float:
        return logical_space_factor(self.records)

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "GDPRBenchSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class YCSBSessionConfig:
    """One YCSB invocation (Section 6.1 uses 16 threads, 2M/2M).

    Defaults mirror the paper's traditional-workload setup at
    laptop-friendly scale; non-defaults opt into the scaling retrofits.
    """

    #: Default ``"redis"`` — which engine stub :func:`make_client`
    #: builds (``"redis"`` = minikv, ``"postgres"`` = minisql).
    engine: str = "redis"
    #: Default :meth:`FeatureSet.none` — the stock engines the paper's
    #: YCSB baselines measure (no GDPR retrofits).
    features: FeatureSet = field(default_factory=FeatureSet.none)
    #: Default :class:`~repro.bench.ycsb.YCSBConfig` defaults — record
    #: count, operation count, field sizing, and workload seed.
    ycsb: ycsb_mod.YCSBConfig = field(default_factory=ycsb_mod.YCSBConfig)
    #: Default ``16`` — the paper's YCSB thread count (Section 6.1).
    threads: int = 16
    #: Default ``1`` — one wire round-trip per operation.  >1 batches
    #: consecutive YCSB primitives (read/update/insert) through the
    #: client's :class:`~repro.clients.base.GDPRPipeline`: one engine
    #: lock scope, one persistence group commit, and one round-trip per
    #: batch.  Non-batchable operations (scan, read-modify-write) flush
    #: the pending batch and run singly.
    batch_size: int = 1
    #: Default ``{}`` — extra client-constructor knobs forwarded
    #: verbatim (e.g. ``stripes``/``aof_batch_size``/``shards`` for
    #: minikv, ``locking``/``wal_batch_size`` for minisql).
    client_kwargs: dict = field(default_factory=dict)


class YCSBSession:
    """Loads the usertable then runs any of workloads A-F.

    :meth:`load` replays the YCSB load phase (auto-invoked by the first
    :meth:`run` if skipped); each :meth:`run` generates that workload's
    transaction stream and reserves primary-key space for its inserts,
    so back-to-back workloads on one database never collide.  Both
    phases batch through the client pipeline when ``batch_size > 1``.
    The session owns its client; :meth:`close` releases engine
    resources, including any sharded worker processes.
    """

    def __init__(self, config: YCSBSessionConfig, client=None) -> None:
        self.config = config
        self.client = client or make_client(
            config.engine, config.features, **config.client_kwargs
        )
        self.loaded = False
        self._next_insert_key = config.ycsb.record_count

    def load(self) -> RunReport:
        operations = ycsb_mod.load_operations(self.config.ycsb)
        report = run_workload(
            self.client, operations, threads=self.config.threads,
            workload_name="load", batch_size=self.config.batch_size,
        )
        self.loaded = True
        return report

    def run(self, workload: str) -> RunReport:
        if not self.loaded:
            self.load()
        spec = ycsb_mod.WORKLOADS[workload.upper()]
        operations = ycsb_mod.transaction_operations(
            spec, self.config.ycsb, insert_start=self._next_insert_key
        )
        # Reserve key space for this run's inserts so back-to-back workloads
        # on one database never collide on the primary key.
        inserts = sum(1 for op in operations if op.name == "insert")
        self._next_insert_key += inserts
        return run_workload(
            self.client, operations, threads=self.config.threads,
            workload_name=f"ycsb-{spec.name}", batch_size=self.config.batch_size,
        )

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "YCSBSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
