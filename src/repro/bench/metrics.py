"""GDPRbench metrics (Section 4.2.3): correctness, completion time, space.

Correctness and completion time are computed by the runtime engine
(:mod:`repro.bench.runtime`).  This module implements the space-overhead
metric with the paper's accounting:

    space factor = total size of the database / total size of personal data

Table 3 uses *content* accounting — 25 bytes of metadata per 10-byte datum
gives 3.5x, and duplicating the metadata into secondary indices lifts it to
~5.95x.  :func:`space_report` reproduces that accounting from the client's
live state, and also reports the engine's *physical* footprint (heap
overheads, WAL, audit log) for completeness — physical bytes depend on the
substrate, content bytes are substrate-independent, and the paper's
headline numbers are the content ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clients.base import GDPRClient
from repro.clients.sql_client import METADATA_INDEX_COLUMNS, RECORDS_TABLE, SQLGDPRClient
from repro.gdpr.record import PersonalRecord


@dataclass(frozen=True)
class SpaceReport:
    """Table 3 row for one deployment."""

    engine: str
    record_count: int
    personal_data_bytes: int
    metadata_bytes: int
    index_content_bytes: int
    physical_total_bytes: int

    @property
    def content_bytes(self) -> int:
        """Data + metadata + index copies (the paper's 'Total DB size')."""
        return self.personal_data_bytes + self.metadata_bytes + self.index_content_bytes

    @property
    def space_factor(self) -> float:
        """Table 3's 'Space factor' (content accounting)."""
        if self.personal_data_bytes == 0:
            return 0.0
        return self.content_bytes / self.personal_data_bytes

    @property
    def physical_factor(self) -> float:
        """Engine-reported bytes over personal data bytes."""
        if self.personal_data_bytes == 0:
            return 0.0
        return self.physical_total_bytes / self.personal_data_bytes

    def row(self) -> dict:
        return {
            "engine": self.engine,
            "records": self.record_count,
            "personal_data_bytes": self.personal_data_bytes,
            "total_content_bytes": self.content_bytes,
            "space_factor": round(self.space_factor, 2),
            "physical_factor": round(self.physical_factor, 2),
        }


def _live_records(client: GDPRClient) -> list[PersonalRecord]:
    if isinstance(client, SQLGDPRClient):
        rows = client.db.select(RECORDS_TABLE, _internal=True)
        return [client._record_from_row(row) for row in rows]
    return list(client._iter_records())


def space_report(client: GDPRClient) -> SpaceReport:
    """Measure the Table 3 metric from a loaded client."""
    records = _live_records(client)
    data_bytes = sum(r.data_bytes() for r in records)
    metadata_bytes = sum(r.metadata_bytes() for r in records)
    index_content = 0
    if isinstance(client, SQLGDPRClient) and client.features.metadata_indexing:
        # Each metadata index stores a copy of its column's content
        # (plus row pointers, which are physical, not content).
        per_column = {
            "usr": lambda r: len(r.user.encode()),
            "pur": lambda r: sum(len(v.encode()) for v in r.purposes),
            "obj": lambda r: sum(len(v.encode()) for v in r.objections),
            "dec": lambda r: sum(len(v.encode()) for v in r.decisions),
            "shr": lambda r: sum(len(v.encode()) for v in r.shared_with),
            "src": lambda r: len(r.source.encode()),
            "expiry": lambda r: 8,
        }
        for column in METADATA_INDEX_COLUMNS:
            sizer = per_column[column]
            index_content += sum(sizer(r) for r in records)
    return SpaceReport(
        engine=client.engine_name,
        record_count=len(records),
        personal_data_bytes=data_bytes,
        metadata_bytes=metadata_bytes,
        index_content_bytes=index_content,
        physical_total_bytes=client.total_db_bytes(),
    )
