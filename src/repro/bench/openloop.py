"""Open-loop workload runner: Poisson arrivals, sojourn-time tails.

The closed-loop runner (:mod:`repro.bench.runtime`) measures *service*
latency: each worker thread issues its next operation only after the
previous one finished, so the system is never offered more load than it
can absorb and queueing delay is invisible by construction.  Real front
ends are **open loop** — requests arrive on their own schedule whether
or not earlier ones completed (the paper's "heavy traffic from millions
of users" shape), and what a user feels is the *sojourn* time: queueing
delay plus service time, measured from the request's scheduled arrival,
not from when the client got around to issuing it.

This runner models that front end:

* ``issuers`` concurrent threads each replay their share of the
  operation list with exponentially-distributed inter-arrival gaps
  (a Poisson process at ``offered_load_ops_s`` overall, seeded and
  deterministic per issuer);
* an issuer that falls behind schedule does **not** slow the arrival
  clock — subsequent operations are already late the moment they
  issue, and that lateness is counted in their sojourn times.  This is
  exactly the backlog behaviour a closed loop cannot exhibit;
* ``offered_load_ops_s=inf`` degenerates to saturation mode (no gaps):
  every issuer fires as fast as its operations complete — the
  throughput-capacity probe the autopipe floor asserts on;
* with ``autopipe_batch > 0`` each issuer runs inside
  ``client.autopipe(max_batch=autopipe_batch)``: batchable operations
  return :class:`~repro.clients.futures.ResultFuture` slots whose
  completions are stamped by ``.then()`` callbacks at flush time, so
  latency accounting covers the queue-in-pipeline wait too.  With
  ``autopipe_batch=0`` every call is a bare per-call round-trip — the
  unbatched baseline of the ≥ 2x assertion.

Results merge into one :class:`~repro.common.stats.Histogram` per run;
the report carries offered vs achieved load and the p50/p99 sojourn
tails that go to ``BENCH_throughput.json``'s open-loop columns.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass

from repro.clients.futures import ResultFuture
from repro.common.stats import Histogram


@dataclass
class OpenLoopConfig:
    """One open-loop run's knobs."""

    #: total offered load across all issuers; ``inf`` = saturation mode
    offered_load_ops_s: float
    #: concurrent issuer threads (the paper-facing floor uses 8)
    issuers: int = 8
    #: >0 arms ``client.autopipe(max_batch=...)`` per issuer; 0 = per-call
    autopipe_batch: int = 0
    #: arrival-schedule RNG seed (per-issuer streams derive from it)
    seed: int = 11
    #: unmeasured per-issuer operations replayed before the start barrier.
    #: Issuer threads pay real one-time setup on their first request —
    #: most visibly the per-thread TLS channel's keystream pool expansion
    #: (see :class:`~repro.crypto.tls.LoopbackSecureLink`) — which is
    #: connection establishment, not workload service time.  YCSB
    #: excludes connection setup from its measured window; so does this.
    warmup_ops: int = 32


@dataclass
class OpenLoopReport:
    """What one open-loop run measured."""

    offered_ops_s: float
    achieved_ops_s: float
    completed: int
    failed: int
    p50_us: float
    p99_us: float
    elapsed_s: float
    #: wire round-trips the issuers' autopipes performed (0 per-call)
    flushes: int

    def as_row(self) -> dict:
        return {
            "offered_ops_s": (
                None if math.isinf(self.offered_ops_s)
                else round(self.offered_ops_s, 1)
            ),
            "ops_s": round(self.achieved_ops_s, 1),
            "completed": self.completed,
            "failed": self.failed,
            "p50_us": round(self.p50_us, 1),
            "p99_us": round(self.p99_us, 1),
        }


class _IssuerTally:
    """One issuer thread's private accounting (merged after the join)."""

    __slots__ = ("hist", "completed", "failed", "flushes", "last_done")

    def __init__(self) -> None:
        self.hist = Histogram()
        self.completed = 0
        self.failed = 0
        self.flushes = 0
        self.last_done = 0.0

    def record(self, sojourn_s: float, ok: bool) -> None:
        self.hist.record(max(sojourn_s, 0.0) * 1e6)
        if ok:
            self.completed += 1
        else:
            self.failed += 1
        self.last_done = time.perf_counter()


def _issue(client, op, scheduled: float, tally: _IssuerTally) -> None:
    """Issue one operation; stamp its completion when it resolves.

    Under an active autopipe a batchable operation returns a pending
    future — its ``.then()`` callback fires at flush time, which is when
    the response actually exists; everything else completes inline.
    """
    try:
        response = op.execute(client)
    except Exception:
        tally.record(time.perf_counter() - scheduled, False)
        return
    if isinstance(response, ResultFuture):
        def on_value(value, op=op, scheduled=scheduled):
            try:
                ok = op.validate(value)
            except Exception:
                ok = False
            tally.record(time.perf_counter() - scheduled, ok)

        def on_error(_exc, scheduled=scheduled):
            tally.record(time.perf_counter() - scheduled, False)

        response.then(on_value, on_error)
        return
    try:
        ok = op.validate(response)
    except Exception:
        ok = False
    tally.record(time.perf_counter() - scheduled, ok)


def _issuer_loop(client, operations, config: OpenLoopConfig, index: int,
                 barrier: threading.Barrier, start_box: list,
                 tally: _IssuerTally) -> None:
    rate = (
        config.offered_load_ops_s / config.issuers
        if not math.isinf(config.offered_load_ops_s) else math.inf
    )
    rng = random.Random(config.seed * 1009 + index)
    if operations:
        # Warm this thread's connection state (TLS channels, shard
        # sockets) with discarded per-call requests before the barrier,
        # so the measured window starts at steady state in every mode.
        for position in range(min(config.warmup_ops, len(operations))):
            try:
                operations[position].execute(client)
            except Exception:
                pass
    barrier.wait()
    start = start_box[0]

    def drive() -> None:
        arrival = 0.0  # scheduled offset from the shared start instant
        for op in operations:
            if math.isinf(rate):
                scheduled = time.perf_counter()  # saturation: no schedule
            else:
                arrival += rng.expovariate(rate)
                scheduled = start + arrival
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                # behind schedule: issue immediately; the lateness is
                # queueing delay and lands in this op's sojourn time
            _issue(client, op, scheduled, tally)

    if config.autopipe_batch > 0:
        with client.autopipe(max_batch=config.autopipe_batch) as auto:
            drive()
            # context exit flushes the tail batch; callbacks have fired
        tally.flushes = auto.flushes
    else:
        drive()


def run_open_loop(client, operations, config: OpenLoopConfig) -> OpenLoopReport:
    """Replay ``operations`` through ``client`` on an open-loop schedule.

    Operations are dealt round-robin across ``config.issuers`` threads;
    each issuer follows its own Poisson arrival schedule (or saturates,
    at infinite offered load).  Returns the merged report; per-issuer
    tallies are private until the join, so no measurement lock sits on
    the hot path.
    """
    lanes = [operations[i::config.issuers] for i in range(config.issuers)]
    tallies = [_IssuerTally() for _ in range(config.issuers)]
    start_box = [0.0]

    def stamp_start() -> None:
        # Runs in exactly one thread once every party (all issuers, past
        # their warmup, plus the coordinator) has arrived — so t=0 lands
        # after the slowest issuer's connection setup, not before it.
        start_box[0] = time.perf_counter() + 0.005

    barrier = threading.Barrier(config.issuers + 1, action=stamp_start)
    threads = [
        threading.Thread(
            target=_issuer_loop,
            args=(client, lane, config, index, barrier, start_box, tally),
            name=f"openloop-{index}",
            daemon=True,
        )
        for index, (lane, tally) in enumerate(zip(lanes, tallies))
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    for thread in threads:
        thread.join()

    merged = Histogram()
    completed = failed = flushes = 0
    last_done = start_box[0]
    for tally in tallies:
        merged.merge(tally.hist)
        completed += tally.completed
        failed += tally.failed
        flushes += tally.flushes
        last_done = max(last_done, tally.last_done)
    elapsed = max(last_done - start_box[0], 1e-9)
    return OpenLoopReport(
        offered_ops_s=config.offered_load_ops_s,
        achieved_ops_s=completed / elapsed,
        completed=completed,
        failed=failed,
        p50_us=merged.percentile_us(50.0),
        p99_us=merged.percentile_us(99.0),
        elapsed_s=elapsed,
        flushes=flushes,
    )
