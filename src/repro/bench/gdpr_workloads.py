"""The four GDPRbench core workloads (Table 2a of the paper).

=========== ==================================== ======= ============
Workload    Operations                           Weight  Distribution
=========== ==================================== ======= ============
Controller  create-record                        25%     Uniform
            delete-record-by-{pur|ttl|usr}       25%
            update-metadata-by-{pur|usr|shr}     50%
Customer    read-data-by-usr                     20%     Zipf
            read-metadata-by-key                 20%
            update-data-by-key                   20%
            update-metadata-by-key               20%
            delete-record-by-key                 20%
Processor   read-data-by-key                     80%     Zipf
            read-data-by-{pur|obj|dec}           20%     Uniform
Regulator   read-metadata-by-usr                 46%     Zipf
            get-system-logs                      31%
            verify-deletion                      23%
=========== ==================================== ======= ============

Weights come from the paper's calibration: GDPR steady-state properties for
the controller, Google's RTBF report for the customer skew (Zipf), the
EDPB first-nine-months complaint statistics (46/31/23) for the regulator,
and YCSB-style access patterns plus emerging metadata-conditioned reads
for the processor.

Operations are pre-generated deterministically from a seed; each carries a
validator for the correctness metric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.distributions import (
    CounterGenerator,
    DiscreteGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)
from repro.common.errors import WorkloadError
from repro.gdpr.acl import Principal

from .operations import (
    Operation,
    data_owned_by,
    is_bool,
    is_nonneg_int,
    is_optional_str,
    is_pair_list,
    metadata_for_key,
    metadata_shared_with,
    metadata_user_is,
)
from .records import RecordCorpusConfig, key_for, make_record, user_for


@dataclass(frozen=True)
class GDPRWorkloadSpec:
    """Name, purpose, operation mix and record-selection distribution."""

    name: str
    purpose: str
    mix: tuple          # ((operation-name, weight), ...)
    distribution: str   # 'uniform' | 'zipfian'

    def weights(self) -> dict:
        return dict(self.mix)


CONTROLLER = GDPRWorkloadSpec(
    name="controller",
    purpose="Management and administration of personal data",
    mix=(
        ("create-record", 25.0),
        ("delete-record-by-pur", 25.0 / 3),
        ("delete-record-by-ttl", 25.0 / 3),
        ("delete-record-by-usr", 25.0 / 3),
        ("update-metadata-by-pur", 50.0 / 3),
        ("update-metadata-by-usr", 50.0 / 3),
        ("update-metadata-by-shr", 50.0 / 3),
    ),
    distribution="uniform",
)

CUSTOMER = GDPRWorkloadSpec(
    name="customer",
    purpose="Exercising GDPR rights",
    mix=(
        ("read-data-by-usr", 20.0),
        ("read-metadata-by-key", 20.0),
        ("update-data-by-key", 20.0),
        ("update-metadata-by-key", 20.0),
        ("delete-record-by-key", 20.0),
    ),
    distribution="zipfian",
)

PROCESSOR = GDPRWorkloadSpec(
    name="processor",
    purpose="Processing of personal data",
    mix=(
        ("read-data-by-key", 80.0),
        ("read-data-by-pur", 20.0 / 3),
        ("read-data-by-obj", 20.0 / 3),
        ("read-data-by-dec", 20.0 / 3),
    ),
    distribution="zipfian",
)

REGULATOR = GDPRWorkloadSpec(
    name="regulator",
    purpose="Investigation and enforcement of GDPR laws",
    mix=(
        ("read-metadata-by-usr", 46.0),
        ("get-system-logs", 31.0),
        ("verify-deletion", 23.0),
    ),
    distribution="zipfian",
)

CORE_WORKLOADS: dict[str, GDPRWorkloadSpec] = {
    spec.name: spec for spec in (CONTROLLER, CUSTOMER, PROCESSOR, REGULATOR)
}


def make_operations(
    spec: GDPRWorkloadSpec,
    corpus: RecordCorpusConfig,
    operation_count: int,
    seed: int = 11,
) -> list[Operation]:
    """Pre-generate one workload's transaction phase."""
    if spec.name not in CORE_WORKLOADS:
        raise WorkloadError(f"unknown GDPR workload {spec.name!r}")
    rng = random.Random(seed ^ (hash(spec.name) & 0xFFFF))
    n = corpus.record_count
    if spec.distribution == "uniform":
        chooser = UniformGenerator(0, n - 1, rng=rng)
    else:
        chooser = ScrambledZipfianGenerator(0, n - 1, rng=rng)
    mix = DiscreteGenerator(rng=rng)
    for op_name, weight in spec.mix:
        mix.add_value(op_name, weight)
    insert_counter = CounterGenerator(n)
    builder = _OperationBuilder(corpus, rng, chooser, insert_counter)
    return [builder.build(mix.next_value()) for _ in range(operation_count)]


class _OperationBuilder:
    """Turns an operation name + distributions into a bound Operation."""

    def __init__(self, corpus: RecordCorpusConfig, rng: random.Random,
                 chooser, insert_counter: CounterGenerator) -> None:
        self._corpus = corpus
        self._rng = rng
        self._chooser = chooser
        self._counter = insert_counter
        self._rectifications = 0

    # -- selection helpers -------------------------------------------------

    def _index(self) -> int:
        return self._chooser.next_value()

    def _key(self) -> str:
        return key_for(self._index())

    def _key_and_user(self) -> tuple[str, str]:
        index = self._index()
        return key_for(index), user_for(index, self._corpus.user_count)

    def _user(self) -> str:
        return user_for(self._index(), self._corpus.user_count)

    def _purpose(self) -> str:
        return self._rng.choice(self._corpus.purposes)

    def _party(self) -> str:
        return self._rng.choice(self._corpus.parties)

    def _decision(self) -> str:
        return self._rng.choice(self._corpus.decisions)

    # -- dispatch ------------------------------------------------------------

    def build(self, op_name: str) -> Operation:
        method = getattr(self, "_op_" + op_name.replace("-", "_"), None)
        if method is None:
            raise WorkloadError(f"no builder for operation {op_name!r}")
        return method()

    # -- controller operations -------------------------------------------

    def _op_create_record(self) -> Operation:
        index = self._counter.next_value()
        record = make_record(index, self._corpus, self._rng)
        return Operation(
            "create-record",
            lambda c, p=Principal.controller(), r=record: c.create_record(p, r),
            validate=lambda r: r is True,
        )

    def _op_delete_record_by_pur(self) -> Operation:
        purpose = self._purpose()
        return Operation(
            "delete-record-by-pur",
            lambda c, p=Principal.controller(), v=purpose: c.delete_record_by_pur(p, v),
            validate=is_nonneg_int,
        )

    def _op_delete_record_by_ttl(self) -> Operation:
        return Operation(
            "delete-record-by-ttl",
            lambda c, p=Principal.controller(): c.delete_record_by_ttl(p),
            validate=is_nonneg_int,
        )

    def _op_delete_record_by_usr(self) -> Operation:
        user = self._user()
        return Operation(
            "delete-record-by-usr",
            lambda c, p=Principal.controller(), v=user: c.delete_record_by_usr(p, v),
            validate=is_nonneg_int,
        )

    def _op_update_metadata_by_pur(self) -> Operation:
        purpose, party = self._purpose(), self._party()
        return Operation(
            "update-metadata-by-pur",
            lambda c, p=Principal.controller(), v=purpose, w=party:
                c.update_metadata_by_pur(p, v, "SHR", (w,)),
            validate=is_nonneg_int,
        )

    def _op_update_metadata_by_usr(self) -> Operation:
        user = self._user()
        ttl = self._corpus.long_ttl_seconds
        return Operation(
            "update-metadata-by-usr",
            lambda c, p=Principal.controller(), v=user, t=ttl:
                c.update_metadata_by_usr(p, v, "TTL", t),
            validate=is_nonneg_int,
        )

    def _op_update_metadata_by_shr(self) -> Operation:
        party = self._party()
        source = self._rng.choice(self._corpus.sources)
        return Operation(
            "update-metadata-by-shr",
            lambda c, p=Principal.controller(), v=party, s=source:
                c.update_metadata_by_shr(p, v, "SRC", s),
            validate=is_nonneg_int,
        )

    # -- customer operations ------------------------------------------------

    def _op_read_data_by_usr(self) -> Operation:
        user = self._user()
        return Operation(
            "read-data-by-usr",
            lambda c, p=Principal.customer(user), v=user: c.read_data_by_usr(p, v),
            validate=data_owned_by(user),
        )

    def _op_read_metadata_by_key(self) -> Operation:
        key, user = self._key_and_user()
        return Operation(
            "read-metadata-by-key",
            lambda c, p=Principal.customer(user), k=key: c.read_metadata_by_key(p, k),
            validate=metadata_for_key(key),
        )

    def _op_update_data_by_key(self) -> Operation:
        key, user = self._key_and_user()
        self._rectifications += 1
        data = f"{user}:rect{self._rectifications:04d}"
        return Operation(
            "update-data-by-key",
            lambda c, p=Principal.customer(user), k=key, d=data: c.update_data_by_key(p, k, d),
            validate=is_nonneg_int,
        )

    def _op_update_metadata_by_key(self) -> Operation:
        key, user = self._key_and_user()
        objection = self._purpose()
        return Operation(
            "update-metadata-by-key",
            lambda c, p=Principal.customer(user), k=key, o=objection:
                c.update_metadata_by_key(p, k, "OBJ", (o,)),
            validate=is_nonneg_int,
        )

    def _op_delete_record_by_key(self) -> Operation:
        key, user = self._key_and_user()
        return Operation(
            "delete-record-by-key",
            lambda c, p=Principal.customer(user), k=key: c.delete_record_by_key(p, k),
            validate=is_nonneg_int,
        )

    # -- processor operations -------------------------------------------

    def _op_read_data_by_key(self) -> Operation:
        key = self._key()
        return Operation(
            "read-data-by-key",
            lambda c, p=Principal.processor(), k=key: c.read_data_by_key(p, k),
            validate=is_optional_str,
        )

    def _op_read_data_by_pur(self) -> Operation:
        purpose = self._purpose()
        return Operation(
            "read-data-by-pur",
            lambda c, p=Principal.processor(), v=purpose: c.read_data_by_pur(p, v),
            validate=is_pair_list,
        )

    def _op_read_data_by_obj(self) -> Operation:
        purpose = self._purpose()
        return Operation(
            "read-data-by-obj",
            lambda c, p=Principal.processor(), v=purpose: c.read_data_by_obj(p, v),
            validate=is_pair_list,
        )

    def _op_read_data_by_dec(self) -> Operation:
        decision = self._decision()
        return Operation(
            "read-data-by-dec",
            lambda c, p=Principal.processor(), v=decision: c.read_data_by_dec(p, v),
            validate=is_pair_list,
        )

    # -- regulator operations -------------------------------------------

    def _op_read_metadata_by_usr(self) -> Operation:
        user = self._user()
        return Operation(
            "read-metadata-by-usr",
            lambda c, p=Principal.regulator(), v=user: c.read_metadata_by_usr(p, v),
            validate=metadata_user_is(user),
        )

    def _op_get_system_logs(self) -> Operation:
        return Operation(
            "get-system-logs",
            lambda c, p=Principal.regulator(): c.get_system_logs(p, limit=100),
            validate=lambda r: isinstance(r, list),
        )

    def _op_verify_deletion(self) -> Operation:
        key = self._key()
        return Operation(
            "verify-deletion",
            lambda c, p=Principal.regulator(), k=key: c.verify_deletion(p, k),
            validate=is_bool,
        )
