"""Synthetic personal-data population for GDPRbench (Section 4.2.1/4.2.2).

Generates the record corpus the benchmark loads before running workloads.
Defaults reproduce the paper's configuration: ~10 bytes of personal data
carrying ~25 bytes of metadata attribute payload (the Table 3 3.5x logical
space factor), a small pool of purposes/sharing partners, and the Figure 3a
TTL mix (20% short-term, 80% long-term).

The personal data of record *i* owned by user *u* is ``u:xxxxxx`` — owner-
prefixed so that response validators can check ownership invariants from
the data alone, even in concurrent runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.gdpr.record import PersonalRecord

DEFAULT_PURPOSES = (
    "ads", "2fa", "analytics", "recommend", "delivery", "billing",
    "research", "security",
)
DEFAULT_PARTIES = ("acme", "globex", "initech", "umbrella")
DEFAULT_DECISIONS = ("profiling", "credit-score")
DEFAULT_SOURCES = ("first-party", "third-party", "public-record")


def key_for(index: int) -> str:
    """Stable benchmark key for record ``index``."""
    return f"k{index:08d}"


def user_for(index: int, user_count: int) -> str:
    """Record -> owning customer mapping (round-robin, stable)."""
    return f"u{index % user_count:05d}"


@dataclass
class RecordCorpusConfig:
    """Knobs for the synthetic population."""

    record_count: int = 1000
    user_count: int = 100
    data_length: int = 10           # paper default: 10-byte personal data
    purposes: tuple = DEFAULT_PURPOSES
    parties: tuple = DEFAULT_PARTIES
    decisions: tuple = DEFAULT_DECISIONS
    sources: tuple = DEFAULT_SOURCES
    short_ttl_fraction: float = 0.2  # Figure 3a: 20% short-term keys
    short_ttl_seconds: float = 300.0          # 5 minutes
    long_ttl_seconds: float = 5 * 86400.0     # 5 days
    objection_fraction: float = 0.1
    decision_fraction: float = 0.2
    sharing_fraction: float = 0.25
    seed: int = 42

    def __post_init__(self):
        if self.record_count <= 0:
            raise ValueError("record_count must be positive")
        if self.user_count <= 0:
            raise ValueError("user_count must be positive")
        if not 0 <= self.short_ttl_fraction <= 1:
            raise ValueError("short_ttl_fraction must be in [0, 1]")


_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def _payload(rng: random.Random, user: str, length: int) -> str:
    """Owner-prefixed personal data of roughly ``length`` bytes."""
    prefix = user + ":"
    fill = max(1, length - len(prefix))
    return prefix + "".join(rng.choice(_ALPHABET) for _ in range(fill))


def make_record(index: int, config: RecordCorpusConfig, rng: random.Random) -> PersonalRecord:
    """One synthetic record, deterministic given (index, config, rng state)."""
    user = user_for(index, config.user_count)
    n_purposes = 1 if rng.random() < 0.7 else 2
    purposes = tuple(rng.sample(config.purposes, n_purposes))
    objections = ()
    if rng.random() < config.objection_fraction:
        candidates = [p for p in config.purposes if p not in purposes]
        if candidates:
            objections = (rng.choice(candidates),)
    decisions = ()
    if rng.random() < config.decision_fraction:
        decisions = (rng.choice(config.decisions),)
    shared = ()
    if rng.random() < config.sharing_fraction:
        shared = (rng.choice(config.parties),)
    ttl = (
        config.short_ttl_seconds
        if rng.random() < config.short_ttl_fraction
        else config.long_ttl_seconds
    )
    return PersonalRecord(
        key=key_for(index),
        data=_payload(rng, user, config.data_length),
        purposes=purposes,
        ttl_seconds=ttl,
        user=user,
        objections=objections,
        decisions=decisions,
        shared_with=shared,
        source=rng.choice(config.sources),
    )


def generate_corpus(config: RecordCorpusConfig) -> list[PersonalRecord]:
    """The full load-phase population."""
    rng = random.Random(config.seed)
    return [make_record(i, config, rng) for i in range(config.record_count)]


def logical_space_factor(records: list[PersonalRecord]) -> float:
    """Table 3's definitional ratio: (data + metadata bytes) / data bytes."""
    data = sum(r.data_bytes() for r in records)
    metadata = sum(r.metadata_bytes() for r in records)
    if data == 0:
        return 0.0
    return (data + metadata) / data
