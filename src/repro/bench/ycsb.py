"""YCSB core workloads (Cooper et al., SoCC 2010) — the traditional baseline.

The paper (Table 2, Section 6.1) runs the six standard mixes:

=========  =======================  =====================  ============
Workload   Operations               Application             Distribution
=========  =======================  =====================  ============
Load       100% insert              bulk DB insert          ordered
A          50/50 read/update        session store           zipfian
B          95/5 read/update         photo tagging           zipfian
C          100% read                user profile cache      zipfian
D          95/5 read/insert         user status update      latest
E          95/5 scan/insert         threaded conversation   zipfian
F          100% read-modify-write   user activity record    zipfian
=========  =======================  =====================  ============

Record shape follows YCSB defaults scaled down: 10 fields per record,
``field_length`` bytes each.  Operations are pre-generated (deterministic
from a seed) and handed to the runtime engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.distributions import (
    CounterGenerator,
    DiscreteGenerator,
    make_key_chooser,
)
from repro.common.errors import WorkloadError

from .operations import Operation, is_nonneg_int, is_optional_str

_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def ycsb_key(index: int) -> str:
    """YCSB-style key: zero-padded so lexicographic order == numeric."""
    return f"user{index:010d}"


@dataclass(frozen=True)
class YCSBSpec:
    """One workload's mix and request distribution."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    read_modify_write: float = 0.0
    distribution: str = "zipfian"
    max_scan_length: int = 100

    def __post_init__(self):
        total = self.read + self.update + self.insert + self.scan + self.read_modify_write
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"workload {self.name}: proportions sum to {total}")


#: The paper's Table 2 rows.
WORKLOADS: dict[str, YCSBSpec] = {
    "A": YCSBSpec("A", read=0.5, update=0.5, distribution="zipfian"),
    "B": YCSBSpec("B", read=0.95, update=0.05, distribution="zipfian"),
    "C": YCSBSpec("C", read=1.0, distribution="zipfian"),
    "D": YCSBSpec("D", read=0.95, insert=0.05, distribution="latest"),
    "E": YCSBSpec("E", scan=0.95, insert=0.05, distribution="zipfian"),
    "F": YCSBSpec("F", read_modify_write=1.0, distribution="zipfian"),
}


@dataclass
class YCSBConfig:
    record_count: int = 1000
    operation_count: int = 1000
    field_count: int = 10
    field_length: int = 100
    seed: int = 7


def make_fields(rng: random.Random, config: YCSBConfig) -> dict[str, str]:
    filler = "".join(rng.choice(_ALPHABET) for _ in range(config.field_length))
    return {f"field{i}": filler for i in range(config.field_count)}


def load_operations(config: YCSBConfig) -> list[Operation]:
    """The Load workload: 100% ordered inserts."""
    rng = random.Random(config.seed)
    ops = []
    for i in range(config.record_count):
        key = ycsb_key(i)
        fields = make_fields(rng, config)
        ops.append(
            Operation(
                name="insert",
                execute=lambda c, k=key, f=fields: c.ycsb_insert(k, f),
            )
        )
    return ops


def run_load(client, config: YCSBConfig) -> int:
    """Convenience: execute the load phase synchronously."""
    count = 0
    for op in load_operations(config):
        op.execute(client)
        count += 1
    return count


def transaction_operations(
    spec: YCSBSpec, config: YCSBConfig, insert_start: int | None = None
) -> list[Operation]:
    """Pre-generate the transaction phase for one workload.

    ``insert_start`` is the first unused key index; callers running several
    workloads against one database must advance it past prior inserts so
    insert keys stay unique (YCSB's transactioninsertkeysequence).
    """
    rng = random.Random(config.seed ^ hash(spec.name) & 0xFFFF)
    insert_counter = CounterGenerator(
        config.record_count if insert_start is None else insert_start
    )
    chooser = make_key_chooser(
        spec.distribution, 0, config.record_count - 1,
        rng=rng, insert_counter=insert_counter,
    )
    mix = DiscreteGenerator(rng=rng)
    for op_name, weight in (
        ("read", spec.read),
        ("update", spec.update),
        ("insert", spec.insert),
        ("scan", spec.scan),
        ("rmw", spec.read_modify_write),
    ):
        mix.add_value(op_name, weight)

    ops: list[Operation] = []
    for _ in range(config.operation_count):
        op_name = mix.next_value()
        if op_name == "insert":
            index = insert_counter.next_value()
            key = ycsb_key(index)
            fields = make_fields(rng, config)
            ops.append(Operation("insert", lambda c, k=key, f=fields: c.ycsb_insert(k, f)))
            continue
        index = chooser.next_value()
        key = ycsb_key(index)
        if op_name == "read":
            ops.append(Operation("read", lambda c, k=key: c.ycsb_read(k),
                                 validate=lambda r: r is None or isinstance(r, dict)))
        elif op_name == "update":
            fields = {"field0": "".join(rng.choice(_ALPHABET) for _ in range(config.field_length))}
            ops.append(Operation("update", lambda c, k=key, f=fields: c.ycsb_update(k, f),
                                 validate=is_nonneg_int))
        elif op_name == "scan":
            length = rng.randint(1, spec.max_scan_length)
            ops.append(Operation("scan", lambda c, k=key, n=length: c.ycsb_scan(k, n),
                                 validate=lambda r: isinstance(r, list)))
        else:  # read-modify-write
            fields = {"field0": "".join(rng.choice(_ALPHABET) for _ in range(config.field_length))}
            ops.append(Operation("rmw", lambda c, k=key, f=fields: c.ycsb_read_modify_write(k, f),
                                 validate=is_nonneg_int))
    return ops
