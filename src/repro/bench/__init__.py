"""GDPRbench + YCSB: workloads, runtime engine, metrics."""

from .gdpr_workloads import (
    CONTROLLER,
    CORE_WORKLOADS,
    CUSTOMER,
    GDPRWorkloadSpec,
    PROCESSOR,
    REGULATOR,
    make_operations,
)
from .operations import Operation
from .records import (
    RecordCorpusConfig,
    generate_corpus,
    key_for,
    logical_space_factor,
    make_record,
    user_for,
)
from .runtime import RunReport, run_workload
from .session import (
    GDPRBenchConfig,
    GDPRBenchSession,
    YCSBSession,
    YCSBSessionConfig,
)
from .ycsb import (
    WORKLOADS as YCSB_WORKLOADS,
    YCSBConfig,
    YCSBSpec,
    load_operations,
    run_load,
    transaction_operations,
    ycsb_key,
)

__all__ = [
    "Operation",
    "RecordCorpusConfig",
    "generate_corpus",
    "make_record",
    "key_for",
    "user_for",
    "logical_space_factor",
    "GDPRWorkloadSpec",
    "CORE_WORKLOADS",
    "CONTROLLER",
    "CUSTOMER",
    "PROCESSOR",
    "REGULATOR",
    "make_operations",
    "RunReport",
    "run_workload",
    "GDPRBenchConfig",
    "GDPRBenchSession",
    "YCSBSession",
    "YCSBSessionConfig",
    "YCSBConfig",
    "YCSBSpec",
    "YCSB_WORKLOADS",
    "load_operations",
    "run_load",
    "transaction_operations",
    "ycsb_key",
]
