"""Operation descriptors produced by workload generators.

The runtime engine executes :class:`Operation` objects: each knows its
taxonomy name, how to run itself against a client, and how to validate the
response (the correctness metric of Section 4.2.3).  Validators check
invariants that hold even under concurrent mutation — e.g. every datum
returned by READ-DATA-BY-USR must be owner-prefixed with the requested
user — so correctness is exact for single-threaded runs and sound (no
false failures) for multi-threaded ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Operation:
    """One benchmark operation: name + executor + response validator."""

    name: str
    execute: Callable  # (client) -> response
    validate: Callable = field(default=lambda response: True)

    def run(self, client) -> tuple[object, bool]:
        response = self.execute(client)
        return response, bool(self.validate(response))


# ---------------------------------------------------------------------------
# Shared validators
# ---------------------------------------------------------------------------

def is_nonneg_int(response) -> bool:
    return isinstance(response, int) and response >= 0


def is_bool(response) -> bool:
    return isinstance(response, bool)


def is_optional_str(response) -> bool:
    return response is None or isinstance(response, str)


def data_owned_by(user: str) -> Callable:
    """READ-DATA-BY-USR invariant: all rows owner-prefixed with ``user``."""
    prefix = user + ":"

    def check(response) -> bool:
        return isinstance(response, list) and all(
            isinstance(pair, tuple) and len(pair) == 2 and pair[1].startswith(prefix)
            for pair in response
        )

    return check


def metadata_user_is(user: str) -> Callable:
    """READ-METADATA-BY-USR invariant: every USR equals ``user``."""

    def check(response) -> bool:
        return isinstance(response, list) and all(
            metadata.get("USR") == user for _, metadata in response
        )

    return check


def metadata_shared_with(party: str) -> Callable:
    """READ-METADATA-BY-SHR invariant: every SHR contains ``party``."""

    def check(response) -> bool:
        return isinstance(response, list) and all(
            party in metadata.get("SHR", ()) for _, metadata in response
        )

    return check


def metadata_for_key(key: str) -> Callable:
    """READ-METADATA-BY-KEY: absent, or a dict with all seven attributes."""

    def check(response) -> bool:
        if response is None:
            return True
        return isinstance(response, dict) and set(response) == {
            "PUR", "TTL", "USR", "OBJ", "DEC", "SHR", "SRC"
        }

    return check


def is_pair_list(response) -> bool:
    return isinstance(response, list) and all(
        isinstance(pair, tuple) and len(pair) == 2 for pair in response
    )
