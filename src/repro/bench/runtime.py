"""The benchmark runtime engine: threads + stats (reused YCSB machinery).

GDPRbench keeps YCSB's runtime engine (Figure 2b) — a pool of client
threads draining a shared operation stream while a stats collector records
per-operation latencies.  :func:`run_workload` reproduces that: operations
are pre-generated (deterministic), threads pull them off a queue, and the
result is a :class:`RunReport` carrying the three GDPRbench metrics —
correctness, completion time, and space overhead (Section 4.2.3).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import BenchmarkError
from repro.common.stats import StatsCollector

from .operations import Operation


@dataclass
class RunReport:
    """Everything one workload run produced."""

    workload: str
    engine: str
    operations: int
    correct: int
    failed: int
    completion_time_s: float
    stats: StatsCollector
    space_overhead: float | None = None

    @property
    def correctness_pct(self) -> float:
        """Section 4.2.3: % of responses matching expectations."""
        if self.operations == 0:
            return 100.0
        return 100.0 * self.correct / self.operations

    @property
    def throughput_ops_s(self) -> float:
        if self.completion_time_s <= 0:
            return 0.0
        return self.operations / self.completion_time_s

    def summary(self) -> dict:
        return {
            "workload": self.workload,
            "engine": self.engine,
            "operations": self.operations,
            "correctness_pct": round(self.correctness_pct, 3),
            "completion_time_s": round(self.completion_time_s, 6),
            "throughput_ops_s": round(self.throughput_ops_s, 2),
            "space_overhead": (
                round(self.space_overhead, 3) if self.space_overhead is not None else None
            ),
            "per_operation": self.stats.summary()["operations"],
        }


def run_workload(
    client,
    operations: list[Operation],
    threads: int = 1,
    workload_name: str = "unnamed",
    measure_space: bool = False,
    batch_size: int = 1,
) -> RunReport:
    """Execute pre-generated operations against ``client`` with a thread pool.

    Exceptions raised by an operation count as failures (and incorrect
    responses), mirroring how YCSB tallies errored operations; the run
    itself always completes.

    ``batch_size > 1`` enables command pipelining, uniformly across
    engines: when the client's ``pipeline()`` factory yields a
    :class:`~repro.clients.base.GDPRPipeline` (rather than None) and the
    operation is declared batchable (its name is in
    ``client.PIPELINE_OP_NAMES``), each worker drains up to ``batch_size``
    operations, queues them on one pipeline, and executes the batch as a
    single round-trip.  Non-batchable operations flush the pending batch
    and run singly, so mixed workloads stay correct.  Batch latency is
    apportioned evenly across its operations.
    """
    if threads < 1:
        raise BenchmarkError("need at least one thread")
    if batch_size < 1:
        raise BenchmarkError("batch_size must be >= 1")
    stats = StatsCollector()
    correct_lock = threading.Lock()
    tally = {"correct": 0, "failed": 0}

    # One probe decides batching support: any engine stub whose pipeline()
    # returns a real pipeline object batches through the shared contract.
    supports_pipelining = (
        batch_size > 1
        and hasattr(client, "pipeline")
        and client.pipeline() is not None
    )
    batchable_names = (
        getattr(client, "PIPELINE_OP_NAMES", frozenset())
        if supports_pipelining
        else frozenset()
    )

    # Pre-chunk pipelineable stretches so workers dequeue whole batches
    # (one queue round-trip per batch, preserving per-chunk issue order);
    # non-batchable operations stay single items.
    work: queue.SimpleQueue = queue.SimpleQueue()
    if batchable_names:
        chunk: list[Operation] = []
        for op in operations:
            if op.name in batchable_names:
                chunk.append(op)
                if len(chunk) >= batch_size:
                    work.put(chunk)
                    chunk = []
            else:
                if chunk:
                    work.put(chunk)
                    chunk = []
                work.put(op)
        if chunk:
            work.put(chunk)
    else:
        for op in operations:
            work.put(op)

    def tally_result(op: Operation, latency_us: float, ok: bool, error: bool) -> None:
        stats.record(op.name, latency_us, success=not error)
        with correct_lock:
            if ok:
                tally["correct"] += 1
            if error:
                tally["failed"] += 1

    def run_single(op: Operation) -> None:
        started = time.perf_counter()
        try:
            _, ok = op.run(client)
            error = False
        except Exception:
            ok = False
            error = True
        tally_result(op, (time.perf_counter() - started) * 1e6, ok, error)

    def run_batch(batch: list[Operation]) -> None:
        if len(batch) == 1:
            return run_single(batch[0])
        started = time.perf_counter()
        try:
            pipe = client.pipeline()
            for op in batch:
                op.execute(pipe)
            responses = pipe.execute()
            errored = False
        except Exception:
            responses = ()
            errored = True
        per_op_us = (time.perf_counter() - started) * 1e6 / len(batch)
        # One stats/tally update per operation type, not per operation.
        if errored:
            per_name: dict[str, int] = {}
            for op in batch:
                per_name[op.name] = per_name.get(op.name, 0) + 1
            for name, failed_count in per_name.items():
                stats.record_batch(name, per_op_us, 0, failed_count)
            with correct_lock:
                tally["failed"] += len(batch)
            return
        correct = 0
        per_name = {}
        for op, response in zip(batch, responses):
            per_name[op.name] = per_name.get(op.name, 0) + 1
            if op.validate(response):
                correct += 1
        for name, ok_count in per_name.items():
            stats.record_batch(name, per_op_us, ok_count)
        with correct_lock:
            tally["correct"] += correct

    def worker() -> None:
        while True:
            try:
                item = work.get_nowait()
            except queue.Empty:
                return
            if type(item) is list:
                run_batch(item)
            else:
                run_single(item)

    began = time.perf_counter()
    stats.start(0.0)
    if threads == 1:
        worker()
    else:
        pool = [threading.Thread(target=worker, daemon=True) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
    elapsed = time.perf_counter() - began
    stats.finish(elapsed)

    return RunReport(
        workload=workload_name,
        engine=getattr(client, "engine_name", "unknown"),
        operations=len(operations),
        correct=tally["correct"],
        failed=tally["failed"],
        completion_time_s=elapsed,
        stats=stats,
        space_overhead=client.space_overhead() if measure_space else None,
    )


def run_thread_sweep(
    client_factory,
    operations_factory,
    thread_counts=(1, 2, 4, 8),
    batch_size: int = 1,
    workload_name: str = "sweep",
) -> list[RunReport]:
    """Run the same workload across a thread-count sweep (Figure 7 style).

    ``client_factory()`` builds (and loads) a fresh client per point so
    runs don't contaminate each other; ``operations_factory(client)``
    returns the pre-generated operation list for that client.  Returns one
    :class:`RunReport` per thread count, in order.
    """
    reports = []
    for threads in thread_counts:
        client = client_factory()
        try:
            operations = operations_factory(client)
            reports.append(
                run_workload(
                    client,
                    operations,
                    threads=threads,
                    workload_name=f"{workload_name}@{threads}t",
                    batch_size=batch_size,
                )
            )
        finally:
            client.close()
    return reports
