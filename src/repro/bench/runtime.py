"""The benchmark runtime engine: threads + stats (reused YCSB machinery).

GDPRbench keeps YCSB's runtime engine (Figure 2b) — a pool of client
threads draining a shared operation stream while a stats collector records
per-operation latencies.  :func:`run_workload` reproduces that: operations
are pre-generated (deterministic), threads pull them off a queue, and the
result is a :class:`RunReport` carrying the three GDPRbench metrics —
correctness, completion time, and space overhead (Section 4.2.3).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import BenchmarkError
from repro.common.stats import StatsCollector

from .operations import Operation


@dataclass
class RunReport:
    """Everything one workload run produced."""

    workload: str
    engine: str
    operations: int
    correct: int
    failed: int
    completion_time_s: float
    stats: StatsCollector
    space_overhead: float | None = None

    @property
    def correctness_pct(self) -> float:
        """Section 4.2.3: % of responses matching expectations."""
        if self.operations == 0:
            return 100.0
        return 100.0 * self.correct / self.operations

    @property
    def throughput_ops_s(self) -> float:
        if self.completion_time_s <= 0:
            return 0.0
        return self.operations / self.completion_time_s

    def summary(self) -> dict:
        return {
            "workload": self.workload,
            "engine": self.engine,
            "operations": self.operations,
            "correctness_pct": round(self.correctness_pct, 3),
            "completion_time_s": round(self.completion_time_s, 6),
            "throughput_ops_s": round(self.throughput_ops_s, 2),
            "space_overhead": (
                round(self.space_overhead, 3) if self.space_overhead is not None else None
            ),
            "per_operation": self.stats.summary()["operations"],
        }


def run_workload(
    client,
    operations: list[Operation],
    threads: int = 1,
    workload_name: str = "unnamed",
    measure_space: bool = False,
) -> RunReport:
    """Execute pre-generated operations against ``client`` with a thread pool.

    Exceptions raised by an operation count as failures (and incorrect
    responses), mirroring how YCSB tallies errored operations; the run
    itself always completes.
    """
    if threads < 1:
        raise BenchmarkError("need at least one thread")
    stats = StatsCollector()
    work: queue.SimpleQueue = queue.SimpleQueue()
    for op in operations:
        work.put(op)
    correct_lock = threading.Lock()
    tally = {"correct": 0, "failed": 0}

    def worker() -> None:
        while True:
            try:
                op = work.get_nowait()
            except queue.Empty:
                return
            started = time.perf_counter()
            try:
                _, ok = op.run(client)
                error = False
            except Exception:
                ok = False
                error = True
            latency_us = (time.perf_counter() - started) * 1e6
            stats.record(op.name, latency_us, success=not error)
            with correct_lock:
                if ok:
                    tally["correct"] += 1
                if error:
                    tally["failed"] += 1

    began = time.perf_counter()
    stats.start(0.0)
    if threads == 1:
        worker()
    else:
        pool = [threading.Thread(target=worker, daemon=True) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
    elapsed = time.perf_counter() - began
    stats.finish(elapsed)

    return RunReport(
        workload=workload_name,
        engine=getattr(client, "engine_name", "unknown"),
        operations=len(operations),
        correct=tally["correct"],
        failed=tally["failed"],
        completion_time_s=elapsed,
        stats=stats,
        space_overhead=client.space_overhead() if measure_space else None,
    )
