"""minisql — the PostgreSQL-like relational engine (the paper's RDBMS).

One :class:`Database` owns a catalog, heap tables, secondary indices, an
optional write-ahead log, an optional csvlog statement/audit log, and the
TTL sweeper daemons.  The GDPR retrofit switches map onto the paper's
Section 5.2 changes:

* ``encryption_at_rest`` — the persistence files (WAL, csvlog) are
  encrypted at the disk boundary, the LUKS analogue; buffer-cache pages
  (the in-memory heap) stay plaintext exactly as they do on a dm-crypt
  volume, and the in-transit half lives in the client stub (SSL analogue).
* ``csvlog_path`` + ``log_statements`` — statement logging incl. SELECT
  responses (csvlog + row-level-security policy).
* ``enable_ttl()`` — expiry-timestamp column + 1-second sweeper daemon.
* ``create_index()`` — metadata indexing via secondary B-tree / inverted
  indices (Figure 3b / Figure 5c).

Statements take programmatic predicate trees (:mod:`repro.minisql.expr`);
a tiny SQL front-end in :mod:`repro.minisql.sql` parses text for examples.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.common.clock import Clock, SystemClock
from repro.common.errors import CatalogError, ConstraintError, SQLError
from repro.crypto.luks import FileCipher

from . import wal as wal_mod
from .btree import BTreeIndex, InvertedIndex
from .csvlog import CSVLogger
from .expr import ALWAYS, Expr
from .heap import HeapTable
from .planner import Plan, plan_scan
from .schema import Catalog, Column, IndexInfo, TableSchema
from .ttl_daemon import TTLSweeper
from .types import TEXT_LIST, type_by_name


@dataclass
class MiniSQLConfig:
    """Feature switches for the GDPR retrofit (defaults = stock engine)."""

    encryption_at_rest: bool = False
    wal_path: str | None = None
    fsync: str = "everysec"
    csvlog_path: str | None = None
    log_statements: bool = False   # also log SELECTs + their responses
    ttl_interval: float = 1.0

    def gdpr_features(self, has_indices: bool, has_ttl: bool) -> dict[str, bool]:
        return {
            "encryption": self.encryption_at_rest,
            "timely_deletion": has_ttl,
            "monitoring": self.csvlog_path is not None and self.log_statements,
            "metadata_indexing": has_indices,
            "access_control": False,  # enforced in the client, as in the paper
        }


#: max serialised response bytes embedded in one SELECT audit line
_SELECT_AUDIT_CAP = 4096


class Database:
    """A single-node relational database instance."""

    def __init__(self, config: MiniSQLConfig | None = None, clock: Clock | None = None) -> None:
        self.config = config or MiniSQLConfig()
        self.clock = clock or SystemClock()
        self.catalog = Catalog()
        self._heaps: dict[str, HeapTable] = {}
        self._indices: dict[str, BTreeIndex | InvertedIndex] = {}
        self._sweepers: dict[str, TTLSweeper] = {}
        self._lock = threading.RLock()
        self._statements = 0
        self._file_cipher = FileCipher() if self.config.encryption_at_rest else None
        self.csvlog: CSVLogger | None = None
        if self.config.csvlog_path is not None:
            self.csvlog = CSVLogger(
                self.config.csvlog_path,
                log_reads=self.config.log_statements,
                clock=self.clock,
                cipher=self._file_cipher,
            )
        self._wal: wal_mod.WALWriter | None = None
        self._replaying = False
        if self.config.wal_path is not None:
            self._replay(self.config.wal_path)
            self._wal = wal_mod.WALWriter(
                self.config.wal_path, fsync=self.config.fsync, clock=self.clock,
                cipher=self._file_cipher,
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    #: autovacuum fires when dead tuples exceed threshold + scale * live
    #: (PostgreSQL's defaults).
    AUTOVACUUM_THRESHOLD = 50
    AUTOVACUUM_SCALE = 0.2

    def _begin(self, internal: bool = False) -> None:
        self._statements += 1
        if internal or self._replaying:
            return
        now = self.clock.now()
        for sweeper in self._sweepers.values():
            if sweeper.due(now):
                sweeper.run(now)
        for name, heap in self._heaps.items():
            if heap.dead_count > self.AUTOVACUUM_THRESHOLD + self.AUTOVACUUM_SCALE * heap.live_count:
                heap.vacuum()
                self._log_wal(("vacuum", name))

    def _log_wal(self, record: tuple) -> None:
        if self._wal is not None and not self._replaying:
            self._wal.append(record)

    def _log_csv(self, kind: str, table: str, detail: str, rows: int) -> None:
        if self.csvlog is not None and not self._replaying:
            self.csvlog.log(kind, table, detail, rows)

    def _heap(self, table: str) -> HeapTable:
        self.catalog.table(table)  # raises CatalogError for unknown tables
        return self._heaps[table]

    def _index_add(self, table: str, row: tuple, rid: int) -> None:
        schema = self.catalog.table(table)
        for info in self.catalog.indices_for(table):
            key = row[schema.column_index(info.column)]
            self._indices[info.name].insert(key, rid)

    def _index_remove(self, table: str, row: tuple, rid: int) -> None:
        schema = self.catalog.table(table)
        for info in self.catalog.indices_for(table):
            key = row[schema.column_index(info.column)]
            self._indices[info.name].remove(key, rid)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str | None = None,
    ) -> None:
        with self._lock:
            self._begin(internal=True)
            schema = TableSchema(name, list(columns), primary_key)
            self.catalog.add_table(schema)
            self._heaps[name] = HeapTable(schema)
            self._log_wal(
                (
                    "create_table",
                    name,
                    [(c.name, c.type.name, c.nullable) for c in columns],
                    primary_key,
                )
            )
            if primary_key is not None:
                self.create_index(f"{name}_pkey", name, primary_key, unique=True)
            self._log_csv("DDL", name, "CREATE TABLE", 0)

    def drop_table(self, name: str) -> None:
        with self._lock:
            self._begin(internal=True)
            for info in self.catalog.indices_for(name):
                self._indices.pop(info.name, None)
            self.catalog.drop_table(name)
            self._heaps.pop(name, None)
            self._sweepers.pop(name, None)
            self._log_wal(("drop_table", name))
            self._log_csv("DDL", name, "DROP TABLE", 0)

    def create_index(self, name: str, table: str, column: str, unique: bool = False) -> None:
        """Create a secondary index; kind is inferred from the column type.

        TEXT_LIST columns get an inverted (GIN-like) index; everything else
        a B-tree.  The index is built immediately from the existing heap.
        """
        with self._lock:
            self._begin(internal=True)
            schema = self.catalog.table(table)
            col = schema.column(column)
            kind = "inverted" if col.type is TEXT_LIST else "btree"
            if kind == "inverted" and unique:
                raise CatalogError("inverted indices cannot be UNIQUE")
            info = IndexInfo(name=name, table=table, column=column, kind=kind, unique=unique)
            self.catalog.add_index(info)
            index: BTreeIndex | InvertedIndex
            index = InvertedIndex() if kind == "inverted" else BTreeIndex(unique=unique)
            col_idx = schema.column_index(column)
            for rid, row in self._heaps[table].scan():
                index.insert(row[col_idx], rid)
            self._indices[name] = index
            self._log_wal(("create_index", name, table, column, unique))
            self._log_csv("DDL", table, f"CREATE INDEX {name} ON {table}({column})", 0)

    def drop_index(self, name: str) -> None:
        with self._lock:
            self._begin(internal=True)
            info = self.catalog.drop_index(name)
            self._indices.pop(name, None)
            self._log_wal(("drop_index", name))
            self._log_csv("DDL", info.table, f"DROP INDEX {name}", 0)

    def enable_ttl(self, table: str, column: str, interval: float | None = None) -> TTLSweeper:
        """Attach the timely-deletion daemon to ``table.column``."""
        with self._lock:
            schema = self.catalog.table(table)
            schema.column_index(column)  # validate
            sweeper = TTLSweeper(
                self, table, column,
                interval=self.config.ttl_interval if interval is None else interval,
            )
            self._sweepers[table] = sweeper
            return sweeper

    @property
    def ttl_enabled(self) -> bool:
        return bool(self._sweepers)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert(self, table: str, values: Mapping[str, object], _internal: bool = False) -> int:
        with self._lock:
            self._begin(internal=_internal)
            schema = self.catalog.table(table)
            row = schema.validate_row(dict(values))
            self._check_unique(table, schema, row, skip_rid=None)
            rid = self._heaps[table].insert(row)
            try:
                self._index_add(table, row, rid)
            except ConstraintError:
                self._heaps[table].delete(rid)
                raise
            self._log_wal(("insert", table, rid, row))
            self._log_csv("INSERT", table, schema.name, 1)
            return rid

    def _check_unique(self, table: str, schema: TableSchema, row: tuple, skip_rid: int | None) -> None:
        """Pre-check unique indices so a failed insert leaves no trace."""
        for info in self.catalog.indices_for(table):
            if not info.unique:
                continue
            key = row[schema.column_index(info.column)]
            if key is None:
                continue
            hits = [r for r in self._indices[info.name].search(key) if r != skip_rid]
            if hits:
                raise ConstraintError(
                    f"duplicate key {key!r} violates unique index {info.name!r}"
                )

    def _plan_rows(self, plan: Plan) -> Iterable[tuple[int, tuple]]:
        """Yield candidate (rid, row) pairs for a plan, pre-residual."""
        heap = self._heaps[plan.table]
        if plan.kind == "seqscan":
            yield from heap.scan()
            return
        assert plan.index is not None
        index = self._indices[plan.index.name]
        if plan.op == "eq":
            rids: Iterable[int] = index.search(plan.value)
        elif plan.op == "contains":
            rids = index.search(plan.value)
        else:  # range
            assert isinstance(index, BTreeIndex)
            rids = [
                rid
                for _, rid in index.range_scan(
                    plan.lo, plan.hi, inclusive=(plan.lo_inclusive, plan.hi_inclusive)
                )
            ]
        for rid in rids:
            row = heap.fetch(rid)
            if row is not None:
                yield rid, row

    def _matching(self, table: str, where: Expr | None) -> list[tuple[int, tuple]]:
        plan = plan_scan(self.catalog, table, where)
        schema = self.catalog.table(table)
        predicate = where if where is not None else ALWAYS
        return [
            (rid, row)
            for rid, row in self._plan_rows(plan)
            if predicate.evaluate(row, schema)
        ]

    def select(
        self,
        table: str,
        where: Expr | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
        order_by: str | None = None,
        descending: bool = False,
        _internal: bool = False,
    ) -> list[dict]:
        """Run a query; returns a list of column->value dicts."""
        with self._lock:
            self._begin(internal=_internal)
            schema = self.catalog.table(table)
            names = list(columns) if columns is not None else schema.column_names()
            for name in names:
                schema.column_index(name)  # validate projection
            matches = self._matching(table, where)
            if order_by is not None:
                key_idx = schema.column_index(order_by)
                matches.sort(key=lambda pair: (pair[1][key_idx] is None, pair[1][key_idx]), reverse=descending)
            if limit is not None:
                matches = matches[:limit]
            out = [
                {name: row[schema.column_index(name)] for name in names}
                for _, row in matches
            ]
            if self.csvlog is not None and self.csvlog.log_reads:
                # The paper's row-level-security policy records query
                # *responses*, not just statements: a breach report must
                # say which personal data was exposed (G 33(3a)).  The
                # response payload is serialised into the audit line,
                # capped so a huge export cannot blow up one log record.
                plan_text = plan_scan(self.catalog, table, where).describe()
                detail = plan_text + " -> " + repr(out)[:_SELECT_AUDIT_CAP]
                self._log_csv("SELECT", table, detail, len(out))
            return out

    def count(self, table: str, where: Expr | None = None) -> int:
        with self._lock:
            self._begin()  # a user statement: sweepers/autovacuum may run
            return len(self._matching(table, where))

    #: aggregate name -> (fold over non-NULL values)
    _AGGREGATES = {
        "count": lambda values: len(values),
        "sum": lambda values: sum(values) if values else None,
        "min": lambda values: min(values) if values else None,
        "max": lambda values: max(values) if values else None,
        "avg": lambda values: (sum(values) / len(values)) if values else None,
    }

    def aggregate(
        self,
        table: str,
        function: str,
        column: str | None = None,
        where: Expr | None = None,
        group_by: str | None = None,
    ):
        """COUNT/SUM/MIN/MAX/AVG, optionally grouped by one column.

        ``column=None`` is COUNT(*) semantics (rows, not values).  Without
        ``group_by`` returns a scalar; with it, a dict of group -> value.
        Regulators use this for census queries — e.g. records held per
        customer — without ever touching personal data.
        """
        function = function.lower()
        if function not in self._AGGREGATES:
            raise SQLError(
                f"unknown aggregate {function!r}; choose from {sorted(self._AGGREGATES)}"
            )
        if column is None and function != "count":
            raise SQLError(f"{function.upper()} requires a column")
        with self._lock:
            self._begin()
            schema = self.catalog.table(table)
            col_idx = schema.column_index(column) if column is not None else None
            group_idx = schema.column_index(group_by) if group_by is not None else None
            fold = self._AGGREGATES[function]

            def values_of(rows):
                if col_idx is None:
                    return rows  # COUNT(*): count whole rows
                return [row[col_idx] for _, row in rows if row[col_idx] is not None]

            matches = self._matching(table, where)
            if group_idx is None:
                return fold(values_of(matches))
            groups: dict = {}
            for rid, row in matches:
                groups.setdefault(row[group_idx], []).append((rid, row))
            return {key: fold(values_of(rows)) for key, rows in groups.items()}

    def update(
        self,
        table: str,
        assignments: Mapping[str, object],
        where: Expr | None = None,
        _internal: bool = False,
    ) -> int:
        with self._lock:
            self._begin(internal=_internal)
            schema = self.catalog.table(table)
            validated = {
                name: schema.column(name).validate(value)
                for name, value in assignments.items()
            }
            heap = self._heaps[table]
            changed = 0
            # MVCC-style update: the new row version is a fresh tuple at a
            # new rid, so every index on the table must be maintained (no
            # HOT optimisation) and the old version leaves a dead tuple
            # until vacuum — PostgreSQL's cost model for Figure 3b.
            for rid, row in self._matching(table, where):
                new_row = list(row)
                for name, value in validated.items():
                    new_row[schema.column_index(name)] = value
                new_tuple = tuple(new_row)
                self._check_unique(table, schema, new_tuple, skip_rid=rid)
                self._index_remove(table, row, rid)
                heap.delete(rid)
                self._log_wal(("delete", table, rid))
                new_rid = heap.insert(new_tuple)
                self._index_add(table, new_tuple, new_rid)
                self._log_wal(("insert", table, new_rid, new_tuple))
                changed += 1
            self._log_csv("UPDATE", table, repr(sorted(assignments)), changed)
            return changed

    def delete(self, table: str, where: Expr | None = None, _internal: bool = False) -> int:
        with self._lock:
            self._begin(internal=_internal)
            heap = self._heaps[table]
            removed = 0
            for rid, row in self._matching(table, where):
                self._index_remove(table, row, rid)
                heap.delete(rid)
                self._log_wal(("delete", table, rid))
                removed += 1
            self._log_csv("DELETE", table, repr(where), removed)
            return removed

    def vacuum(self, table: str | None = None) -> int:
        with self._lock:
            self._begin(internal=True)
            tables = [table] if table is not None else self.catalog.tables()
            reclaimed = 0
            for name in tables:
                reclaimed += self._heap(name).vacuum()
                self._log_wal(("vacuum", name))
            return reclaimed

    def explain(self, table: str, where: Expr | None = None) -> str:
        with self._lock:
            return plan_scan(self.catalog, table, where).describe()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def table_stats(self, table: str) -> dict:
        with self._lock:
            heap = self._heap(table)
            index_bytes = {
                info.name: self._indices[info.name].size_bytes()
                for info in self.catalog.indices_for(table)
            }
            return {
                "live_rows": heap.live_count,
                "dead_rows": heap.dead_count,
                "heap_bytes": heap.total_bytes(),
                "index_bytes": index_bytes,
                "total_bytes": heap.total_bytes() + sum(index_bytes.values()),
            }

    def disk_usage(self) -> dict:
        """Total footprint: heaps + indices + WAL + csvlog (Table 3)."""
        with self._lock:
            heap_bytes = sum(h.total_bytes() for h in self._heaps.values())
            index_bytes = sum(i.size_bytes() for i in self._indices.values())
            wal_bytes = self._wal.size_bytes() if self._wal else 0
            log_bytes = self.csvlog.size_bytes() if self.csvlog else 0
            return {
                "heap_bytes": heap_bytes,
                "index_bytes": index_bytes,
                "wal_bytes": wal_bytes,
                "csvlog_bytes": log_bytes,
                "total_bytes": heap_bytes + index_bytes + wal_bytes + log_bytes,
            }

    def info(self) -> dict:
        with self._lock:
            return {
                "tables": self.catalog.tables(),
                "statements": self._statements,
                "gdpr_features": self.config.gdpr_features(
                    has_indices=any(
                        not info.name.endswith("_pkey")
                        for t in self.catalog.tables()
                        for info in self.catalog.indices_for(t)
                    ),
                    has_ttl=self.ttl_enabled,
                ),
                "disk_usage": self.disk_usage(),
            }

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _replay(self, path: str) -> None:
        """Rebuild state from the WAL (crash recovery)."""
        records = wal_mod.load_wal(path, cipher=self._file_cipher)
        if not records:
            return
        self._replaying = True
        try:
            for record in records:
                op = record[0]
                if op == "create_table":
                    _, name, cols, pk = record
                    columns = [
                        Column(cname, type_by_name(tname), nullable)
                        for cname, tname, nullable in cols
                    ]
                    self.create_table(name, columns, primary_key=pk)
                elif op == "drop_table":
                    self.drop_table(record[1])
                elif op == "create_index":
                    _, name, table, column, unique = record
                    if name not in {i.name for t in self.catalog.tables() for i in self.catalog.indices_for(t)}:
                        self.create_index(name, table, column, unique=unique)
                elif op == "drop_index":
                    self.drop_index(record[1])
                elif op == "insert":
                    _, table, rid, row = record
                    heap = self._heaps[table]
                    got = heap.insert(row)
                    if got != rid:
                        raise SQLError(
                            f"WAL replay divergence on {table}: rid {got} != {rid}"
                        )
                    self._index_add(table, row, rid)
                elif op == "update":
                    _, table, rid, row = record
                    heap = self._heaps[table]
                    old = heap.fetch(rid)
                    if old is None:
                        raise SQLError(f"WAL replay: update of missing rid {rid}")
                    self._index_remove(table, old, rid)
                    heap.update(rid, row)
                    self._index_add(table, row, rid)
                elif op == "delete":
                    _, table, rid = record
                    heap = self._heaps[table]
                    old = heap.fetch(rid)
                    if old is None:
                        raise SQLError(f"WAL replay: delete of missing rid {rid}")
                    self._index_remove(table, old, rid)
                    heap.delete(rid)
                elif op == "vacuum":
                    self._heaps[record[1]].vacuum()
                else:
                    raise SQLError(f"unknown WAL record {op!r}")
        finally:
            self._replaying = False

    def close(self) -> None:
        with self._lock:
            if self._wal is not None:
                self._wal.close()
            if self.csvlog is not None:
                self.csvlog.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
