"""minisql — the PostgreSQL-like relational engine (the paper's RDBMS).

One :class:`Database` composes the engine's three layers:

* :class:`~repro.minisql.storage.Storage` — catalog, heap tables,
  secondary indices, the write-ahead log (with group commit), and the
  per-scope :class:`~repro.minisql.storage.WriteSession` undo logs;
* :class:`~repro.minisql.executor.Executor` — plan → rows: access-path
  selection (cached by predicate shape), residual filtering, projection,
  the MVCC write protocol, and snapshot-visibility reads;
* :class:`~repro.minisql.transaction.LockManager` /
  :class:`~repro.minisql.transaction.Transaction` — per-table
  reader-writer locking, the seed's single global lock, or MVCC
  (lock-free snapshot reads + writer-only table locks), plus
  ``begin()/commit()/rollback()`` statement batches with one WAL fsync
  per commit.

The facade keeps the seed's public statement surface and adds
:meth:`begin` / :meth:`transaction` for batched execution and
:meth:`snapshot_reader` for a lock-free read-only statement surface at
one MVCC snapshot.  The GDPR retrofit switches map onto the paper's
Section 5.2 changes:

* ``encryption_at_rest`` — the persistence files (WAL, csvlog) are
  encrypted at the disk boundary, the LUKS analogue; buffer-cache pages
  (the in-memory heap) stay plaintext exactly as they do on a dm-crypt
  volume, and the in-transit half lives in the client stub (SSL analogue).
* ``csvlog_path`` + ``log_statements`` — statement logging incl. SELECT
  responses (csvlog + row-level-security policy).
* ``enable_ttl()`` — expiry-timestamp column + 1-second sweeper daemon
  (which also runs the version vacuum for its table).
* ``create_index()`` — metadata indexing via secondary B-tree / inverted
  indices (Figure 3b / Figure 5c).

Statements take programmatic predicate trees (:mod:`repro.minisql.expr`);
a tiny SQL front-end in :mod:`repro.minisql.sql` parses text for examples
and offers ``execute_batch`` for pipelined statement streams.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.common.clock import Clock, SystemClock
from repro.common.errors import CatalogError, ConfigurationError
from repro.crypto.luks import FileCipher

from .csvlog import CSVLogger
from .executor import Executor
from .expr import Cmp, Expr
from .mvcc import CommitClock, SnapshotManager
from .planner import Plan
from .schema import Column
from .storage import Storage
from .transaction import LockManager, Transaction
from .ttl_daemon import TTLSweeper


@dataclass
class MiniSQLConfig:
    """Feature switches for the GDPR retrofit (defaults = stock engine).

    Every default preserves the paper's measured behaviour; the non-default
    settings are this repo's scaling retrofits.
    """

    #: Default ``False`` — plaintext persistence, the paper's stock
    #: PostgreSQL.  ``True`` seals rows, WAL, and csvlog at the disk
    #: boundary (the LUKS retrofit of Section 5.2).
    encryption_at_rest: bool = False
    #: Default ``None`` — no write-ahead log, the in-memory baseline every
    #: figure measures unless durability is under test.  A path arms WAL
    #: logging + crash recovery by replay.
    wal_path: str | None = None
    #: Default ``"everysec"`` — PostgreSQL-style background flush cadence;
    #: ``"always"`` fsyncs per record (or per group, see
    #: ``wal_batch_size``), ``"no"`` leaves flushing to close().
    fsync: str = "everysec"
    #: Default ``None`` — no statement log.  A path arms the csvlog (the
    #: paper's monitoring retrofit needs ``log_statements=True`` too).
    csvlog_path: str | None = None
    #: Default ``False`` — only writes are logged.  ``True`` also logs
    #: SELECTs with their response payloads (the row-level-security audit
    #: policy of Section 5.2 the monitoring feature measures).
    log_statements: bool = False
    #: Default ``1.0`` second — the paper's timely-deletion daemon period
    #: ("currently set to 1 sec").
    ttl_interval: float = 1.0
    #: Concurrency mode.  Default ``"table-rw"`` — per-table
    #: reader-writer locks (readers share, writers exclusive).
    #: ``"global"`` — the seed's single lock, kept as the benchmark
    #: baseline (the paper's single-session execution model).
    #: ``"mvcc"`` — snapshot-isolated lock-free reads + writer-only table
    #: locks + WAL-backed rollback (see docs/minisql-concurrency.md).
    #: Observable single-threaded results are identical in all modes.
    locking: str = "table-rw"
    #: WAL group commit (mirrors minikv's ``aof_batch_size``).  Default
    #: ``1`` — under ``fsync='always'`` every record pays its own fsync,
    #: the paper's per-statement durability cost; larger values amortise
    #: the fsync over that many records.  Transactions always commit with
    #: one fsync regardless.
    wal_batch_size: int = 1
    #: Worker-process count (mirrors ``MiniKVConfig.shards``).  Default
    #: ``1`` — the in-process engine, the paper's single-node execution
    #: model, byte-identical to the seed construction path.  ``> 1``
    #: selects the multi-process sharded deployment (rows partitioned by
    #: primary key; per-shard WAL/csvlog at ``<path>.shard<i>``) — built
    #: via :func:`repro.minisql.sharded.open_database`; the in-process
    #: facade itself rejects ``shards > 1``.
    shards: int = 1
    #: Default ``"pipe"`` — sharded workers talk over multiprocessing
    #: pipes (mirrors ``MiniKVConfig.transport``).  ``"tcp"`` carries the
    #: same protocol over sockets: without ``shard_addresses`` the router
    #: spawns local workers on ephemeral loopback ports; with them the
    #: workers are external ``tools/shard_server.py`` processes.  Ignored
    #: when ``shards == 1``.
    transport: str = "pipe"
    #: Default ``None`` — the router spawns its own workers.  A sequence
    #: of ``"host:port"`` strings (one per shard, ``transport="tcp"``
    #: only) connects to externally-run shard servers instead.
    shard_addresses: tuple | None = None
    #: Default ``None`` → 64 — virtual nodes per shard on the consistent-
    #: hash ring placing rows (by primary key) on shards; the persisted
    #: topology's value wins on an already-resharded deployment (mirrors
    #: ``MiniKVConfig.ring_vnodes``).
    ring_vnodes: int | None = None

    def gdpr_features(self, has_indices: bool, has_ttl: bool) -> dict[str, bool]:
        return {
            "encryption": self.encryption_at_rest,
            "timely_deletion": has_ttl,
            "monitoring": self.csvlog_path is not None and self.log_statements,
            "metadata_indexing": has_indices,
            "access_control": False,  # enforced in the client, as in the paper
        }


#: max serialised response bytes embedded in one SELECT audit line
_SELECT_AUDIT_CAP = 4096


class SnapshotReader:
    """A read-only statement surface pinned to one snapshot.

    Obtained from :meth:`Database.snapshot_reader`.  Under MVCC every
    method reads the same commit-timestamp snapshot without taking any
    table lock — the batched GDPR metadata-scan path.  In the lock-based
    modes the reader degrades gracefully: each method takes the ordinary
    per-statement read lock and reads latest (there are no snapshots to
    pin).
    """

    def __init__(self, db: "Database", ts: int | None) -> None:
        self._db = db
        self._ts = ts

    def select(self, table: str, where: Expr | None = None,
               columns: Sequence[str] | None = None, limit: int | None = None,
               order_by: str | None = None, descending: bool = False) -> list[dict]:
        db = self._db
        if self._ts is not None:  # MVCC: the snapshot replaces the lock
            rows, plan = db._executor.select(
                table, where, columns=columns, limit=limit,
                order_by=order_by, descending=descending, at=self._ts,
            )
            db._audit_select(table, rows, plan)
            return rows
        with db._locks.read(table):
            rows, plan = db._executor.select(
                table, where, columns=columns, limit=limit,
                order_by=order_by, descending=descending, at=None,
            )
            db._audit_select(table, rows, plan)
        return rows

    def select_point(self, table: str, column: str, value,
                     columns: Sequence[str] | None = None) -> list[dict]:
        db = self._db
        if self._ts is not None:
            rows = db._executor.select_point(
                table, column, value, columns=columns, at=self._ts
            )
        else:
            with db._locks.read(table):
                rows = db._executor.select_point(table, column, value, columns=columns)
        if db.csvlog is not None and db.csvlog.log_reads:
            # same audit contract as Transaction.select_point: batched
            # point reads must not drop out of the SELECT audit trail
            plan = db._executor.plan(table, Cmp(column, "=", value))
            db._audit_select(table, rows, plan)
        return rows

    def count(self, table: str, where: Expr | None = None) -> int:
        db = self._db
        if self._ts is not None:
            return db._executor.count(table, where, at=self._ts)
        with db._locks.read(table):
            return db._executor.count(table, where)

    def aggregate(self, table: str, function: str, column: str | None = None,
                  where: Expr | None = None, group_by: str | None = None):
        db = self._db
        if self._ts is not None:
            return db._executor.aggregate(
                table, function, column=column, where=where,
                group_by=group_by, at=self._ts,
            )
        with db._locks.read(table):
            return db._executor.aggregate(
                table, function, column=column, where=where, group_by=group_by,
            )


class Database:
    """A single-node relational database instance (layer facade)."""

    def __init__(self, config: MiniSQLConfig | None = None, clock: Clock | None = None) -> None:
        self.config = config or MiniSQLConfig()
        if self.config.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.config.shards > 1:
            raise ConfigurationError(
                "shards > 1 is the multi-process deployment; build it via "
                "repro.minisql.sharded.open_database"
            )
        self.clock = clock or SystemClock()
        self._file_cipher = FileCipher() if self.config.encryption_at_rest else None
        self._locks = LockManager(self.config.locking)  # validates the mode
        self._storage = Storage(
            wal_path=self.config.wal_path,
            fsync=self.config.fsync,
            wal_batch_size=self.config.wal_batch_size,
            cipher=self._file_cipher,
            clock=self.clock,
            mvcc=(self.config.locking == "mvcc"),
        )
        self._executor = Executor(self._storage, clock=self.clock)
        #: the MVCC machinery exists in every mode (lock-based modes simply
        #: never acquire snapshots, so the vacuum horizon stays unbounded)
        self._commit_clock = CommitClock()
        self._snapshots = SnapshotManager(self._commit_clock)
        #: reentrant: DDL statements nest (create_table -> pkey index)
        self._ddl_lock = threading.RLock()
        self._sweepers: dict[str, TTLSweeper] = {}
        self._statements = 0
        self._statements_lock = threading.Lock()
        self._in_maintenance = threading.local()
        self.csvlog: CSVLogger | None = None
        if self.config.csvlog_path is not None:
            self.csvlog = CSVLogger(
                self.config.csvlog_path,
                log_reads=self.config.log_statements,
                clock=self.clock,
                cipher=self._file_cipher,
            )

    # ------------------------------------------------------------------
    # Layer plumbing
    # ------------------------------------------------------------------

    @property
    def catalog(self):
        return self._storage.catalog

    #: autovacuum fires when dead tuples exceed threshold + scale * live
    #: (PostgreSQL's defaults).
    AUTOVACUUM_THRESHOLD = 50
    AUTOVACUUM_SCALE = 0.2

    def _count_statement(self) -> None:
        with self._statements_lock:
            self._statements += 1

    def _count_statements(self, n: int) -> None:
        """Batch form of the statement counter (one lock hop per batch)."""
        with self._statements_lock:
            self._statements += n

    def _on_statement(self, internal: bool = False) -> None:
        """Per-statement hook: count it, then run due maintenance.

        Maintenance runs *before* the statement's own table lock is
        acquired, so the sweeper's and autovacuum's write locks never nest
        inside a lock this thread already holds.
        """
        self._count_statement()
        if internal or self._storage.replaying:
            return
        self._maintain()

    def _maintain(self) -> None:
        """TTL sweeps + autovacuum; re-entry safe (sweeps issue statements).

        Runs against a snapshot of the sweeper/heap maps, so a concurrent
        ``drop_table`` can pull a table out from under it; a vanished
        table is simply skipped (the seed's global lock made this race
        impossible, and it must not surface as an error in whatever user
        statement happened to trigger maintenance).
        """
        if getattr(self._in_maintenance, "active", False):
            return
        self._in_maintenance.active = True
        try:
            now = self.clock.now()
            for sweeper in list(self._sweepers.values()):
                if sweeper.due(now):
                    try:
                        sweeper.run(now)
                    except CatalogError:
                        continue  # table dropped concurrently
            for name, heap in list(self._storage.heaps.items()):
                if heap.dead_count > self.AUTOVACUUM_THRESHOLD + self.AUTOVACUUM_SCALE * heap.live_count:
                    try:
                        self._vacuum_locked(name)
                    except CatalogError:
                        continue  # table dropped concurrently
        finally:
            self._in_maintenance.active = False

    def _vacuum_locked(self, table: str) -> int:
        """Write-locked, horizon-gated vacuum of one table (maintenance)."""
        with self._locks.write(table):
            return self._storage.vacuum_table(table, self._snapshots.horizon())

    def _log_csv(self, kind: str, table: str, detail: str, rows: int) -> None:
        if self.csvlog is not None and not self._storage.replaying:
            self.csvlog.log(kind, table, detail, rows)

    def _audit_select(self, table: str, rows: list[dict], plan: Plan) -> None:
        if self.csvlog is not None and self.csvlog.log_reads:
            # The paper's row-level-security policy records query
            # *responses*, not just statements: a breach report must
            # say which personal data was exposed (G 33(3a)).  The
            # response payload is serialised into the audit line,
            # capped so a huge export cannot blow up one log record.
            detail = plan.describe() + " -> " + repr(rows)[:_SELECT_AUDIT_CAP]
            self._log_csv("SELECT", table, detail, len(rows))

    # ------------------------------------------------------------------
    # Write sessions (commit stamping / statement scopes)
    # ------------------------------------------------------------------

    def _commit_session(self, session) -> None:
        """Stamp a write session's versions under one commit timestamp.

        Version stamps only carry meaning for MVCC snapshot readers; the
        lock-based modes skip the stamping pass (their deletes are marked
        dead immediately and nobody reads ``xmin``), keeping the seed's
        per-statement cost on the write hot path.
        """
        if not session.changes:
            return
        if self._locks.mode != "mvcc":
            session.changes.clear()
            return
        with self._commit_clock.committing() as ts:
            self._storage.commit_session(session, ts)

    @contextmanager
    def _write_scope(self, table: str):
        """One autocommit write statement: lock (+ session + stamp in MVCC).

        Under MVCC the statement runs in a write session so an error rolls
        it back (statement atomicity — pending version stamps must not
        leak) and a success stamps one commit timestamp.  The lock-based
        modes take just the write lock, exactly the seed's hot path: an
        autocommit statement there never rolls back (a failing statement's
        earlier row effects stand, the seed semantics), so the session
        bookkeeping would buy nothing.  Explicit transactions open
        sessions in every mode — that is where ``rollback()`` lives.
        """
        if self._locks.mode != "mvcc":
            with self._locks.write(table):
                yield
            return
        with self._locks.write(table):
            session = self._storage.begin_session()
            try:
                yield
            except BaseException:
                self._storage.rollback_session(session)
                raise
            else:
                self._commit_session(session)
            finally:
                self._storage.end_session(session)

    @contextmanager
    def _read_scope(self, table: str):
        """One autocommit read statement; yields the snapshot ts (or None).

        MVCC acquires a snapshot and takes **no lock**; the lock-based
        modes take the table's shared (or global) lock and read latest.
        """
        if self._locks.mode == "mvcc":
            ts = self._snapshots.acquire()
            try:
                yield ts
            finally:
                self._snapshots.release(ts)
        else:
            with self._locks.read(table):
                yield None

    @contextmanager
    def snapshot_reader(self, statements: int = 0):
        """A read-only statement surface pinned to one snapshot.

        Under MVCC the yielded :class:`SnapshotReader` runs every query
        lock-free at one commit-timestamp snapshot — the natural unit for
        a batched compliance scan (all reads of the batch observe one
        consistent state).  In lock-based modes it falls back to ordinary
        per-statement read locking.  ``statements`` is the batch's
        statement count, charged up front in one counter hop (maintenance
        also runs once, before the snapshot is taken, mirroring the
        per-statement hook).
        """
        if statements:
            self._count_statements(statements)
            if not self._storage.replaying:
                self._maintain()
        if self._locks.mode == "mvcc":
            ts = self._snapshots.acquire()
            try:
                yield SnapshotReader(self, ts)
            finally:
                self._snapshots.release(ts)
        else:
            yield SnapshotReader(self, None)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self, read: Sequence[str] = (), write: Sequence[str] = (),
              _internal: bool = False) -> Transaction:
        """Start a transaction holding the declared tables' locks.

        Statements on the returned :class:`Transaction` run without
        re-locking; ``commit()`` releases the locks after one WAL group
        commit, and ``rollback()`` undoes the batch via WAL-backed undo.
        Tables touched but not declared are locked on first use when that
        preserves ascending-name acquisition order (refused otherwise —
        see :class:`~repro.minisql.transaction.Transaction`).  Under MVCC
        the read set costs nothing: those tables are covered by the
        transaction's snapshot.
        """
        return Transaction(self, read=read, write=write, internal=_internal).begin()

    def transaction(self, read: Sequence[str] = (), write: Sequence[str] = (),
                    _internal: bool = False) -> Transaction:
        """Context-manager form of :meth:`begin` (commit on clean exit)."""
        return Transaction(self, read=read, write=write, internal=_internal)

    # ------------------------------------------------------------------
    # DDL (catalog lock above table locks; never inside a transaction)
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str | None = None,
    ) -> None:
        with self._ddl_lock:
            self._count_statement()
            self._storage.create_table(name, columns, primary_key)
            if primary_key is not None:
                self.create_index(f"{name}_pkey", name, primary_key, unique=True)
            self._log_csv("DDL", name, "CREATE TABLE", 0)

    def drop_table(self, name: str) -> None:
        with self._ddl_lock:
            self._count_statement()
            with self._locks.write(name):
                self._storage.drop_table(name)
            self._sweepers.pop(name, None)
            self._log_csv("DDL", name, "DROP TABLE", 0)

    def create_index(self, name: str, table: str, column: str, unique: bool = False) -> None:
        """Create a secondary index (built immediately from the heap)."""
        with self._ddl_lock:
            self._count_statement()
            with self._locks.write(table):
                self._storage.create_index(name, table, column, unique=unique)
            self._log_csv("DDL", table, f"CREATE INDEX {name} ON {table}({column})", 0)

    def drop_index(self, name: str) -> None:
        with self._ddl_lock:
            self._count_statement()
            info = self.catalog.index(name)
            with self._locks.write(info.table):
                self._storage.drop_index(name)
            self._log_csv("DDL", info.table, f"DROP INDEX {name}", 0)

    def enable_ttl(self, table: str, column: str, interval: float | None = None) -> TTLSweeper:
        """Attach the timely-deletion daemon to ``table.column``."""
        with self._ddl_lock:
            schema = self.catalog.table(table)
            schema.column_index(column)  # validate
            sweeper = TTLSweeper(
                self, table, column,
                interval=self.config.ttl_interval if interval is None else interval,
            )
            self._sweepers[table] = sweeper
            return sweeper

    @property
    def ttl_enabled(self) -> bool:
        return bool(self._sweepers)

    # ------------------------------------------------------------------
    # DML / queries (autocommit: one statement, one lock scope)
    # ------------------------------------------------------------------

    def insert(self, table: str, values: Mapping[str, object], _internal: bool = False) -> int:
        self._on_statement(internal=_internal)
        with self._write_scope(table):
            # audit lines are written inside the lock scope so the csvlog
            # order matches the apply order (the seed's guarantee — an
            # auditor replaying the log must reconstruct the final state)
            rid = self._executor.insert(table, values)
            self._log_csv("INSERT", table, table, 1)
        return rid

    def select(
        self,
        table: str,
        where: Expr | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
        order_by: str | None = None,
        descending: bool = False,
        _internal: bool = False,
    ) -> list[dict]:
        """Run a query; returns a list of column->value dicts."""
        self._on_statement(internal=_internal)
        with self._read_scope(table) as at:
            rows, plan = self._executor.select(
                table, where, columns=columns, limit=limit,
                order_by=order_by, descending=descending, at=at,
            )
            self._audit_select(table, rows, plan)
        return rows

    def count(self, table: str, where: Expr | None = None) -> int:
        self._on_statement()  # a user statement: sweepers/autovacuum may run
        with self._read_scope(table) as at:
            return self._executor.count(table, where, at=at)

    def aggregate(
        self,
        table: str,
        function: str,
        column: str | None = None,
        where: Expr | None = None,
        group_by: str | None = None,
    ):
        """COUNT/SUM/MIN/MAX/AVG, optionally grouped by one column.

        ``column=None`` is COUNT(*) semantics (rows, not values).  Without
        ``group_by`` returns a scalar; with it, a dict of group -> value.
        Regulators use this for census queries — e.g. records held per
        customer — without ever touching personal data.
        """
        self._on_statement()
        with self._read_scope(table) as at:
            return self._executor.aggregate(
                table, function, column=column, where=where, group_by=group_by,
                at=at,
            )

    def update(
        self,
        table: str,
        assignments: Mapping[str, object],
        where: Expr | None = None,
        _internal: bool = False,
    ) -> int:
        self._on_statement(internal=_internal)
        with self._write_scope(table):
            changed = self._executor.update(table, assignments, where)
            self._log_csv("UPDATE", table, repr(sorted(assignments)), changed)
        return changed

    def delete(self, table: str, where: Expr | None = None, _internal: bool = False) -> int:
        self._on_statement(internal=_internal)
        with self._write_scope(table):
            removed = self._executor.delete(table, where)
            self._log_csv("DELETE", table, repr(where), removed)
        return removed

    def vacuum(self, table: str | None = None) -> int:
        self._count_statement()
        tables = [table] if table is not None else self.catalog.tables()
        reclaimed = 0
        for name in tables:
            try:
                reclaimed += self._vacuum_locked(name)
            except CatalogError:
                if table is not None:
                    raise  # an explicit target must exist
                # a database-wide sweep skips concurrently dropped tables
        return reclaimed

    def explain(self, table: str, where: Expr | None = None) -> str:
        with self._locks.read(table):
            return self._executor.explain(table, where)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def table_stats(self, table: str) -> dict:
        with self._locks.read(table):
            heap = self._storage.heap(table)
            index_bytes = {
                info.name: self._storage.indices[info.name].size_bytes()
                for info in self.catalog.indices_for(table)
            }
            return {
                "live_rows": heap.live_count,
                "dead_rows": heap.dead_count,
                "heap_bytes": heap.total_bytes(),
                "index_bytes": index_bytes,
                "total_bytes": heap.total_bytes() + sum(index_bytes.values()),
            }

    def disk_usage(self) -> dict:
        """Total footprint: heaps + indices + WAL + csvlog (Table 3).

        Reads the layers' byte counters without table locks — each counter
        is a single attribute read, so a concurrent writer can at worst
        make the snapshot momentarily stale, never inconsistent per table.
        """
        heap_bytes = sum(h.total_bytes() for h in list(self._storage.heaps.values()))
        index_bytes = sum(i.size_bytes() for i in list(self._storage.indices.values()))
        wal_bytes = self._storage.wal.size_bytes() if self._storage.wal else 0
        log_bytes = self.csvlog.size_bytes() if self.csvlog else 0
        return {
            "heap_bytes": heap_bytes,
            "index_bytes": index_bytes,
            "wal_bytes": wal_bytes,
            "csvlog_bytes": log_bytes,
            "total_bytes": heap_bytes + index_bytes + wal_bytes + log_bytes,
        }

    def info(self) -> dict:
        return {
            "tables": self.catalog.tables(),
            "statements": self._statements,
            "gdpr_features": self.config.gdpr_features(
                has_indices=any(
                    not info.name.endswith("_pkey")
                    for t in self.catalog.tables()
                    for info in self.catalog.indices_for(t)
                ),
                has_ttl=self.ttl_enabled,
            ),
            "disk_usage": self.disk_usage(),
        }

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._storage.close()
        if self.csvlog is not None:
            self.csvlog.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
