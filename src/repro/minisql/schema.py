"""Table schemas and the system catalog for minisql."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CatalogError, TypeMismatchError

from .types import SQLType


@dataclass(frozen=True)
class Column:
    """One column: name, type, nullability."""

    name: str
    type: SQLType
    nullable: bool = True

    def validate(self, value):
        if value is None:
            if not self.nullable:
                raise TypeMismatchError(f"column {self.name!r} is NOT NULL")
            return None
        return self.type.validate(value)


class TableSchema:
    """Ordered column collection with name lookup and row validation."""

    def __init__(self, name: str, columns: list[Column], primary_key: str | None = None):
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise CatalogError(f"duplicate column {column.name!r} in {name!r}")
            seen.add(column.name)
        if primary_key is not None and primary_key not in seen:
            raise CatalogError(f"primary key {primary_key!r} is not a column of {name!r}")
        self.name = name
        self.columns = list(columns)
        self.primary_key = primary_key
        self._index_of = {c.name: i for i, c in enumerate(self.columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        try:
            return self._index_of[name]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def validate_row(self, values: dict) -> tuple:
        """dict -> positional tuple, validating every column.

        Missing columns become NULL (subject to nullability); unknown
        column names are an error, as in PostgreSQL.
        """
        unknown = set(values) - set(self._index_of)
        if unknown:
            raise CatalogError(
                f"unknown column(s) {sorted(unknown)!r} for table {self.name!r}"
            )
        row = []
        for column in self.columns:
            row.append(column.validate(values.get(column.name)))
        return tuple(row)

    def row_bytes(self, row: tuple) -> int:
        """Approximate heap footprint of one row (24B header like PG)."""
        total = 24
        for column, value in zip(self.columns, row):
            total += 1 if value is None else column.type.storage_bytes(value)
        return total


@dataclass
class IndexInfo:
    """Catalog entry describing one secondary index."""

    name: str
    table: str
    column: str
    kind: str  # 'btree' for scalars, 'inverted' for TEXT_LIST
    unique: bool = False


class Catalog:
    """System catalog: tables and indices by name."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._indices: dict[str, IndexInfo] = {}
        self._indices_by_table: dict[str, list[IndexInfo]] = {}
        #: bumped on every DDL change; executors key their plan and
        #: projection caches off it so cached access paths never survive
        #: a schema or index change.
        self.version = 0

    def add_table(self, schema: TableSchema) -> None:
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[schema.name] = schema
        self._indices_by_table.setdefault(schema.name, [])
        self.version += 1

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no table {name!r}")
        del self._tables[name]
        for info in self._indices_by_table.pop(name, []):
            self._indices.pop(info.name, None)
        self.version += 1

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def add_index(self, info: IndexInfo) -> None:
        if info.name in self._indices:
            raise CatalogError(f"index {info.name!r} already exists")
        schema = self.table(info.table)  # validates table
        schema.column_index(info.column)  # validates column
        self._indices[info.name] = info
        self._indices_by_table[info.table].append(info)
        self.version += 1

    def drop_index(self, name: str) -> IndexInfo:
        if name not in self._indices:
            raise CatalogError(f"no index {name!r}")
        info = self._indices.pop(name)
        self._indices_by_table[info.table].remove(info)
        self.version += 1
        return info

    def indices_for(self, table: str) -> list[IndexInfo]:
        return list(self._indices_by_table.get(table, []))

    def index(self, name: str) -> IndexInfo:
        try:
            return self._indices[name]
        except KeyError:
            raise CatalogError(f"no index {name!r}") from None
