"""Periodic TTL sweeper — the paper's PostgreSQL timely-deletion retrofit.

Section 5.2: "since PostgreSQL does not offer native support for time-based
expiry of rows, we modify the INSERT queries to include the expiry
timestamp and then implement a daemon that checks for expired rows
periodically (currently set to 1 sec)."

:class:`TTLSweeper` is that daemon.  It is cooperative rather than a
thread: the database pokes ``maybe_run(now)`` at the top of every
statement (and benchmarks can call it while advancing a virtual clock).
The sweep itself is an ordinary DELETE with a ``column <= now`` predicate,
so it uses a B-tree range scan when the expiry column is indexed and a
sequential scan otherwise — the same cost profile the paper's cron job had.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .expr import Cmp


@dataclass
class SweepStats:
    sweeps: int = 0
    rows_deleted: int = 0
    last_run: float = field(default=float("-inf"))


class TTLSweeper:
    """Deletes rows whose ``column`` timestamp has passed, every interval."""

    def __init__(self, database, table: str, column: str, interval: float = 1.0) -> None:
        self._db = database
        self.table = table
        self.column = column
        self.interval = interval
        self.stats = SweepStats()

    def due(self, now: float) -> bool:
        return now - self.stats.last_run >= self.interval

    def maybe_run(self, now: float) -> int:
        if not self.due(now):
            return 0
        return self.run(now)

    def run(self, now: float) -> int:
        """One sweep: delete everything expired as of ``now``."""
        self.stats.last_run = now
        self.stats.sweeps += 1
        deleted = self._db.delete(
            self.table, Cmp(self.column, "<=", now), _internal=True
        )
        self.stats.rows_deleted += deleted
        return deleted
