"""Periodic TTL sweeper — the paper's PostgreSQL timely-deletion retrofit.

Section 5.2: "since PostgreSQL does not offer native support for time-based
expiry of rows, we modify the INSERT queries to include the expiry
timestamp and then implement a daemon that checks for expired rows
periodically (currently set to 1 sec)."

:class:`TTLSweeper` is that daemon.  It is cooperative rather than a
thread: the database pokes ``maybe_run(now)`` at the top of every
statement (and benchmarks can call it while advancing a virtual clock).
The sweep itself is an ordinary DELETE with a ``column <= now`` predicate,
so it uses a B-tree range scan when the expiry column is indexed and a
sequential scan otherwise — the same cost profile the paper's cron job had.

Concurrency: each sweep runs through the transaction API in chunks of
``batch_rows`` deletes, taking the table's *write* lock per chunk and
group-committing each chunk's WAL records with one fsync.  Between chunks
the lock is released, so a large purge no longer stalls every concurrent
reader for its whole duration the way the seed's global lock did — and
under ``locking="mvcc"`` readers never block at all: they keep reading
their snapshots while the purge runs.

Version vacuum: the daemon doubles as the background vacuum for its
table.  After the expired rows are deleted, any dead versions no live
snapshot can still see (purge tombstones, MVCC update chains) are
reclaimed under the snapshot horizon — PostgreSQL's autovacuum duty folded
into the same periodic task, so a TTL-enabled table never accumulates
unbounded version garbage between explicit ``VACUUM`` statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .expr import Cmp


@dataclass
class SweepStats:
    sweeps: int = 0
    rows_deleted: int = 0
    versions_reclaimed: int = 0
    last_run: float = field(default=float("-inf"))


class TTLSweeper:
    """Deletes rows whose ``column`` timestamp has passed, every interval."""

    #: rows deleted per write-lock acquisition / WAL group commit
    DEFAULT_BATCH_ROWS = 256

    def __init__(self, database, table: str, column: str, interval: float = 1.0,
                 batch_rows: int | None = None) -> None:
        self._db = database
        self.table = table
        self.column = column
        self.interval = interval
        self.batch_rows = batch_rows or self.DEFAULT_BATCH_ROWS
        self.stats = SweepStats()

    def due(self, now: float) -> bool:
        return now - self.stats.last_run >= self.interval

    def maybe_run(self, now: float) -> int:
        if not self.due(now):
            return 0
        return self.run(now)

    def run(self, now: float) -> int:
        """One sweep: delete everything expired as of ``now``, in batches,
        then vacuum the versions nothing can see any more."""
        self.stats.last_run = now
        self.stats.sweeps += 1
        predicate = Cmp(self.column, "<=", now)
        deleted = 0
        while True:
            # One chunk = one write-lock hold + one WAL group commit.
            with self._db.transaction(write=(self.table,), _internal=True) as txn:
                chunk = txn.delete(self.table, predicate, limit=self.batch_rows)
            deleted += chunk
            if chunk < self.batch_rows:
                break
        self.stats.rows_deleted += deleted
        # Background version vacuum: reclaim dead versions up to the
        # oldest live snapshot (everything, when no snapshot is active).
        heap = self._db._storage.heaps.get(self.table)
        if heap is not None and heap.dead_count:
            self.stats.versions_reclaimed += self._db._vacuum_locked(self.table)
        return deleted
