"""Heap storage for minisql tables.

Rows live in a slotted array addressed by row id (rid).  DELETE leaves a
tombstone — the slot keeps its storage accounted until VACUUM reclaims it,
mirroring PostgreSQL's dead-tuple bloat.  UPDATE rewrites the slot in place
(rid-stable), with the executor responsible for index maintenance.

When the database runs with encryption at rest, the heap stores each row as
a sealed pickle blob (the LUKS boundary): every fetch pays decrypt +
deserialise, every write pays serialise + encrypt — the genuine cost
structure behind the paper's encryption overhead measurements.
"""

from __future__ import annotations

import pickle
from typing import Callable, Iterator

from repro.common.errors import SQLError

from .schema import TableSchema

_TOMBSTONE = object()


class RowCodec:
    """Serialise rows to sealed bytes and back (encryption-at-rest path)."""

    def __init__(self, seal: Callable[[str, bytes], bytes], open_: Callable[[str, bytes], bytes], table: str) -> None:
        self._seal = seal
        self._open = open_
        self._table = table

    def encode(self, rid: int, row: tuple) -> bytes:
        return self._seal(f"{self._table}#{rid}", pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL))

    def decode(self, rid: int, blob: bytes) -> tuple:
        return pickle.loads(self._open(f"{self._table}#{rid}", blob))


class HeapTable:
    """Slotted row storage with tombstones and vacuum."""

    def __init__(self, schema: TableSchema, codec: RowCodec | None = None) -> None:
        self.schema = schema
        self._codec = codec
        self._slots: list = []
        self._free: list[int] = []
        self._live = 0
        self._dead = 0
        self._live_bytes = 0
        self._dead_bytes = 0
        self._tombstone_bytes: dict[int, int] = {}

    # -- size accounting ---------------------------------------------------

    def _stored_bytes(self, rid: int, stored) -> int:
        if self._codec is not None:
            return 24 + len(stored)
        return self.schema.row_bytes(stored)

    @property
    def live_count(self) -> int:
        return self._live

    @property
    def dead_count(self) -> int:
        return self._dead

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        return self._dead_bytes

    def total_bytes(self) -> int:
        """Heap footprint including dead tuples (pre-vacuum)."""
        return self._live_bytes + self._dead_bytes

    # -- row operations ------------------------------------------------------

    def insert(self, row: tuple) -> int:
        if self._free:
            rid = self._free.pop()
        else:
            rid = len(self._slots)
            self._slots.append(None)
        stored = self._codec.encode(rid, row) if self._codec else row
        self._slots[rid] = stored
        self._live += 1
        self._live_bytes += self._stored_bytes(rid, stored)
        return rid

    def fetch(self, rid: int) -> tuple | None:
        """The live row at ``rid`` or None (absent / tombstoned)."""
        if rid < 0 or rid >= len(self._slots):
            return None
        stored = self._slots[rid]
        if stored is None or stored is _TOMBSTONE:
            return None
        return self._codec.decode(rid, stored) if self._codec else stored

    def fetch_many(self, rids) -> Iterator[tuple[int, tuple]]:
        """Yield (rid, row) for the live rows among ``rids``.

        The executor's index scans resolve a posting list through this:
        one call per batch of rids instead of a fetch per rid, skipping
        entries whose row has since been deleted.
        """
        slots = self._slots
        n = len(slots)
        codec = self._codec
        for rid in rids:
            if rid < 0 or rid >= n:
                continue
            stored = slots[rid]
            if stored is None or stored is _TOMBSTONE:
                continue
            yield rid, (codec.decode(rid, stored) if codec else stored)

    def update(self, rid: int, row: tuple) -> tuple:
        """Replace the row at ``rid`` in place; returns the old row."""
        old = self.fetch(rid)
        if old is None:
            raise SQLError(f"update of missing rid {rid}")
        old_size = self._stored_bytes(rid, self._slots[rid])
        stored = self._codec.encode(rid, row) if self._codec else row
        self._slots[rid] = stored
        self._live_bytes += self._stored_bytes(rid, stored) - old_size
        return old

    def delete(self, rid: int) -> tuple:
        """Tombstone the row at ``rid``; returns the old row."""
        old = self.fetch(rid)
        if old is None:
            raise SQLError(f"delete of missing rid {rid}")
        size = self._stored_bytes(rid, self._slots[rid])
        self._slots[rid] = _TOMBSTONE
        self._tombstone_bytes[rid] = size
        self._live -= 1
        self._dead += 1
        self._live_bytes -= size
        self._dead_bytes += size
        return old

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rid, row) for every live row — the sequential scan."""
        for rid, stored in enumerate(self._slots):
            if stored is None or stored is _TOMBSTONE:
                continue
            yield rid, (self._codec.decode(rid, stored) if self._codec else stored)

    def vacuum(self) -> int:
        """Reclaim tombstoned slots for reuse; returns slots reclaimed."""
        reclaimed = 0
        for rid, stored in enumerate(self._slots):
            if stored is _TOMBSTONE:
                self._slots[rid] = None
                self._free.append(rid)
                reclaimed += 1
        self._dead = 0
        self._dead_bytes = 0
        self._tombstone_bytes.clear()
        return reclaimed
