"""Heap storage for minisql tables.

Rows live in a slotted array addressed by row id (rid).  DELETE leaves a
tombstone — the slot keeps its storage accounted until VACUUM reclaims it,
mirroring PostgreSQL's dead-tuple bloat.  UPDATE rewrites the slot in place
(rid-stable), with the executor responsible for index maintenance.

Version visibility (MVCC)
-------------------------
Every row version carries commit stamps: ``xmin`` (the commit timestamp of
the transaction that created it; ``inf`` while that transaction is still
pending) and, once deleted, ``xmax`` (the deleting transaction's commit
timestamp; ``None`` while the delete is pending).  Deleting a row moves its
bytes into a retained dead-version table instead of discarding them, so

* snapshot readers (:meth:`scan_at` / :meth:`fetch_at` /
  :meth:`fetch_many_at`) can still see the old version:
  visible iff ``xmin <= ts`` and (``xmax is None`` or ``xmax > ts``);
* latest readers (:meth:`scan` / :meth:`fetch` / :meth:`fetch_many`) see
  exactly the live slots, ignoring stamps — the behaviour of the
  lock-based modes, where readers are serialised against writers;
* rollback can resurrect the version (:meth:`undelete`).

:meth:`vacuum` takes a *horizon* (the oldest active snapshot timestamp)
and only reclaims dead versions whose ``xmax`` is at or below it; with no
active snapshot the horizon is ``inf`` and vacuum reclaims every
tombstone, the pre-MVCC behaviour.  Reclaimed slots return to the
free list in ascending rid order so WAL replay (which is handed the exact
reclaimed rid list) reproduces rid allocation deterministically.

When the database runs with encryption at rest, the heap stores each row as
a sealed pickle blob (the LUKS boundary): every fetch pays decrypt +
deserialise, every write pays serialise + encrypt — the genuine cost
structure behind the paper's encryption overhead measurements.
"""

from __future__ import annotations

import pickle
from typing import Callable, Iterator

from repro.common.errors import SQLError

from .mvcc import NO_HORIZON, PENDING
from .schema import TableSchema

_TOMBSTONE = object()


class RowCodec:
    """Serialise rows to sealed bytes and back (encryption-at-rest path)."""

    def __init__(self, seal: Callable[[str, bytes], bytes], open_: Callable[[str, bytes], bytes], table: str) -> None:
        self._seal = seal
        self._open = open_
        self._table = table

    def encode(self, rid: int, row: tuple) -> bytes:
        return self._seal(f"{self._table}#{rid}", pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL))

    def decode(self, rid: int, blob: bytes) -> tuple:
        return pickle.loads(self._open(f"{self._table}#{rid}", blob))


class HeapTable:
    """Slotted row storage with tombstones, version stamps, and vacuum."""

    def __init__(self, schema: TableSchema, codec: RowCodec | None = None,
                 mvcc: bool = False) -> None:
        self.schema = schema
        self._codec = codec
        #: version-stamp bookkeeping is only paid when snapshot readers
        #: exist; the lock-based modes never consult xmin/xmax.
        self._mvcc = mvcc
        self._slots: list = []
        self._free: list[int] = []
        self._live = 0
        self._dead = 0
        self._live_bytes = 0
        self._dead_bytes = 0
        #: rid -> creating commit timestamp (``PENDING`` until stamped).
        #: Written *before* the slot is published so lock-free snapshot
        #: readers never see a live slot without its xmin.
        self._xmin: dict[int, float] = {}
        #: rid -> (stored, xmin, xmax, size) for tombstoned versions,
        #: retained until vacuum so snapshots and rollback can reach them.
        self._dead_rows: dict[int, tuple] = {}

    # -- size accounting ---------------------------------------------------

    def _stored_bytes(self, rid: int, stored) -> int:
        if self._codec is not None:
            return 24 + len(stored)
        return self.schema.row_bytes(stored)

    @property
    def live_count(self) -> int:
        return self._live

    @property
    def dead_count(self) -> int:
        return self._dead

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        return self._dead_bytes

    def total_bytes(self) -> int:
        """Heap footprint including dead tuples (pre-vacuum)."""
        return self._live_bytes + self._dead_bytes

    # -- row operations ------------------------------------------------------

    def insert(self, row: tuple) -> int:
        """Insert a new version; its ``xmin`` is pending until stamped."""
        if self._free:
            rid = self._free.pop()
        else:
            rid = len(self._slots)
            self._slots.append(None)
        stored = self._codec.encode(rid, row) if self._codec else row
        if self._mvcc:
            self._xmin[rid] = PENDING  # before publishing: no torn visibility
        self._slots[rid] = stored
        self._live += 1
        self._live_bytes += self._stored_bytes(rid, stored)
        return rid

    def stamp_insert(self, rid: int, ts: float) -> None:
        """Commit-stamp a pending insert (makes it visible to ts+ snapshots)."""
        if rid in self._xmin:
            self._xmin[rid] = ts

    def stamp_delete(self, rid: int, ts: float) -> None:
        """Commit-stamp a pending delete (hides it from ts+ snapshots)."""
        entry = self._dead_rows.get(rid)
        if entry is not None and entry[2] is None:
            stored, xmin, _, size = entry
            self._dead_rows[rid] = (stored, xmin, ts, size)

    def xmin_of(self, rid: int) -> float:
        return self._xmin.get(rid, 0.0)

    def fetch(self, rid: int) -> tuple | None:
        """The live row at ``rid`` or None (absent / tombstoned)."""
        if rid < 0 or rid >= len(self._slots):
            return None
        stored = self._slots[rid]
        if stored is None or stored is _TOMBSTONE:
            return None
        return self._codec.decode(rid, stored) if self._codec else stored

    def fetch_at(self, rid: int, ts: float) -> tuple | None:
        """The version at ``rid`` visible to a snapshot at ``ts``, or None.

        When a tombstoned slot has no dead entry, the slot is re-read
        once: a concurrent rollback's ``undelete`` publishes the restored
        slot *before* popping the dead entry, so the re-check closes the
        window where a reader saw the tombstone but missed the entry.
        (A vacuumed slot re-reads as ``None`` — correctly invisible,
        since vacuum respects the snapshot horizon.)
        """
        if rid < 0 or rid >= len(self._slots):
            return None
        stored = self._slots[rid]
        if stored is not None and stored is not _TOMBSTONE:
            if self._xmin.get(rid, 0.0) <= ts:
                return self._codec.decode(rid, stored) if self._codec else stored
            return None
        entry = self._dead_rows.get(rid)
        if entry is None:
            stored = self._slots[rid]  # re-check: concurrent undelete?
            if stored is not None and stored is not _TOMBSTONE \
                    and self._xmin.get(rid, 0.0) <= ts:
                return self._codec.decode(rid, stored) if self._codec else stored
            return None
        dstored, dxmin, dxmax, _ = entry
        if dxmin <= ts and (dxmax is None or dxmax > ts):
            return self._codec.decode(rid, dstored) if self._codec else dstored
        return None

    def fetch_many(self, rids) -> Iterator[tuple[int, tuple]]:
        """Yield (rid, row) for the live rows among ``rids``.

        The executor's index scans resolve a posting list through this:
        one call per batch of rids instead of a fetch per rid, skipping
        entries whose row has since been deleted.
        """
        slots = self._slots
        n = len(slots)
        codec = self._codec
        for rid in rids:
            if rid < 0 or rid >= n:
                continue
            stored = slots[rid]
            if stored is None or stored is _TOMBSTONE:
                continue
            yield rid, (codec.decode(rid, stored) if codec else stored)

    def fetch_many_at(self, rids, ts: float) -> Iterator[tuple[int, tuple]]:
        """Yield (rid, row) for the versions among ``rids`` visible at ``ts``."""
        slots = self._slots
        n = len(slots)
        codec = self._codec
        xmin = self._xmin
        dead = self._dead_rows
        for rid in rids:
            if rid < 0 or rid >= n:
                continue
            stored = slots[rid]
            if stored is not None and stored is not _TOMBSTONE:
                if xmin.get(rid, 0.0) <= ts:
                    yield rid, (codec.decode(rid, stored) if codec else stored)
                continue
            entry = dead.get(rid)
            if entry is None:
                stored = slots[rid]  # re-check: concurrent undelete?
                if stored is not None and stored is not _TOMBSTONE \
                        and xmin.get(rid, 0.0) <= ts:
                    yield rid, (codec.decode(rid, stored) if codec else stored)
                continue
            dstored, dxmin, dxmax, _ = entry
            if dstored is not None and dxmin <= ts and (dxmax is None or dxmax > ts):
                yield rid, (codec.decode(rid, dstored) if codec else dstored)

    def update(self, rid: int, row: tuple) -> tuple:
        """Replace the row at ``rid`` in place; returns the old row."""
        old = self.fetch(rid)
        if old is None:
            raise SQLError(f"update of missing rid {rid}")
        old_size = self._stored_bytes(rid, self._slots[rid])
        stored = self._codec.encode(rid, row) if self._codec else row
        self._slots[rid] = stored
        self._live_bytes += self._stored_bytes(rid, stored) - old_size
        return old

    def delete(self, rid: int, xmax: float | None = 0.0, retain: bool = True) -> tuple:
        """Tombstone the row at ``rid``; returns the old row.

        The version's bytes are retained (with its ``xmin`` and ``xmax``)
        so snapshot readers and rollback can still reach it; vacuum
        reclaims it once no snapshot needs it.  The default ``xmax=0``
        marks the version dead-to-everyone immediately (the lock-based /
        raw-heap behaviour); the storage layer passes ``xmax=None``
        (pending) while a write session is open, and the session's commit
        stamps the real timestamp.  ``retain=False`` (storage's
        session-less non-MVCC path) drops the payload immediately —
        nothing can snapshot-read or resurrect such a version, so only
        its size accounting survives until vacuum.

        The ``_xmin`` entry is deliberately *not* removed here: a
        lock-free reader that sampled the live slot just before this
        delete must still find the version's true xmin (a pending
        insert's ``inf`` in particular — dropping the entry would let the
        0.0 default turn that race into a dirty read).  Vacuum and
        undelete consume the entry instead.
        """
        old = self.fetch(rid)
        if old is None:
            raise SQLError(f"delete of missing rid {rid}")
        stored = self._slots[rid]
        size = self._stored_bytes(rid, stored)
        # Publish the dead version before tombstoning the slot so a
        # concurrent snapshot reader finds one or the other, never neither.
        self._dead_rows[rid] = (
            stored if retain else None, self._xmin.get(rid, 0.0), xmax, size,
        )
        self._slots[rid] = _TOMBSTONE
        self._live -= 1
        self._dead += 1
        self._live_bytes -= size
        self._dead_bytes += size
        return old

    def undelete(self, rid: int) -> tuple:
        """Resurrect the tombstoned version at ``rid`` (rollback of a delete).

        Publication order matters for lock-free snapshot readers: the
        slot is restored (with its xmin) *before* the dead entry is
        popped, so a reader always finds one representation or the other;
        the narrow window where both exist is resolved by the readers'
        slot re-check (see :meth:`fetch_at`).
        """
        entry = self._dead_rows.get(rid)
        if entry is None or entry[0] is None or self._slots[rid] is not _TOMBSTONE:
            raise SQLError(f"undelete of non-tombstoned rid {rid}")
        stored, xmin, _, size = entry
        if self._mvcc:
            self._xmin[rid] = xmin
        self._slots[rid] = stored
        self._dead_rows.pop(rid, None)
        self._live += 1
        self._dead -= 1
        self._live_bytes += size
        self._dead_bytes -= size
        return self._codec.decode(rid, stored) if self._codec else stored

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rid, row) for every live row — the sequential scan."""
        for rid, stored in enumerate(self._slots):
            if stored is None or stored is _TOMBSTONE:
                continue
            yield rid, (self._codec.decode(rid, stored) if self._codec else stored)

    def scan_at(self, ts: float) -> Iterator[tuple[int, tuple]]:
        """Yield (rid, row) for every version visible to a snapshot at ``ts``.

        Safe to run without any table lock while a writer mutates the
        heap: slots are read once each, dead versions are looked up per
        rid (never by iterating the dict), and the visibility stamps
        decide which side of a concurrent change this snapshot sees.
        """
        slots = self._slots
        codec = self._codec
        xmin = self._xmin
        dead = self._dead_rows
        for rid in range(len(slots)):
            stored = slots[rid]
            if stored is None:
                continue
            if stored is _TOMBSTONE:
                entry = dead.get(rid)
                if entry is None:
                    stored = slots[rid]  # re-check: concurrent undelete?
                    if stored is not None and stored is not _TOMBSTONE \
                            and xmin.get(rid, 0.0) <= ts:
                        yield rid, (codec.decode(rid, stored) if codec else stored)
                    continue
                dstored, dxmin, dxmax, _ = entry
                if dstored is not None and dxmin <= ts and (dxmax is None or dxmax > ts):
                    yield rid, (codec.decode(rid, dstored) if codec else dstored)
            elif xmin.get(rid, 0.0) <= ts:
                yield rid, (codec.decode(rid, stored) if codec else stored)

    def dead_rids(self) -> list[int]:
        """Rids of every retained dead version (index cleanup sweeps)."""
        return list(self._dead_rows)

    def reclaimable_versions(self, horizon: float) -> list[tuple[int, tuple]]:
        """(rid, row) of dead versions vacuum may reclaim at ``horizon``.

        Excludes pending deletes (``xmax is None``) and versions some
        snapshot at or before ``horizon`` can still see.
        """
        out: list[tuple[int, tuple]] = []
        for rid in list(self._dead_rows):
            entry = self._dead_rows.get(rid)
            if entry is None or entry[0] is None:
                continue
            stored, _xmin, xmax, _size = entry
            if xmax is None or xmax > horizon:
                continue
            out.append((rid, self._codec.decode(rid, stored) if self._codec else stored))
        return out

    def dead_row(self, rid: int) -> tuple | None:
        """The retained dead version's row at ``rid`` (for index cleanup)."""
        entry = self._dead_rows.get(rid)
        if entry is None or entry[0] is None:
            return None
        stored = entry[0]
        return self._codec.decode(rid, stored) if self._codec else stored

    def vacuum(self, horizon: float = NO_HORIZON) -> list[int]:
        """Reclaim dead versions no snapshot at/after ``horizon`` can see.

        Returns the reclaimed rids in ascending order (the order they
        re-enter the free list) — the storage layer logs exactly this
        list so WAL replay reproduces rid allocation.  A version with a
        pending ``xmax`` (its deleting transaction has not committed) is
        never reclaimed.
        """
        # Walk the dead-version table, not every slot: a sweep of a huge,
        # mostly-live table must cost O(dead), since the TTL daemon runs
        # this under the table's write lock on every sweep.  Every
        # tombstoned slot has a _dead_rows entry (delete() always records
        # one), and sorting keeps the free list in ascending rid order —
        # the replay-determinism contract.
        reclaimed: list[int] = []
        for rid in sorted(self._dead_rows):
            entry = self._dead_rows.get(rid)
            if entry is None or self._slots[rid] is not _TOMBSTONE:
                continue
            xmax = entry[2]
            if xmax is None or xmax > horizon:
                continue  # a live snapshot (or pending delete) needs it
            self._dead_rows.pop(rid, None)
            self._xmin.pop(rid, None)  # delete keeps it for racing readers
            self._dead_bytes -= entry[3]
            self._slots[rid] = None
            self._free.append(rid)
            self._dead -= 1
            reclaimed.append(rid)
        return reclaimed

    def vacuum_rids(self, rids) -> int:
        """Reclaim exactly ``rids`` (WAL replay of a logged vacuum)."""
        count = 0
        for rid in rids:
            if self._slots[rid] is not _TOMBSTONE:
                continue
            entry = self._dead_rows.pop(rid, None)
            if entry is not None:
                self._dead_bytes -= entry[3]
            self._xmin.pop(rid, None)
            self._slots[rid] = None
            self._free.append(rid)
            self._dead -= 1
            count += 1
        return count
