"""Access-path selection for minisql: sequential scan vs index scan.

The planner walks the conjuncts of a WHERE clause looking for constraints
an existing index can serve:

* ``Cmp(col, '=', v)`` on a column with a B-tree index → point index scan;
* ``Cmp(col, '<='|'<'|'>='|'>', v)`` on a B-tree column → range index scan
  (this is how the TTL sweeper finds expired rows);
* ``Contains(col, token)`` on a TEXT_LIST column with an inverted index →
  posting-list scan.

Whichever conjunct matched becomes the driving constraint; the *full*
predicate is always re-checked against fetched rows (residual filter), so
a wrong cardinality guess can never return wrong answers.  With several
candidates the planner prefers equality over contains over range —
PostgreSQL's selectivity ordering for this schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expr import ALWAYS, Cmp, Contains, Expr
from .schema import Catalog, IndexInfo

_RANGE_OPS = ("<", "<=", ">", ">=")
_PREFERENCE = {"eq": 0, "contains": 1, "range": 2}


@dataclass
class Plan:
    """The chosen access path for one statement."""

    kind: str                       # 'seqscan' | 'indexscan'
    table: str
    predicate: Expr
    index: IndexInfo | None = None
    op: str | None = None           # 'eq' | 'contains' | 'range'
    value: object = None            # constant for eq/contains
    lo: object = None               # bounds for range
    hi: object = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    def describe(self) -> str:
        if self.kind == "seqscan":
            return f"SeqScan({self.table})"
        assert self.index is not None
        if self.op == "range":
            return (
                f"IndexScan({self.table} via {self.index.name}: "
                f"{self.lo!r}..{self.hi!r})"
            )
        return f"IndexScan({self.table} via {self.index.name}: {self.op} {self.value!r})"


def _candidates(predicate: Expr, indices_by_column: dict[str, IndexInfo]):
    for conjunct in predicate.conjuncts():
        if isinstance(conjunct, Cmp) and conjunct.column in indices_by_column:
            info = indices_by_column[conjunct.column]
            if info.kind != "btree":
                continue
            if conjunct.op == "=":
                yield "eq", conjunct, info
            elif conjunct.op in _RANGE_OPS:
                yield "range", conjunct, info
        elif isinstance(conjunct, Contains) and conjunct.column in indices_by_column:
            info = indices_by_column[conjunct.column]
            if info.kind == "inverted":
                yield "contains", conjunct, info


def plan_scan(catalog: Catalog, table: str, predicate: Expr | None) -> Plan:
    """Pick the cheapest access path for ``predicate`` on ``table``."""
    predicate = predicate if predicate is not None else ALWAYS
    indices_by_column = {info.column: info for info in catalog.indices_for(table)}
    best: tuple[int, str, Expr, IndexInfo] | None = None
    for op, conjunct, info in _candidates(predicate, indices_by_column):
        rank = _PREFERENCE[op]
        if best is None or rank < best[0]:
            best = (rank, op, conjunct, info)
    if best is None:
        return Plan(kind="seqscan", table=table, predicate=predicate)
    _, op, conjunct, info = best
    if op == "eq":
        return Plan(
            kind="indexscan", table=table, predicate=predicate,
            index=info, op="eq", value=conjunct.value,
        )
    if op == "contains":
        return Plan(
            kind="indexscan", table=table, predicate=predicate,
            index=info, op="contains", value=conjunct.token,
        )
    # range
    assert isinstance(conjunct, Cmp)
    plan = Plan(kind="indexscan", table=table, predicate=predicate, index=info, op="range")
    if conjunct.op in ("<", "<="):
        plan.hi = conjunct.value
        plan.hi_inclusive = conjunct.op == "<="
    else:
        plan.lo = conjunct.value
        plan.lo_inclusive = conjunct.op == ">="
    return plan
